//! Checkpoint/restore determinism: a diurnal fleet run checkpointed at an
//! epoch boundary and resumed — through the on-disk JSON format, on a
//! *different* shard count and batch size — reproduces the uninterrupted
//! run's fleet digest bit for bit.
//!
//! This is the longitudinal extension of `fleet_determinism.rs`: the
//! flow-keyed discipline makes the merged report invariant under any
//! partition of the flow set, and a checkpoint is exactly a partition — by
//! schedule time instead of by four-tuple hash. The tests here pin that the
//! cut is invisible across the full matrix the fleet pins elsewhere: shard
//! counts {1, 2, 8} on both sides of the cut, batch sizes {1, 32}, and
//! clean vs lossy (0.5 % data-fault) networks.

use std::sync::OnceLock;

use proptest::prelude::*;

use mopeye::dataset::{DiurnalScenario, Scenario};
use mopeye::engine::{
    epoch_boundary, FleetCheckpoint, FleetConfig, FleetEngine, FleetReport,
};
use mopeye::simnet::{AccessProfile, SimNetwork, SimNetworkBuilder};
use mopeye::tun::FlowSpec;

const SEED: u64 = 20_170_712;
const FLEET_SEED: u64 = 77;
const EPOCH_WINDOW: usize = 32;

fn day() -> DiurnalScenario {
    Scenario::diurnal(40, SEED)
}

fn day_flows() -> Vec<FlowSpec> {
    day().generate()
}

fn hour_ns() -> u64 {
    DiurnalScenario::virtual_hour().as_nanos()
}

/// The diurnal network, optionally with data-path faults layered on the
/// uniform LTE access profile (the lossy arm of the matrix).
fn network(loss: f64) -> SimNetworkBuilder {
    let mut access = AccessProfile::lte();
    if loss > 0.0 {
        access = access.with_data_faults(loss, loss / 3.0, loss / 15.0);
    }
    SimNetwork::builder()
        .seed(SEED)
        .flow_keyed()
        .with_table2_destinations()
        .access(access)
}

fn fleet(shards: usize, batch: usize, loss: f64) -> FleetEngine {
    FleetEngine::new(
        FleetConfig::new(shards)
            .with_seed(FLEET_SEED)
            .with_batch_size(batch)
            .with_epochs(DiurnalScenario::virtual_hour(), EPOCH_WINDOW),
        network(loss),
    )
}

/// Checkpoints the day at `cut_epoch` on one fleet, round-trips the
/// checkpoint through its JSON text (the on-disk format), and resumes it on
/// another fleet.
fn cut_and_resume(
    save: &FleetEngine,
    resume: &FleetEngine,
    flows: Vec<FlowSpec>,
    cut_epoch: u64,
) -> FleetReport {
    let cut = epoch_boundary(hour_ns(), cut_epoch);
    let checkpoint = FleetCheckpoint::capture(save, flows, cut);
    let text = checkpoint.to_json_string();
    let restored = FleetCheckpoint::from_json_str(&text).expect("checkpoint text parses back");
    restored.resume(resume)
}

#[test]
fn resumed_runs_reproduce_the_uninterrupted_digest_across_the_matrix() {
    let flows = day_flows();
    for &loss in &[0.0, 0.005] {
        let reference = fleet(2, 32, loss).run(flows.clone());
        let reference_digest = reference.digest();
        assert!(
            reference.merged.windows.is_some(),
            "the windowed run must carry epoch sketches"
        );
        // Save/resume shard counts cover {1, 2, 8} on both sides of the
        // cut; batch sizes cover the item-wise loop and a coalescing burst.
        for &(save_shards, resume_shards, batch) in
            &[(1usize, 8usize, 1usize), (2, 1, 32), (8, 2, 32)]
        {
            let report = cut_and_resume(
                &fleet(save_shards, batch, loss),
                &fleet(resume_shards, batch, loss),
                flows.clone(),
                12, // mid-day epoch boundary
            );
            assert_eq!(
                report.digest(),
                reference_digest,
                "loss {loss}: save on {save_shards} shards, resume on {resume_shards} \
                 (batch {batch}) diverged from the uninterrupted run"
            );
            // Compare the semantic content directly too, so a digest bug
            // cannot mask a divergence.
            assert_eq!(report.merged.samples, reference.merged.samples);
            assert_eq!(report.merged.relay, reference.merged.relay);
            assert_eq!(report.merged.flows, reference.merged.flows);
            assert_eq!(report.merged.windows, reference.merged.windows);
            assert_eq!(report.merged.finished_at, reference.merged.finished_at);
            assert_eq!(report.merged.events_processed, reference.merged.events_processed);
        }
    }
}

#[test]
fn edge_cuts_degenerate_cleanly() {
    let flows = day_flows();
    let reference_digest = fleet(2, 32, 0.0).run(flows.clone()).digest();
    // A cut at epoch 0 runs nothing before the save: the whole day is
    // pending. A cut past the last arrival runs everything: resume only
    // merges the base with an empty run.
    for cut_epoch in [0u64, 25] {
        let report =
            cut_and_resume(&fleet(2, 32, 0.0), &fleet(8, 32, 0.0), flows.clone(), cut_epoch);
        assert_eq!(report.digest(), reference_digest, "edge cut at epoch {cut_epoch}");
    }
}

/// The uninterrupted reference for the property test, run once.
fn property_reference() -> u64 {
    static DIGEST: OnceLock<u64> = OnceLock::new();
    *DIGEST.get_or_init(|| fleet(2, 32, 0.0).run(day_flows()).digest())
}

proptest! {
    // Each case costs two fleet runs; the deterministic matrix above covers
    // breadth, this covers cut-point arbitrariness.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_epoch_boundary_is_a_digest_invariant_cut(cut_epoch in 1u64..24) {
        let report = cut_and_resume(
            &fleet(2, 32, 0.0),
            &fleet(8, 1, 0.0),
            day_flows(),
            cut_epoch,
        );
        prop_assert_eq!(report.digest(), property_reference(), "cut at epoch {}", cut_epoch);
    }
}
