//! Cross-crate integration tests: the full relay pipeline from app workloads
//! through the TUN device, the user-space TCP stack, the socket layer and the
//! simulated network, checked against the paper's headline claims.

use mopeye::engine::{MopEyeConfig, MopEyeEngine, ProtectMode, TimestampMode};
use mopeye::measure::Summary;
use mopeye::packet::Endpoint;
use mopeye::procnet::MappingStrategy;
use mopeye::simnet::{LatencyModel, ServerConfig, Service, SimDuration, SimNetwork};
use mopeye::tun::{FlowKind, FlowSpec, Workload, WorkloadKind};

fn network(seed: u64) -> SimNetwork {
    SimNetwork::builder().seed(seed).with_table2_destinations().build()
}

fn browsing_workload(uid: u32, package: &str, pages: u32) -> Workload {
    Workload::new(
        WorkloadKind::WebBrowsing,
        uid,
        package,
        vec![
            (Endpoint::v4(216, 58, 221, 132, 443), "www.google.com".into()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
        ],
        SimDuration::from_secs(60),
        pages,
    )
}

#[test]
fn zero_probe_traffic_is_injected_by_the_relay() {
    // MopEye's core claim: measurement with zero network overhead. Every
    // byte the servers see must have been sent by an app, not by the relay.
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network(1));
    let report = engine.run(&[browsing_workload(10_100, "com.android.chrome", 4)]);
    // Every successful connection corresponds to exactly one app SYN seen on
    // the tunnel, and exactly one RTT sample; no extra probe connections.
    assert_eq!(report.relay.syns, report.relay.connects_ok + report.relay.connects_failed);
    assert_eq!(report.tcp_samples().len() as u64, report.relay.connects_ok);
    // Bytes relayed to servers equal the bytes the apps sent (no padding or
    // probing), and apps received every relayed response byte.
    assert!(report.relay.bytes_out > 0);
    assert!(report.tun.bytes_from_apps > 0);
    let delivered: usize = report.flows.iter().map(|f| f.bytes_received).sum();
    assert_eq!(delivered as u64, report.relay.bytes_in);
}

#[test]
fn accuracy_holds_across_rtt_scales_like_table2() {
    // Sub-millisecond deviation from the tcpdump reference on paths from a
    // few milliseconds (Google) to hundreds of milliseconds (Dropbox).
    for dst in [
        Endpoint::v4(216, 58, 221, 132, 443),
        Endpoint::v4(31, 13, 79, 251, 443),
        Endpoint::v4(108, 160, 166, 126, 443),
    ] {
        let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network(2));
        let flows: Vec<FlowSpec> = (0..10)
            .map(|i| FlowSpec {
                at: mopeye::simnet::SimTime::from_millis(400 * i + 5),
                uid: 10_100,
                package: "com.measurement.app".into(),
                src: None,
                dst,
                domain: None,
                request_bytes: 300,
                close_after: 2048,
                kind: FlowKind::Tcp,
                network: None,
                isp: None,
            })
            .collect();
        let report = engine.run_flows(flows);
        assert_eq!(report.tcp_samples().len(), 10);
        let worst = report
            .tcp_samples()
            .iter()
            .map(|s| s.error_ms())
            .fold(0.0f64, f64::max);
        assert!(worst < 1.0, "worst error {worst} ms for {dst}");
    }
}

#[test]
fn per_app_attribution_separates_concurrent_apps() {
    // Two apps talk to the *same* destination concurrently; the lazy mapper
    // must attribute each connection to the right app (the scenario where
    // Haystack's endpoint cache goes wrong, §3.3).
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network(3));
    let facebook_app = Workload::new(
        WorkloadKind::Messaging,
        10_111,
        "com.facebook.katana",
        vec![(Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into())],
        SimDuration::from_secs(30),
        20,
    );
    let chrome = Workload::new(
        WorkloadKind::Messaging,
        10_222,
        "com.android.chrome",
        vec![(Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into())],
        SimDuration::from_secs(30),
        20,
    );
    let report = engine.run(&[facebook_app, chrome]);
    assert_eq!(report.mapping.mismapped, 0, "lazy mapping must not mis-attribute");
    let samples = report.tcp_samples();
    let fb = samples.iter().filter(|s| s.package.as_deref() == Some("com.facebook.katana")).count();
    let chrome_samples =
        samples.iter().filter(|s| s.package.as_deref() == Some("com.android.chrome")).count();
    assert!(fb >= 15, "facebook samples {fb}");
    assert!(chrome_samples >= 15, "chrome samples {chrome_samples}");
}

#[test]
fn cached_mapping_misattributes_shared_endpoints() {
    // The same scenario under the Haystack-style cache shows the failure the
    // paper warns about: some connections are charged to the wrong app.
    let mut engine = MopEyeEngine::new(
        MopEyeConfig::mopeye().with_mapping(MappingStrategy::Cached),
        network(4),
    );
    let apps: Vec<Workload> = [(10_111, "com.facebook.katana"), (10_222, "com.android.chrome")]
        .iter()
        .map(|(uid, package)| {
            Workload::new(
                WorkloadKind::Messaging,
                *uid,
                package,
                vec![(Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into())],
                SimDuration::from_secs(30),
                25,
            )
        })
        .collect();
    let report = engine.run(&apps);
    assert!(report.mapping.mismapped > 0, "the endpoint cache should mis-attribute some flows");
}

#[test]
fn dns_measurements_flow_end_to_end() {
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network(5));
    let dns_burst = Workload::new(
        WorkloadKind::DnsBurst,
        10_100,
        "com.android.chrome",
        vec![
            (Endpoint::v4(216, 58, 221, 132, 443), "www.google.com".into()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
        ],
        SimDuration::from_secs(20),
        30,
    );
    let report = engine.run(&[dns_burst]);
    assert_eq!(report.relay.dns_queries, 30);
    assert_eq!(report.dns_samples().len(), 30);
    let rtts: Vec<f64> = report.dns_samples().iter().map(|s| s.measured_ms).collect();
    let summary = Summary::of(&rtts).unwrap();
    // WiFi DNS latencies sit in the tens of milliseconds (Figure 10a).
    assert!(summary.median > 5.0 && summary.median < 150.0, "median {}", summary.median);
    // Every query was answered and the flows completed.
    assert!(report.flows.iter().all(|f| f.completed));
}

#[test]
fn failed_and_refused_servers_are_reported_not_measured() {
    let mut net = network(6);
    net.add_server(ServerConfig::new(
        "refuser",
        "10.66.0.1".parse().unwrap(),
        LatencyModel::constant(25.0),
        Service::Refuse,
    ));
    net.add_server(ServerConfig::new(
        "blackhole",
        "10.66.0.2".parse().unwrap(),
        LatencyModel::constant(25.0),
        Service::Blackhole,
    ));
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);
    let flows: Vec<FlowSpec> = [(106_601u32, Endpoint::v4(10, 66, 0, 1, 443)), (2, Endpoint::v4(10, 66, 0, 2, 443))]
        .iter()
        .enumerate()
        .map(|(i, (_, dst))| FlowSpec {
            at: mopeye::simnet::SimTime::from_millis(10 + i as u64),
            uid: 10_100,
            package: "com.unlucky.app".into(),
            src: None,
            dst: *dst,
            domain: None,
            request_bytes: 100,
            close_after: 100,
            kind: FlowKind::Tcp,
            network: None,
            isp: None,
        })
        .collect();
    let report = engine.run_flows(flows);
    assert_eq!(report.relay.connects_failed, 2);
    assert!(report.tcp_samples().is_empty());
    assert!(report.flows.iter().all(|f| !f.completed));
}

#[test]
fn design_choices_matter_selector_timestamps_and_per_socket_protect() {
    // Ablation: moving the timestamps to the selector and protect() to the
    // per-socket API measurably hurts (accuracy and connect-path latency).
    let flows = |seed: u64| {
        let mut engine = MopEyeEngine::new(
            MopEyeConfig::mopeye()
                .with_seed(seed)
                .with_timestamp_mode(TimestampMode::SelectorNotification)
                .with_protect(ProtectMode::PerSocket),
            network(7),
        );
        engine.run(&[browsing_workload(10_100, "com.android.chrome", 5)])
    };
    let degraded = flows(9);
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye().with_seed(9), network(7));
    let good = engine.run(&[browsing_workload(10_100, "com.android.chrome", 5)]);
    let good_err = good.mean_tcp_error_ms().unwrap();
    let degraded_err = degraded.mean_tcp_error_ms().unwrap();
    assert!(good_err < 1.0, "MopEye error {good_err}");
    assert!(degraded_err > good_err, "degraded {degraded_err} vs good {good_err}");
}
