//! Workspace smoke test: every facade re-export resolves to a usable symbol
//! and a minimal end-to-end engine run produces at least one RTT sample.
//!
//! This is deliberately shallow — each layer has its own unit and property
//! suites — but it pins the facade surface so a future refactor cannot
//! silently drop one of the `mopeye::*` namespaces.

use mopeye::engine::{MopEyeConfig, MopEyeEngine};
use mopeye::packet::Endpoint;
use mopeye::simnet::{SimDuration, SimNetwork};
use mopeye::tun::{Workload, WorkloadKind};

#[test]
fn every_facade_namespace_resolves() {
    // One load-bearing symbol per re-exported crate; referencing them keeps
    // the namespaces honest without running anything heavy.
    let endpoint = mopeye::packet::Endpoint::v4(8, 8, 8, 8, 53);
    assert!(endpoint.is_ipv4());

    let time = mopeye::simnet::SimTime::from_millis(5);
    assert_eq!(time.as_millis(), 5);

    let table = mopeye::procnet::ConnectionTable::new();
    assert!(table.uid_of(mopeye::packet::FourTuple::new(endpoint, endpoint)).is_none());

    let machine = mopeye::tcpstack::TcpStateMachine::new(
        mopeye::packet::FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40_000), endpoint),
        10_100,
    );
    assert!(!machine.state().is_terminal());

    let record = mopeye::measure::RttRecord::tcp(61.0, 1, "com.app", mopeye::measure::NetKind::Wifi);
    assert_eq!(record.dst_port, 443);

    let spec = mopeye::dataset::DatasetSpec { seed: 1, scale: 0.0005 };
    assert!(spec.scale > 0.0);

    let config = mopeye::engine::MopEyeConfig::mopeye();
    let _ = config.clone();

    // Baselines and analytics expose their run/compute entry points.
    let reference = mopeye::baselines::TcpdumpReference::default();
    let _ = format!("{reference:?}");
    let fig5 = mopeye::analytics::Fig5Mapping::run(7);
    assert!(fig5.total_requests > 0);

    assert!(!mopeye::VERSION.is_empty());
}

#[test]
fn minimal_engine_run_produces_rtt_samples() {
    let net = SimNetwork::builder().seed(99).with_table2_destinations().build();
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);
    let workload = Workload::new(
        WorkloadKind::Messaging,
        10_100,
        "com.whatsapp",
        vec![(Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into())],
        SimDuration::from_secs(10),
        5,
    );
    let report = engine.run(&[workload]);
    assert!(
        !report.tcp_samples().is_empty(),
        "a 10s messaging workload must yield at least one TCP RTT sample"
    );
    assert_eq!(report.relay.connects_ok as usize, report.tcp_samples().len());
    assert!(report.tcp_samples().iter().all(|s| s.measured_ms > 0.0));
}
