//! Resident-fleet reuse determinism: a fleet whose workers and engines
//! outlive individual runs must be observationally identical to building a
//! fresh engine per run — reuse may only show up in the wall clock.
//!
//! `FleetEngine::run` itself delegates to a one-shot [`ResidentFleet`], so
//! these tests exercise the part delegation can't cover: the *second* and
//! later runs of a resident fleet, where every engine was reset in place
//! (pools, rings, wheel slabs and stage tables cleared, not dropped)
//! rather than constructed. Any state that leaks a run boundary — a stale
//! connection-table entry, an unreset ISN counter, a surviving RNG stream,
//! leftover recovery scoreboards from a lossy network — shifts the digest
//! and fails these bit-for-bit comparisons.

use mopeye::dataset::Scenario;
use mopeye::engine::{
    split_at, CongestionAlgo, FleetCheckpoint, FleetConfig, FleetEngine, ResidentFleet,
};
use mopeye::simnet::SimTime;

/// The cross-PR anchor: `Scenario::rush_hour(300, 20_170_712)` at fleet
/// seed 77, pinned since the pre-refactor engine (see
/// `tests/fleet_determinism.rs`).
const PRE_REFACTOR_RUSH_HOUR_DIGEST: u64 = 0x9e91_0e37_fc9c_0e02;

fn fresh_digest(config: &FleetConfig, scenario: &Scenario) -> u64 {
    FleetEngine::new(config.clone(), scenario.network()).run(scenario.generate()).digest()
}

#[test]
fn back_to_back_scenarios_match_fresh_engines() {
    let first = Scenario::rush_hour(80, 5);
    let second = Scenario::flash_crowd(40, 9);
    for shards in [1usize, 2, 8] {
        let config = FleetConfig::new(shards).with_seed(77);
        let fresh_first = fresh_digest(&config, &first);
        let fresh_second = fresh_digest(&config, &second);

        let mut resident = ResidentFleet::new(config);
        let run1 = resident.run_next(&first.network(), first.generate());
        let run2 = resident.run_next(&second.network(), second.generate());
        // A third run returns to the first scenario: the reset must erase
        // the second run's state just as completely as the first run's.
        let run3 = resident.run_next(&first.network(), first.generate());

        assert_eq!(run1.digest(), fresh_first, "{shards} shards, run 1");
        assert_eq!(run2.digest(), fresh_second, "{shards} shards, run 2");
        assert_eq!(run3.digest(), fresh_first, "{shards} shards, run 3");
        assert_eq!(resident.runs(), 3);
        assert_eq!(resident.threads_spawned(), shards as u64);
    }
}

#[test]
fn anchor_digest_survives_reuse_after_a_lossy_run() {
    // The hardest reset case: a faulted network leaves retransmission
    // scoreboards, RTO timers and fault-stream draws behind; the rush-hour
    // anchor must still reproduce bit-exactly on the reused engines.
    let lossy = Scenario::degraded_commute(60, 11);
    let anchor = Scenario::rush_hour(300, 20_170_712);
    let mut resident = ResidentFleet::new(FleetConfig::new(2).with_seed(77));
    let lossy_report = resident.run_next(&lossy.network(), lossy.generate());
    assert!(
        lossy_report.merged.relay.retransmits > 0,
        "the degraded commute should actually exercise loss recovery"
    );
    let report = resident.run_next(&anchor.network(), anchor.generate());
    assert_eq!(report.digest(), PRE_REFACTOR_RUSH_HOUR_DIGEST);
}

#[test]
fn checkpoint_resume_cycle_on_one_resident_fleet() {
    let scenario = Scenario::rush_hour(120, 7);
    let flows = scenario.generate();
    let network = scenario.network();
    let cut = SimTime::from_millis(800);
    for shards in [1usize, 2, 8] {
        let config = FleetConfig::new(shards).with_seed(77);
        let reference = FleetEngine::new(config.clone(), network.clone()).run(flows.clone());

        let mut resident = ResidentFleet::new(config);
        let (due, pending) = split_at(flows.clone(), cut);
        let base = resident.run_next(&network, due);
        let saved = FleetCheckpoint {
            seed: 77,
            shards_at_save: shards,
            congestion: CongestionAlgo::Reno,
            epoch_width_ns: None,
            epoch_window: 0,
            cut,
            base: base.merged,
            pending,
        }
        .to_json_string();
        // The same resident fleet picks the run back up on the other side
        // of a full JSON round trip — run boundaries and serialisation
        // must compose without disturbing the digest.
        let restored = FleetCheckpoint::parse(&saved).expect("checkpoint round-trips");
        let resumed = resident.run_next(&network, restored.pending);
        let mut merged = restored.base;
        merged.absorb(resumed.merged);
        merged.canonicalise();
        assert_eq!(merged.fleet_digest(), reference.digest(), "{shards} shards");
    }
}
