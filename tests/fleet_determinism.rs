//! Shard determinism: the same seed and scenario produce an identical merged
//! RunReport no matter how many shards execute it.
//!
//! This is the contract the whole sharded architecture rests on: every
//! flow's RNG streams, link reservations, writer lane and source endpoint
//! are pure functions of `(seed, four-tuple)`, so partitioning the flow set
//! across 1, 2 or 8 workers changes *where* a flow runs but nothing about
//! what it does.

use mopeye::dataset::{NetProfile, Scenario, TrafficMix};
use mopeye::engine::{CongestionAlgo, FleetConfig, FleetEngine, FleetReport};
use mopeye::simnet::{AccessProfile, SchedulerKind, SimDuration, SimNetwork};

fn run(scenario: &Scenario, shards: usize, seed: u64) -> FleetReport {
    let fleet = FleetEngine::new(FleetConfig::new(shards).with_seed(seed), scenario.network());
    fleet.run(scenario.generate())
}

/// The rush-hour digest recorded on the pre-refactor engine (global
/// `BinaryHeap` event queue, monolithic event loop) for
/// `Scenario::rush_hour(300, 20_170_712)` at fleet seed 77. The timing-wheel
/// scheduler and the staged pipeline must reproduce it bit for bit — this
/// constant is the cross-PR anchor that says the refactor changed *nothing*
/// about what the relay computes.
const PRE_REFACTOR_RUSH_HOUR_DIGEST: u64 = 0x9e91_0e37_fc9c_0e02;

#[test]
fn same_seed_same_scenario_identical_report_at_1_2_8_shards() {
    let scenario = Scenario::rush_hour(300, 20_170_712);
    let reports: Vec<FleetReport> =
        [1usize, 2, 8].iter().map(|&s| run(&scenario, s, 77)).collect();

    // The digest is the one-line check...
    assert_eq!(reports[0].digest(), reports[1].digest(), "1 vs 2 shards");
    assert_eq!(reports[1].digest(), reports[2].digest(), "2 vs 8 shards");
    // ...anchored to the digest the pre-refactor heap loop produced, so the
    // timing-wheel scheduler and the stage split are provably behaviourally
    // silent.
    assert_eq!(
        reports[0].digest(),
        PRE_REFACTOR_RUSH_HOUR_DIGEST,
        "the staged wheel engine diverged from the pre-refactor heap loop"
    );

    // ...but also compare the underlying semantic content directly, so a
    // digest bug cannot mask a real divergence.
    for pair in reports.windows(2) {
        let (a, b) = (&pair[0].merged, &pair[1].merged);
        assert_eq!(a.samples, b.samples, "RTT samples must match exactly");
        assert_eq!(a.aggregates, b.aggregates, "merged sketch aggregates must be bit-identical");
        assert_eq!(a.aggregates.digest(), b.aggregates.digest());
        assert_eq!(a.relay, b.relay, "relay counters must match");
        assert_eq!(a.flows, b.flows, "flow outcomes must match");
        assert_eq!(a.tun, b.tun, "TUN counters must match");
        assert_eq!(a.finished_at, b.finished_at, "finish time must match");
        assert_eq!(a.events_processed, b.events_processed, "event count must match");
    }

    // Sanity: this was a real run, not a trivially empty one.
    let merged = &reports[0].merged;
    assert!(merged.flows.len() >= 300, "flows: {}", merged.flows.len());
    assert!(merged.relay.connects_ok > 200, "connects: {:?}", merged.relay);
    assert!(merged.samples.len() as u64 >= merged.relay.connects_ok);
    assert!(merged.buffer_pool.reuse_rate() > 0.9, "{:?}", merged.buffer_pool);
    // The streaming aggregates saw exactly the samples the vector retained,
    // labelled with the scenario's network profile.
    assert_eq!(merged.aggregates.sample_count() as usize, merged.samples.len());
    assert!(merged
        .aggregates
        .cells()
        .all(|(key, _)| key.isp == "HomeWiFi" && key.network == mopeye::measure::NetKind::Wifi));
}

#[test]
fn batch_size_and_credit_depth_never_move_a_bit() {
    // The vectored datapath's whole contract: the burst length of the stage
    // pipeline and the dispatcher's credit depth are *throughput* knobs, not
    // behaviour knobs. Every (batch, credits, shards) combination must
    // reproduce the pre-refactor digest exactly — batch size 1 degenerates
    // to the item-wise loop, 64 exceeds the coalescing window of most
    // instants, and credit depth 1 forces a fully serialised dispatcher.
    let scenario = Scenario::rush_hour(300, 20_170_712);
    let flows = scenario.generate();
    for (batch, credits) in [(1usize, 1u64), (16, 2), (64, 8)] {
        for shards in [1usize, 2, 8] {
            let fleet = FleetEngine::new(
                FleetConfig::new(shards)
                    .with_seed(77)
                    .with_batch_size(batch)
                    .with_credits(credits as usize),
                scenario.network(),
            );
            let report = fleet.run(flows.clone());
            assert_eq!(
                report.digest(),
                PRE_REFACTOR_RUSH_HOUR_DIGEST,
                "batch {batch} credits {credits} shards {shards} diverged"
            );
        }
    }
}

#[test]
fn core_pinning_is_behaviourally_invisible() {
    // Pinning workers to cores is wall-clock plumbing; virtual time cannot
    // see it. (Whether pinning *succeeded* is platform-dependent and
    // reported per shard, so only the digest is asserted here.)
    let scenario = Scenario::rush_hour(150, 11);
    let flows = scenario.generate();
    let unpinned =
        FleetEngine::new(FleetConfig::new(4).with_seed(3), scenario.network()).run(flows.clone());
    let pinned =
        FleetEngine::new(FleetConfig::new(4).with_seed(3).with_pinning(true), scenario.network())
            .run(flows);
    assert_eq!(unpinned.digest(), pinned.digest(), "pinning moved the digest");
    assert_eq!(pinned.per_shard.len(), 4);
}

#[test]
fn every_profile_in_the_matrix_is_shard_count_invariant() {
    for profile in NetProfile::ALL {
        let scenario = Scenario::single(
            TrafficMix::WebBrowsing,
            profile,
            60,
            SimDuration::from_secs(4),
            9,
        );
        let one = run(&scenario, 1, 9);
        let four = run(&scenario, 4, 9);
        assert_eq!(
            one.digest(),
            four.digest(),
            "profile {} diverged between 1 and 4 shards",
            profile.label()
        );
    }
}

#[test]
fn different_seed_changes_the_run() {
    let scenario = Scenario::rush_hour(150, 5);
    let a = run(&scenario, 2, 1);
    let b = run(&scenario, 2, 2);
    assert_ne!(a.digest(), b.digest(), "seed must matter");
}

#[test]
fn repeated_runs_are_bit_identical() {
    let scenario = Scenario::rush_hour(200, 3);
    let a = run(&scenario, 4, 3);
    let b = run(&scenario, 4, 3);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.merged.samples, b.merged.samples);
}

#[test]
fn wheel_and_heap_schedulers_produce_identical_fleet_digests() {
    // The scheduler backend is a pure implementation detail: swapping the
    // timing wheel for the reference heap must not move a single bit of the
    // merged report, at any shard count.
    let scenario = Scenario::rush_hour(150, 9);
    let flows = scenario.generate();
    for shards in [1usize, 4] {
        let wheel = FleetEngine::new(
            FleetConfig::new(shards).with_seed(5).with_scheduler(SchedulerKind::Wheel),
            scenario.network(),
        )
        .run(flows.clone());
        let heap = FleetEngine::new(
            FleetConfig::new(shards).with_seed(5).with_scheduler(SchedulerKind::Heap),
            scenario.network(),
        )
        .run(flows.clone());
        assert_eq!(wheel.digest(), heap.digest(), "wheel vs heap at {shards} shards");
        assert_eq!(wheel.merged.samples, heap.merged.samples);
        assert_eq!(wheel.merged.events_processed, heap.merged.events_processed);
    }
}

#[test]
fn degraded_commute_loss_recovery_is_shard_count_invariant() {
    // The loss-recovery contract: every fault decision, retransmission and
    // SACK exchange is keyed by `(seed, four-tuple)`, so a lossy 3G → LTE
    // handover run partitions across shards without moving a bit — for
    // either congestion-control algorithm.
    let scenario = Scenario::degraded_commute(80, 21);
    let flows = scenario.generate();
    let mut digest_by_algo = Vec::new();
    for algo in [CongestionAlgo::Reno, CongestionAlgo::Cubic] {
        let reports: Vec<FleetReport> = [1usize, 2, 8]
            .iter()
            .map(|&shards| {
                FleetEngine::new(
                    FleetConfig::new(shards).with_seed(17).with_congestion(algo),
                    scenario.network(),
                )
                .run(flows.clone())
            })
            .collect();
        // The faults really fired and the machines really recovered.
        let relay = &reports[0].merged.relay;
        assert!(relay.retransmits > 0, "{algo:?}: no retransmits: {relay:?}");
        assert!(relay.fast_retransmits > 0, "{algo:?}: no fast retransmits: {relay:?}");
        assert!(relay.rto_fires > 0, "{algo:?}: no RTO fires: {relay:?}");
        assert!(relay.sacked_segments > 0, "{algo:?}: no SACKed segments: {relay:?}");
        assert_eq!(reports[0].digest(), reports[1].digest(), "{algo:?}: 1 vs 2 shards");
        assert_eq!(reports[1].digest(), reports[2].digest(), "{algo:?}: 2 vs 8 shards");
        for pair in reports.windows(2) {
            let (a, b) = (&pair[0].merged, &pair[1].merged);
            assert_eq!(a.relay, b.relay, "{algo:?}: recovery counters must match");
            assert_eq!(a.flows, b.flows, "{algo:?}: flow outcomes must match");
            assert_eq!(a.samples, b.samples, "{algo:?}: RTT samples must match");
        }
        digest_by_algo.push(reports[0].digest());
    }
    // Reno and CUBIC are each deterministic; nothing requires them to agree
    // with *each other*, and at scale they do not — this test only pins that
    // the choice is a config knob, not a shard-count artefact.
    assert_eq!(digest_by_algo.len(), 2);
}

#[test]
fn lossy_fleet_digest_survives_batch_size_changes() {
    // Same contract as `batch_size_and_credit_depth_never_move_a_bit`, with
    // the fault stage and retransmission timers fully engaged.
    let scenario = Scenario::degraded_commute(60, 33);
    let flows = scenario.generate();
    let mut digests = Vec::new();
    for (batch, shards) in [(1usize, 1usize), (16, 2), (64, 8)] {
        let report = FleetEngine::new(
            FleetConfig::new(shards).with_seed(19).with_batch_size(batch),
            scenario.network(),
        )
        .run(flows.clone());
        assert!(report.merged.relay.retransmits > 0, "faults inert at batch {batch}");
        digests.push(report.digest());
    }
    assert_eq!(digests[0], digests[1], "batch 1 vs 16");
    assert_eq!(digests[1], digests[2], "batch 16 vs 64");
}

#[test]
fn clean_networks_never_touch_the_recovery_machinery() {
    // The zero-loss guard: on a clean network no recovery state exists, so
    // the congestion-control choice is invisible and the pre-refactor
    // rush-hour digest still reproduces bit for bit — the whole loss
    // subsystem is provably free when no faults can fire.
    let scenario = Scenario::rush_hour(300, 20_170_712);
    let flows = scenario.generate();
    for algo in [CongestionAlgo::Reno, CongestionAlgo::Cubic] {
        let report = FleetEngine::new(
            FleetConfig::new(4).with_seed(77).with_congestion(algo),
            scenario.network(),
        )
        .run(flows.clone());
        assert_eq!(
            report.digest(),
            PRE_REFACTOR_RUSH_HOUR_DIGEST,
            "{algo:?} moved the zero-loss rush-hour digest"
        );
        let relay = &report.merged.relay;
        assert_eq!(
            relay.retransmits + relay.fast_retransmits + relay.rto_fires + relay.sacked_segments,
            0,
            "{algo:?}: recovery counters must stay zero on a clean network: {relay:?}"
        );
    }
}

#[test]
fn loss_rate_matrix_is_shard_count_invariant() {
    // CI's loss-matrix job runs this at MOPEYE_LOSS_RATE ∈ {0, 0.005, 0.03};
    // locally it defaults to a light 0.5 % loss. Reorder and duplicate rates
    // scale with the loss rate, so rate 0 degenerates to a clean network and
    // the recovery machinery must stay inert.
    let rate: f64 = std::env::var("MOPEYE_LOSS_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.005);
    let scenario = Scenario::single(
        TrafficMix::VideoStreaming,
        NetProfile::Lte,
        60,
        SimDuration::from_secs(4),
        29,
    );
    let flows = scenario.generate();
    let access = AccessProfile::lte().with_data_faults(rate, rate / 3.0, rate / 15.0);
    let network = || {
        SimNetwork::builder()
            .seed(29)
            .flow_keyed()
            .with_table2_destinations()
            .access(access.clone())
    };
    let one = FleetEngine::new(FleetConfig::new(1).with_seed(41), network()).run(flows.clone());
    let four = FleetEngine::new(FleetConfig::new(4).with_seed(41), network()).run(flows.clone());
    assert_eq!(one.digest(), four.digest(), "loss rate {rate} diverged between 1 and 4 shards");
    assert_eq!(one.merged.relay, four.merged.relay);
    if rate == 0.0 {
        assert_eq!(one.merged.relay.retransmits, 0, "rate 0 must be a clean network");
    } else {
        assert!(one.merged.relay.retransmits > 0, "rate {rate} never faulted: {:?}", one.merged.relay);
    }
}

#[test]
fn flash_crowd_with_idle_timers_is_shard_count_invariant() {
    // The churn scenario arms and cancels a timer per relayed segment
    // (flow-keyed, so each timer's lifetime is a pure function of its flow).
    // The merged report must stay identical at any shard count even with
    // the timer machinery fully engaged.
    let scenario = Scenario::flash_crowd(120, 31);
    let flows = scenario.generate();
    let mut digests = Vec::new();
    for shards in [1usize, 2, 8] {
        let fleet = FleetEngine::new(
            FleetConfig::new(shards)
                .with_seed(13)
                .with_idle_timeout(SimDuration::from_secs(30)),
            scenario.network(),
        );
        let report = fleet.run(flows.clone());
        // Timers were really armed: more events scheduled than processed
        // (every cancelled timer is scheduled but never fires).
        assert!(
            report.merged.events_scheduled > report.merged.events_processed,
            "timers not engaged at {shards} shards"
        );
        digests.push((report.digest(), report.merged.relay.clone(), report.merged.finished_at));
    }
    assert_eq!(digests[0], digests[1], "1 vs 2 shards");
    assert_eq!(digests[1], digests[2], "2 vs 8 shards");
}
