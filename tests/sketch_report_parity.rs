//! Acceptance: the crowd report produced from the shard sinks' streaming
//! sketches matches the vector-based report on the rush-hour scenario.
//!
//! PR 4's contract is that replacing the retained sample vector with
//! mergeable sketches changes the *cost* of the analytics, not the answers:
//! headline medians and CDF fractions agree within the sketch's 1 % relative
//! error, counts exactly, and the lean (no-vector) run produces the
//! bit-identical aggregates the full run does.

use mopeye::dataset::Scenario;
use mopeye::engine::{FleetConfig, FleetEngine, FleetReport, SampleKind};
use mopeye::measure::{MeasurementKind, RttSketch};

fn run(users: usize, shards: usize, retain_samples: bool) -> FleetReport {
    let scenario = Scenario::rush_hour(users, 20_170_712);
    let mut config = FleetConfig::new(shards).with_seed(77);
    config.engine = config.engine.with_retain_samples(retain_samples);
    let fleet = FleetEngine::new(config, scenario.network());
    fleet.run(scenario.generate())
}

/// Exact nearest-rank median of a sample vector.
fn exact_median(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(f64::total_cmp);
    values[(0.5 * (values.len() - 1) as f64).round() as usize]
}

#[test]
fn sketch_report_matches_vector_report_on_rush_hour() {
    let report = run(400, 2, true);
    let merged = &report.merged;
    assert!(merged.samples.len() > 500, "need a real run, got {}", merged.samples.len());

    for (kind, sample_kind) in
        [(MeasurementKind::Tcp, SampleKind::Tcp), (MeasurementKind::Dns, SampleKind::Dns)]
    {
        let vector: Vec<f64> = merged
            .samples
            .iter()
            .filter(|s| s.kind == sample_kind)
            .map(|s| s.measured_ms)
            .collect();
        let sketch = merged.aggregates.sketch_where(|k| k.kind == kind);
        // Counts agree exactly.
        assert_eq!(sketch.count() as usize, vector.len(), "{kind:?} counts");
        if vector.is_empty() {
            continue;
        }
        // Headline median within the sketch's 1 % guarantee.
        let exact = exact_median(vector.clone());
        let approx = sketch.median().unwrap();
        let err = (approx - exact).abs() / exact;
        assert!(
            err <= RttSketch::RELATIVE_ERROR + 1e-12,
            "{kind:?} median: exact {exact} sketch {approx} (err {err})"
        );
        // CDF fractions: the sketch fraction at x equals the exact fraction
        // at some x' within one bucket of x.
        for x in [25.0, 50.0, 100.0, 200.0] {
            let f = sketch.fraction_at_or_below(x);
            let slack = 2.0 * RttSketch::RELATIVE_ERROR;
            let lo = vector.iter().filter(|v| **v <= x * (1.0 - slack)).count() as f64
                / vector.len() as f64;
            let hi = vector.iter().filter(|v| **v <= x * (1.0 + slack)).count() as f64
                / vector.len() as f64;
            assert!(
                (lo..=hi).contains(&f),
                "{kind:?} fraction at {x}: sketch {f} outside [{lo}, {hi}]"
            );
        }
        // Extremes are exact.
        let min = vector.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vector.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(sketch.min().unwrap(), min);
        assert_eq!(sketch.max().unwrap(), max);
    }
}

#[test]
fn lean_run_drops_the_vector_but_keeps_identical_aggregates() {
    let full = run(150, 2, true);
    let lean = run(150, 2, false);
    // The lean run never materialises the record vector...
    assert!(lean.merged.samples.is_empty());
    assert!(!full.merged.samples.is_empty());
    // ...but its aggregates are bit-identical to the full run's.
    assert_eq!(full.merged.aggregates, lean.merged.aggregates);
    assert_eq!(full.merged.aggregates.digest(), lean.merged.aggregates.digest());
    assert_eq!(
        lean.merged.aggregates.sample_count() as usize,
        full.merged.samples.len(),
        "every sample the full run retained was folded into the lean aggregates"
    );
    // And the lean aggregates are themselves shard-count-invariant.
    let lean8 = run(150, 8, false);
    assert_eq!(lean.merged.aggregates.digest(), lean8.merged.aggregates.digest());
}
