//! Markdown link check over the README and `docs/`.
//!
//! The measurement-pipeline docs cross-reference each other heavily
//! (README ↔ ARCHITECTURE.md ↔ MEASUREMENT.md, plus paths to tests and
//! benches cited as evidence). This test keeps those references from
//! rotting: every relative link target must exist, every `#fragment` on a
//! relative link must match a heading in the target document, and every
//! backtick-quoted repo path in the docs must exist on disk. Runs as part
//! of `cargo test` and as a dedicated CI step, with no external tooling.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// The documents under check: the README, everything in `docs/`, and
/// every per-crate `crates/*/README.md`.
fn documents() -> Vec<PathBuf> {
    let root = repo_root();
    let mut docs = vec![root.join("README.md")];
    let entries = fs::read_dir(root.join("docs")).expect("docs/ exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    let crates = fs::read_dir(root.join("crates")).expect("crates/ exists");
    for entry in crates {
        let readme = entry.expect("readable crates/ entry").path().join("README.md");
        if readme.exists() {
            docs.push(readme);
        }
    }
    docs.sort();
    docs
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `[text](target)` markdown links, skipping code fences.
fn links_of(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(close) = line[i..].find("](").map(|p| p + i) {
            let Some(end) = line[close + 2..].find(')').map(|p| p + close + 2) else { break };
            // Walk back to the matching '[' for sanity; not strictly needed.
            if close < bytes.len() {
                links.push(line[close + 2..end].to_string());
            }
            i = end + 1;
        }
    }
    links
}

/// GitHub-style anchor of a heading line.
fn anchor_of(heading: &str) -> String {
    heading
        .trim()
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

fn anchors_of(text: &str) -> BTreeSet<String> {
    let mut anchors = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            anchors.insert(anchor_of(line));
        }
    }
    anchors
}

#[test]
fn relative_links_and_anchors_resolve() {
    let mut failures = Vec::new();
    for doc in documents() {
        let text = fs::read_to_string(&doc).expect("readable markdown");
        let base = doc.parent().expect("doc has a parent directory");
        for link in links_of(&text) {
            // External links and mailto are out of scope (no network in CI).
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match link.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                doc.clone()
            } else {
                base.join(path_part)
            };
            if !target.exists() {
                failures.push(format!("{}: broken link -> {link}", doc.display()));
                continue;
            }
            if let Some(fragment) = fragment {
                let target_text = fs::read_to_string(&target).unwrap_or_default();
                if !anchors_of(&target_text).contains(fragment) {
                    failures.push(format!(
                        "{}: link {link} -> missing anchor #{fragment} in {}",
                        doc.display(),
                        target.display()
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "broken markdown links:\n{}", failures.join("\n"));
}

#[test]
fn cited_repo_paths_exist() {
    // Backtick-quoted tokens that look like repo paths (contain a '/' and an
    // extension or a known top-level directory) must exist: these are the
    // "see tests/foo.rs" citations that rot most easily.
    let root = repo_root();
    let mut failures = Vec::new();
    for doc in documents() {
        let text = fs::read_to_string(&doc).expect("readable markdown");
        let mut in_fence = false;
        for line in text.lines() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for token in line.split('`').skip(1).step_by(2) {
                let looks_like_path = token.contains('/')
                    && !token.contains(' ')
                    && !token.contains("::")
                    && (token.ends_with(".rs")
                        || token.ends_with(".md")
                        || token.ends_with(".json")
                        || token.ends_with(".toml"));
                if looks_like_path && !root.join(token).exists() {
                    failures.push(format!("{}: cited path `{token}` missing", doc.display()));
                }
            }
        }
    }
    assert!(failures.is_empty(), "stale path citations:\n{}", failures.join("\n"));
}

#[test]
fn the_documents_under_check_include_the_new_docs() {
    let names: Vec<String> = documents()
        .iter()
        .map(|d| d.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for expected in ["README.md", "ARCHITECTURE.md", "MEASUREMENT.md", "SERVER.md"] {
        assert!(names.contains(&expected.to_string()), "{expected} not under link check");
    }
    // The per-crate READMEs are scanned too (the server crate has one).
    let server_readme = repo_root().join("crates/server/README.md");
    assert!(documents().contains(&server_readme), "crates/server/README.md not under link check");
}

/// The anchor algorithm matches GitHub's for the headings we actually use.
#[test]
fn anchor_algorithm_smoke() {
    assert_eq!(anchor_of("## The sink → aggregate dataflow"), "the-sink--aggregate-dataflow");
    assert_eq!(anchor_of("# Measurement pipeline"), "measurement-pipeline");
    assert_eq!(anchor_of("### Comparing against the recorded baselines"), "comparing-against-the-recorded-baselines");
}
