//! Integration tests asserting that the regenerated experiments have the
//! qualitative shape the paper reports: who wins, by roughly what factor, and
//! where the outliers sit.

use mopeye::analytics::{
    CaseJio, CaseWhatsapp, Fig10Dns, Fig11IspDns, Fig5Mapping, Fig9AppRtt, Table1TunnelWrite,
    Table2Accuracy, Table3Throughput, Table6IspDns,
};
use mopeye::dataset::{DatasetSpec, SyntheticDataset};

#[test]
fn figure5_lazy_mapping_mitigation_is_in_the_paper_band() {
    let fig5 = Fig5Mapping::run(2024);
    // Paper: 67.8 % of 481 connect threads avoided the parse.
    assert!(fig5.mitigation_rate > 0.5 && fig5.mitigation_rate < 0.95);
    // Eager parsing is dominated by multi-millisecond parses (Figure 5a).
    assert!(fig5.before_cdf().median().unwrap() > 5.0);
    // Lazy mapping pushes the bulk of requests to (near) zero overhead.
    assert!(fig5.after_cdf().fraction_at_or_below(1.0) > 0.5);
}

#[test]
fn table1_write_schemes_rank_as_in_the_paper() {
    let t1 = Table1TunnelWrite::run(2024, 3_000);
    let [direct, queue, old_put, new_put] = t1.large_fractions();
    assert!(direct > queue, "directWrite must be worse than queueWrite");
    assert!(old_put > new_put, "oldPut must be worse than newPut");
    // newPut large-overhead rate collapses by more than an order of magnitude
    // relative to oldPut (paper: 5.69 % → 0.075 %).
    assert!(new_put < old_put / 5.0, "oldPut {old_put} newPut {new_put}");
}

#[test]
fn table2_mopeye_is_at_least_an_order_of_magnitude_more_accurate() {
    let t2 = Table2Accuracy::run(2024, 6);
    let mopeye_worst = t2.worst_mopeye_delta();
    let mobiperf_best = t2.best_mobiperf_delta();
    assert!(mopeye_worst <= 1.0, "MopEye worst δ {mopeye_worst}");
    assert!(mobiperf_best / mopeye_worst.max(0.05) > 10.0, "separation too small");
}

#[test]
fn table3_haystack_upload_collapses_but_mopeye_stays_within_a_megabit() {
    let t3 = Table3Throughput::run(2024, 8 * 1024 * 1024);
    let (mop_down, mop_up) = t3.mopeye.delta_from(&t3.baseline);
    let (hay_down, hay_up) = t3.haystack.delta_from(&t3.baseline);
    assert!(mop_down.abs() < 1.5 && mop_up.abs() < 1.5);
    assert!(hay_down > 2.0);
    assert!(hay_up > 3.0 * hay_down, "upload must be hit much harder than download");
}

#[test]
fn crowd_dataset_reproduces_the_section_4_2_findings() {
    let dataset = SyntheticDataset::generate(DatasetSpec { seed: 2024, scale: 0.006 });

    // Figure 9 / 10: WiFi beats cellular, DNS beats app RTTs, 2G is dreadful.
    let fig9 = Fig9AppRtt::compute(&dataset);
    let fig10 = Fig10Dns::compute(&dataset);
    assert!(fig9.wifi.median().unwrap() < fig9.cellular.median().unwrap());
    assert!(fig10.all.median().unwrap() < fig9.all.median().unwrap());
    assert!(fig10.gprs2g.median().unwrap() > 5.0 * fig10.lte.median().unwrap());

    // Table 6 / Figure 11: Singtel fastest, Cricket and U.S. Cellular slowest,
    // with Cricket's floor far above Singtel's fast tail.
    let t6 = Table6IspDns::compute(&dataset);
    let median_of = |name: &str| t6.rows.iter().find(|r| r.0 == name).unwrap().3;
    assert!(median_of("Singtel") < median_of("Verizon"));
    assert!(median_of("Cricket") > median_of("Verizon"));
    let fig11 = Fig11IspDns::compute(&dataset);
    assert!(fig11.fraction_below_10ms("Singtel").unwrap() > fig11.fraction_below_10ms("Verizon").unwrap());
    assert!(fig11.min_rtt("Cricket").unwrap() > 30.0);

    // Case studies.
    let whatsapp = CaseWhatsapp::compute(&dataset);
    assert!(whatsapp.softlayer_median_ms > 2.0 * whatsapp.cdn_median_ms);
    let jio = CaseJio::compute(&dataset);
    assert!(jio.app_median_ms > 2.5 * jio.dns_median_ms);
    assert!(jio.domains_better_off_jio as f64 >= 0.8 * jio.domains_compared as f64);
}
