#!/usr/bin/env bash
# End-to-end integration of the long-lived control plane (docs/SERVER.md):
#
#   1. compute the batch reference digest with `mop-serve --oracle`,
#   2. boot a server on a Unix socket, inject the same scenario, step
#      partway, checkpoint to disk — then KILL the process (no graceful
#      shutdown: a crash is the scenario under test),
#   3. boot fresh servers from the checkpoint at DIFFERENT shard counts,
#      drain each, and require the drained digest to equal the batch
#      reference bit for bit.
#
# Run from the repo root: scripts/server_integration.sh
set -euo pipefail

SCENARIO=rush-hour
USERS=60
SEED=11

WORKDIR=$(mktemp -d)
SOCK="$WORKDIR/mop.sock"
CKPT="$WORKDIR/mid-run.ckpt"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
cargo build --release -p mop_bench --bin mop-serve
BIN=target/release/mop-serve

# The reply to a request is its last frame; the digest is sixteen hex digits.
digest_of() {
    grep -o '"digest":"[0-9a-f]\{16\}"' | tail -n 1 | cut -d'"' -f4
}

echo "== batch reference =="
REFERENCE=$("$BIN" --oracle "$SCENARIO" --users "$USERS" --seed "$SEED" --shards 2 \
    | awk '/fleet digest:/ { print $3 }')
echo "reference digest: $REFERENCE"
[ -n "$REFERENCE" ]

echo "== serve, inject, step, checkpoint, kill =="
"$BIN" --socket "$SOCK" --shards 2 --seed "$SEED" &
SERVER_PID=$!

printf '%s\n' \
    "{\"id\":1,\"method\":\"scenario.inject\",\"params\":{\"scenario\":\"$SCENARIO\",\"users\":$USERS}}" \
    '{"id":2,"method":"report.subscribe","params":{"detail":"summary"}}' \
    '{"id":3,"method":"fleet.step","params":{"epochs":3}}' \
    "{\"id\":4,\"method\":\"fleet.checkpoint\",\"params\":{\"path\":\"$CKPT\"}}" \
    | "$BIN" --connect "$SOCK" | tee "$WORKDIR/session-a.log"

MID=$(digest_of < "$WORKDIR/session-a.log")
echo "mid-run digest: $MID (pending flows still queued)"
[ -s "$CKPT" ]

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

for SHARDS in 1 4; do
    echo "== resume on $SHARDS shard(s), drain, compare =="
    "$BIN" --socket "$SOCK" --shards "$SHARDS" --seed "$SEED" --resume "$CKPT" &
    SERVER_PID=$!

    printf '%s\n' \
        '{"id":1,"method":"fleet.step"}' \
        '{"id":2,"method":"server.shutdown"}' \
        | "$BIN" --connect "$SOCK" | tee "$WORKDIR/session-$SHARDS.log"

    wait "$SERVER_PID" || true
    SERVER_PID=""

    DRAINED=$(digest_of < "$WORKDIR/session-$SHARDS.log")
    echo "drained digest on $SHARDS shard(s): $DRAINED"
    if [ "$DRAINED" != "$REFERENCE" ]; then
        echo "FAIL: resumed drain ($DRAINED) != batch reference ($REFERENCE)" >&2
        exit 1
    fi
done

echo "OK: kill + resume reproduces the batch digest at every shard count"
