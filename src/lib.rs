//! MopEye reproduction — opportunistic monitoring of per-app mobile network
//! performance, re-implemented as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates under one namespace so
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`packet`] — IP/TCP/UDP/DNS wire formats,
//! * [`simnet`] — the virtual-time simulated network substrate,
//! * [`tun`] — the simulated TUN device, read strategies and app workloads,
//! * [`procnet`] — `/proc/net` tables and packet-to-app mapping,
//! * [`tcpstack`] — the user-space TCP state machine and client registry,
//! * [`engine`] — the MopEye relay engine and the sharded `FleetEngine`,
//! * [`measure`] — measurement records and statistics,
//! * [`dataset`] — the synthetic crowdsourcing dataset generator and the
//!   fleet scenario matrix (workload mixes × network profiles),
//! * [`baselines`] — tcpdump/MobiPerf/Haystack/Speedtest baselines,
//! * [`analytics`] — reproduction of every table and figure in the paper.
//!
//! # Examples
//!
//! ```
//! use mopeye::engine::{MopEyeConfig, MopEyeEngine};
//! use mopeye::simnet::SimNetwork;
//! use mopeye::tun::{Workload, WorkloadKind};
//! use mopeye::packet::Endpoint;
//! use mopeye::simnet::SimDuration;
//!
//! let net = SimNetwork::builder().seed(1).with_table2_destinations().build();
//! let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);
//! let workload = Workload::new(
//!     WorkloadKind::Messaging,
//!     10_100,
//!     "com.whatsapp",
//!     vec![(Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into())],
//!     SimDuration::from_secs(10),
//!     5,
//! );
//! let report = engine.run(&[workload]);
//! assert_eq!(report.relay.connects_ok as usize, report.tcp_samples().len());
//! ```

pub use mop_analytics as analytics;
pub use mop_baselines as baselines;
pub use mop_dataset as dataset;
pub use mop_measure as measure;
pub use mop_packet as packet;
pub use mop_procnet as procnet;
pub use mop_server as server;
pub use mop_simnet as simnet;
pub use mop_tcpstack as tcpstack;
pub use mop_tun as tun;
pub use mopeye_core as engine;

/// The version of the reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
