//! Offline mini property-testing harness.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of the `proptest` API that the workspace's property suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support,
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * `any::<T>()` for primitive types, `bool` and byte arrays,
//! * integer and float range strategies (`0u8..=0x3f`, `0.1f64..2_000.0`),
//! * a character-class string strategy (`"[a-z0-9]{1,12}"`),
//! * tuple strategies, [`Just`], [`collection::vec`] and [`prop_oneof!`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped onto the std asserts).
//!
//! Inputs are generated from a deterministic per-test RNG (seeded by the
//! test's module path and name) so failures reproduce across runs. Shrinking
//! is intentionally not implemented: a failing case panics with the values
//! visible in the assert message.

use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Honour the same env override real proptest uses so CI can dial
        // effort up or down without code changes.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// Deterministic test RNG (xoshiro256++), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Builds a generator keyed by a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let hash = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3));
        Self::seed_from_u64(hash)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform u64 in `[lo, hi]`.
    pub fn u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// A uniform usize in `[lo, hi)`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        self.u64_inclusive(lo as u64, hi as u64 - 1) as usize
    }
}

/// A value generator.
///
/// Unlike real proptest this is a plain generator: no shrinking, no
/// intermediate value trees.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric values spanning several orders of magnitude.
        let mag = (rng.next_f64() * 40.0) - 20.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for byte in &mut out {
            *byte = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u64_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.u64_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

/// Character-class string strategy: supports patterns of literal characters
/// and `[a-z0-9]` classes, each optionally followed by `{n}` or `{m,n}`.
///
/// This covers the patterns used by the workspace's property suites; anything
/// unsupported panics so a bad pattern fails loudly instead of silently
/// generating wrong data.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == ']')
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"\\.+*?()|^$".contains(c),
                "unsupported regex construct {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        // Parse an optional {n} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition"),
                    n.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
        let count = rng.usize_range(lo, hi + 1);
        for _ in 0..count {
            out.push(alphabet[rng.usize_range(0, alphabet.len())]);
        }
    }
    out
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// One arm of a [`Union`]: a boxed generator function.
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Weighted union of strategies over a common value type ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, UnionArm<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, generator)` arms.
    pub fn new(arms: Vec<(u32, UnionArm<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut target = rng.u64_inclusive(0, self.total - 1);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if target < weight {
                return arm(rng);
            }
            target -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_range(self.len.start, self.len.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property suite needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a test that runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Picks one of several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((
                $weight as u32,
                {
                    let __strategy = $strat;
                    ::std::boxed::Box::new(move |__rng: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&__strategy, __rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Property-test assertion (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property-test equality assertion (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property-test inequality assertion (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5u8..=5).generate(&mut rng);
            assert_eq!(w, 5);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..100 {
            let s = "[a-z0-9]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn unions_respect_zero_and_positive_weights() {
        let mut rng = TestRng::from_name("unions");
        let strategy = prop_oneof![3 => Just(1u8), 0 => Just(2u8), 1 => Just(3u8)];
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            counts[strategy.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn vec_lengths_are_in_range() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..100 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u16..100, label in "[ab]{2}", flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(label.len(), 2);
            prop_assert_ne!(flag as u8, 2);
        }
    }
}
