//! Offline mini benchmarking harness.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of the `criterion` API that the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `b.iter(..)`, [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement model: each sample times a batch of iterations sized so that
//! one batch takes at least ~200µs, and the reported figure is the median
//! ns/iteration over the samples. Results are printed one line per benchmark
//! in a stable `group/function: median ns/iter` format so bench output can be
//! diffed between runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` invocations of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the batch until one batch takes at least ~200µs so
    // per-sample timer resolution noise stays small for nanosecond routines.
    let mut batch: u64 = 1;
    loop {
        let mut bencher = Bencher { batch, elapsed: Duration::ZERO };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
            break;
        }
        batch *= 8;
    }
    let mut per_iter_ns: Vec<f64> = (0..sample_size.max(2))
        .map(|_| {
            let mut bencher = Bencher { batch, elapsed: Duration::ZERO };
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let best = per_iter_ns[0];
    let worst = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "{id:<50} median {} [best {}, worst {}] ({} samples x {} iters)",
        format_ns(median),
        format_ns(best),
        format_ns(worst),
        per_iter_ns.len(),
        batch,
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a function that runs each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_print() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1u64 + 1));
        });
        group.finish();
        // Calibration plus each sample invokes the closure at least once.
        assert!(ran >= 3);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2.3e9).contains("s/iter"));
    }
}
