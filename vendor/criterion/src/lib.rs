//! Offline mini benchmarking harness.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of the `criterion` API that the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `b.iter(..)`, [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement model: each sample times a batch of iterations sized so that
//! one batch takes at least ~200µs, and the reported figure is the median
//! ns/iteration over the samples. Results are printed one line per benchmark
//! in a stable `group/function: median ns/iter` format so bench output can be
//! diffed between runs.
//!
//! Two command-line flags (passed as `cargo bench -- <flags>`) extend the
//! vendored harness:
//!
//! * `--save-baseline <name>` — besides printing, dump every result as JSON
//!   to `target/criterion-baselines/<name>/<bench>.json`, in the same shape
//!   as the workspace's `BENCH_baseline.json` `criterion` section, so perf
//!   deltas between PRs are machine-checkable.
//! * `--quick` — smoke mode for CI: skip batch calibration and take the
//!   minimum number of samples, so a full bench binary runs in milliseconds
//!   and bench rot (compile errors, panics) is caught on every PR without
//!   paying for real measurements.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark, as recorded for `--save-baseline`.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    median_ns: f64,
    best_ns: f64,
    worst_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Process-wide result collector, flushed by [`finalize`].
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Harness options parsed from the process arguments.
#[derive(Debug, Clone, Default)]
struct Options {
    quick: bool,
    save_baseline: Option<String>,
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--save-baseline" => options.save_baseline = args.next(),
            _ => {}
        }
    }
    options
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    options: Options,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 20, options: parse_options() }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { parent: self, name: name.into(), sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(id, sample_size, self.options.quick, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.parent.options.quick,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` invocations of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, quick: bool, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the batch until one batch takes at least ~200µs so
    // per-sample timer resolution noise stays small for nanosecond routines.
    // Quick mode skips calibration entirely — it only proves the bench runs.
    let mut batch: u64 = 1;
    if !quick {
        loop {
            let mut bencher = Bencher { batch, elapsed: Duration::ZERO };
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
    }
    let samples = if quick { 2 } else { sample_size.max(2) };
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut bencher = Bencher { batch, elapsed: Duration::ZERO };
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let best = per_iter_ns[0];
    let worst = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "{id:<50} median {} [best {}, worst {}] ({} samples x {} iters)",
        format_ns(median),
        format_ns(best),
        format_ns(worst),
        per_iter_ns.len(),
        batch,
    );
    RESULTS.lock().expect("results poisoned").push(BenchResult {
        id: id.to_string(),
        median_ns: median,
        best_ns: best,
        worst_ns: worst,
        samples: per_iter_ns.len(),
        iters_per_sample: batch,
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Strips the trailing `-<16 hex char build hash>` cargo appends to binary
/// stems (e.g. `packet_codec-1a2b3c4d5e6f7890` → `packet_codec`).
fn strip_build_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((name, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name
        }
        _ => stem,
    }
}

/// The bench-binary stem with any cargo build hash stripped.
fn bench_stem() -> String {
    let argv0 = std::env::args().next().unwrap_or_else(|| "bench".to_string());
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    strip_build_hash(stem).to_string()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The directory baselines are written under: `<workspace>/target`, found by
/// walking up from the current directory to the `Cargo.lock` (cargo runs
/// bench binaries with the *package* directory as cwd, not the workspace).
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("target");
        }
    }
}

/// Writes collected results as JSON when `--save-baseline <name>` was given.
///
/// Called automatically by [`criterion_main!`] after every group has run.
/// The file lands at `target/criterion-baselines/<name>/<bench>.json` (under
/// the workspace target directory) and mirrors the `criterion` section of
/// `BENCH_baseline.json`, one key per `group/function` id.
pub fn finalize() {
    let options = parse_options();
    let Some(name) = options.save_baseline else { return };
    let results = RESULTS.lock().expect("results poisoned");
    if results.is_empty() {
        return;
    }
    let dir = target_dir().join("criterion-baselines").join(&name);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("save-baseline: cannot create {}: {e}", dir.display());
        return;
    }
    let mut json = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "  \"{}\": {{\"median_ns\": {}, \"best_ns\": {}, \"worst_ns\": {}, \
             \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            json_escape(&r.id),
            r.median_ns,
            r.best_ns,
            r.worst_ns,
            r.samples,
            r.iters_per_sample,
            comma,
        ));
    }
    json.push_str("}\n");
    let path = dir.join(format!("{}.json", bench_stem()));
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("save-baseline: wrote {}", path.display()),
        Err(e) => eprintln!("save-baseline: cannot write {}: {e}", path.display()),
    }
}

/// Declares a function that runs each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_print() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1u64 + 1));
        });
        group.finish();
        // Calibration plus each sample invokes the closure at least once.
        assert!(ran >= 3);
        // The result collector saw the run under its full id.
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|r| r.id == "selftest/noop"));
    }

    #[test]
    fn quick_mode_takes_two_uncalibrated_samples() {
        let mut calls = 0u32;
        run_benchmark("selftest/quick", 20, true, |b| {
            calls += 1;
            b.iter(|| black_box(1u64));
        });
        assert_eq!(calls, 2, "quick mode must skip calibration");
        let results = RESULTS.lock().unwrap();
        let r = results.iter().find(|r| r.id == "selftest/quick").unwrap();
        assert_eq!(r.samples, 2);
        assert_eq!(r.iters_per_sample, 1);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2.3e9).contains("s/iter"));
    }

    #[test]
    fn bench_stem_strips_cargo_hash() {
        assert_eq!(strip_build_hash("packet_codec-1a2b3c4d5e6f7890"), "packet_codec");
        assert_eq!(strip_build_hash("multi-word-name-0123456789abcdef"), "multi-word-name");
        // Non-hash suffixes and hashes of the wrong length are kept.
        assert_eq!(strip_build_hash("tun_read"), "tun_read");
        assert_eq!(strip_build_hash("name-notahash"), "name-notahash");
        assert_eq!(strip_build_hash("name-1a2b3c"), "name-1a2b3c");
        assert!(!bench_stem().is_empty());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
