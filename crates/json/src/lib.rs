//! Self-contained JSON support for the MopEye reproduction.
//!
//! The workspace runs in offline build environments, so instead of serde_json
//! it uses this small first-party crate for the two places JSON actually
//! crosses a boundary:
//!
//! * the measurement store's JSON-lines persistence
//!   (`mop_measure::MeasurementStore::{to,from}_json_lines`), and
//! * the machine-readable experiment outputs written by the `repro` binary
//!   and the bench baseline files.
//!
//! [`Value`] keeps object keys in insertion order so rendered experiment
//! files diff cleanly between runs.

use std::fmt;

/// A JSON document: null, boolean, number, string, array or object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// A floating-point number. Non-finite values serialise as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a u64, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an i64, when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an f64, for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]`, yielding `Null` for misses like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
    )*};
}
from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        i64::try_from(v).map(Value::Int).unwrap_or(Value::Float(v as f64))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

macro_rules! from_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Into<Value>),+> From<($($name,)+)> for Value {
            fn from(v: ($($name,)+)) -> Value {
                Value::Array(vec![$(v.$idx.into()),+])
            }
        }
    )*};
}
from_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Builds a [`Value`] from object/array literals and expressions.
///
/// Unlike serde_json's macro, nested object literals must themselves be
/// wrapped in `json!(..)` — values are plain Rust expressions converted via
/// `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($key:literal : $value:expr),+ $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::from($value))),+
        ])
    };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($element:expr),+ $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::Value::from($element)),+])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

/// True for the bytes `escape_into` cannot pass through verbatim. Every
/// such byte is ASCII, so scanning bytes (not chars) is enough: multi-byte
/// UTF-8 sequences never contain them and copy through untouched.
#[inline]
fn needs_escape(byte: u8) -> bool {
    byte < 0x20 || byte == b'"' || byte == b'\\'
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    // The common case — no escapes at all (every report key and most
    // values) — is one bulk copy. Otherwise copy unescaped runs between
    // escapes in bulk, mirroring the parser's run-consuming scan.
    let bytes = s.as_bytes();
    let mut run_start = 0;
    let mut i = 0;
    while i < bytes.len() {
        if needs_escape(bytes[i]) {
            out.push_str(&s[run_start..i]);
            match bytes[i] {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                c => {
                    use fmt::Write as _;
                    write!(out, "\\u{:04x}", c).expect("writing to a String cannot fail");
                }
            }
            run_start = i + 1;
        }
        i += 1;
    }
    out.push_str(&s[run_start..]);
    out.push('"');
}

fn write_number(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else {
        use fmt::Write as _;
        let start = out.len();
        write!(out, "{f}").expect("writing to a String cannot fail");
        // Keep Float-ness through a round trip: whole values need a decimal
        // point or they reparse as Int.
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            use fmt::Write as _;
            write!(out, "{i}").expect("writing to a String cannot fail");
        }
        Value::Float(f) => write_number(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in members.iter().enumerate() {
                push_indent(out, indent + 1);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// A lower bound on `value`'s compact rendering length, from one cheap
/// pass over the tree — numbers count their minimum width and strings
/// their unescaped length, so the real rendering is rarely much longer.
/// Pre-sizing with this keeps a large document (a 650 KB checkpoint, say)
/// from re-growing its output buffer a copy at a time.
fn estimate_compact(value: &Value) -> usize {
    match value {
        Value::Null | Value::Bool(_) => 4,
        Value::Int(_) => 4,
        Value::Float(_) => 8,
        Value::Str(s) => s.len() + 2,
        Value::Array(items) => {
            2 + items.len() + items.iter().map(estimate_compact).sum::<usize>()
        }
        Value::Object(members) => {
            2 + members.len()
                + members.iter().map(|(key, item)| key.len() + 3 + estimate_compact(item)).sum::<usize>()
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::with_capacity(estimate_compact(self));
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

/// Compact one-line rendering (JSON-lines friendly).
pub fn to_string(value: &Value) -> String {
    let mut out = String::with_capacity(estimate_compact(value));
    write_compact(&mut out, value);
    out
}

/// Human-readable two-space-indented rendering.
pub fn to_string_pretty(value: &Value) -> String {
    // Pretty output carries indentation on top of the compact estimate;
    // the compact bound still absorbs most of the growth doubling.
    let mut out = String::with_capacity(estimate_compact(value));
    write_pretty(&mut out, value, 0);
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected {:?}", byte as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.error("expected a JSON value"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.error(format!("expected {word}"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { message: "invalid utf-8 in number".into(), offset: start })?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.error(format!("bad number {text:?}")),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let read_hex = |bytes: &[u8], at: usize| {
                                bytes
                                    .get(at..at + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                            };
                            let Some(unit) = read_hex(self.bytes, self.pos + 1) else {
                                return self.error("bad \\u escape");
                            };
                            let scalar = if (0xD800..=0xDBFF).contains(&unit) {
                                // High surrogate: a low surrogate escape must
                                // follow immediately (standard JSON encoding
                                // of characters outside the BMP).
                                let follows_escape = self.bytes.get(self.pos + 5) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 6) == Some(&b'u');
                                let low = if follows_escape {
                                    read_hex(self.bytes, self.pos + 7)
                                        .filter(|lo| (0xDC00..=0xDFFF).contains(lo))
                                } else {
                                    None
                                };
                                match low {
                                    Some(lo) => {
                                        self.pos += 6;
                                        0x10000 + ((unit - 0xD800) << 10) + (lo - 0xDC00)
                                    }
                                    None => return self.error("unpaired surrogate in \\u escape"),
                                }
                            } else {
                                unit
                            };
                            match char::from_u32(scalar) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.error("bad \\u escape"),
                            }
                        }
                        _ => return self.error("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one pass. A
                    // multi-byte scalar cannot straddle the end of the run:
                    // its continuation bytes are >= 0x80, so the scan only
                    // stops at '"', '\\' or EOF on a scalar boundary.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                        ParseError { message: "invalid utf-8 in string".into(), offset: start }
                    })?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.error("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return self.error("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.error("trailing characters after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_through_text() {
        let doc = json!({
            "name": "mopeye",
            "count": 42u32,
            "rtt": 76.5,
            "nothing": Option::<f64>::None,
            "flags": [true, false],
            "series": vec![(1.0f64, 0.5f64), (2.0, 1.0)],
        });
        let text = to_string(&doc);
        let back = from_str(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back["count"].as_u64(), Some(42));
        assert_eq!(back["rtt"].as_f64(), Some(76.5));
        assert!(back["nothing"].is_null());
        assert_eq!(back["flags"].as_array().unwrap().len(), 2);
        assert_eq!(back["series"][0][1].as_f64(), Some(0.5));
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn pretty_rendering_parses_back() {
        let doc = json!({ "a": json!({ "b": [1, 2, 3] }), "c": "x\"y\\z\nw" });
        let pretty = to_string_pretty(&doc);
        assert!(pretty.contains("\n"));
        assert_eq!(from_str(&pretty).unwrap(), doc);
    }

    #[test]
    fn escapes_and_unicode_survive() {
        let doc = Value::Str("tab\t nl\n quote\" back\\ unicode é €".to_string());
        assert_eq!(from_str(&to_string(&doc)).unwrap(), doc);
        assert_eq!(from_str(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        // Surrogate-pair escapes, as emitted by ASCII-escaping JSON writers
        // (e.g. Python's json.dumps default): 😀 is U+1F600.
        assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap(), Value::Str("\u{1F600}".into()));
        assert_eq!(from_str("\"x\\ud83d\\ude00y\"").unwrap(), Value::Str("x\u{1F600}y".into()));
        // BMP escapes still work, and mixed raw UTF-8 survives alongside.
        assert_eq!(from_str("\"\\u00e9 é\"").unwrap(), Value::Str("é é".into()));
        // Lone or malformed surrogates are rejected, not mangled.
        assert!(from_str(r#""\ud83d""#).is_err());
        assert!(from_str(r#""\ud83dA""#).is_err());
        assert!(from_str(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn numbers_keep_integerness() {
        assert_eq!(from_str("42").unwrap(), Value::Int(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        // Whole floats keep a decimal point so they parse back as floats,
        // including values at and beyond 1e15.
        assert_eq!(to_string(&Value::Float(2.0)), "2.0");
        assert_eq!(from_str(&to_string(&Value::Float(1e15))).unwrap(), Value::Float(1e15));
        assert_eq!(from_str(&to_string(&Value::Float(-3e18))).unwrap(), Value::Float(-3e18));
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("true false").is_err());
        let err = from_str("nul").unwrap_err();
        assert!(err.to_string().contains("null"));
    }
}
