//! Property tests for the printer/parser pair: any value the workspace
//! can construct must survive `to_string` → `from_str` unchanged. The
//! string cases matter most — protocol frames and checkpoint documents
//! put arbitrary text (app names, error messages, file paths) through
//! this round trip, so control characters, `\u` escapes and non-BMP
//! codepoints all get exercised here.

use mop_json::{from_str, to_string, to_string_pretty, Value};
use proptest::prelude::*;

/// Arbitrary Unicode strings: raw codepoints drawn from the whole scalar
/// range, so control characters (escaped as `\uXXXX` on output), the BMP
/// and supplementary planes (emoji, CJK extensions) all appear.
/// `char::from_u32` drops the surrogate gap.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x11_0000, 0..24)
        .prop_map(|points| points.into_iter().filter_map(char::from_u32).collect())
}

/// Arbitrary JSON documents of bounded depth. Floats stay finite (the
/// printer maps non-finite to `null`, deliberately not a round trip).
fn arb_value(depth: usize) -> proptest::Union<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        arb_string().prop_map(Value::Str),
    ];
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        3 => leaf,
        1 => proptest::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::Array),
        1 => proptest::collection::vec((arb_string(), arb_value(depth - 1)), 0..4)
            .prop_map(Value::Object),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_strings_round_trip(s in arb_string()) {
        let value = Value::Str(s.clone());
        let printed = to_string(&value);
        prop_assert!(!printed.contains('\n'), "frames must stay single-line: {printed}");
        prop_assert_eq!(from_str(&printed).unwrap(), value);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_documents_round_trip(value in arb_value(3)) {
        prop_assert_eq!(from_str(&to_string(&value)).unwrap(), value.clone());
        // The pretty printer parses back to the same document too.
        prop_assert_eq!(from_str(&to_string_pretty(&value)).unwrap(), value);
    }
}

#[test]
fn control_characters_print_as_escapes() {
    assert_eq!(to_string(&Value::Str("\u{0}".into())), "\"\\u0000\"");
    assert_eq!(to_string(&Value::Str("\u{1f}".into())), "\"\\u001f\"");
    assert_eq!(to_string(&Value::Str("a\nb\tc\r\"\\".into())), "\"a\\nb\\tc\\r\\\"\\\\\"");
    // DEL and above are not control-escaped: raw UTF-8 is valid JSON.
    assert_eq!(to_string(&Value::Str("\u{7f}é".into())), "\"\u{7f}é\"");
}

#[test]
fn unicode_escapes_parse_to_their_codepoints() {
    assert_eq!(from_str("\"\\u0041\\u00e9\\u2603\"").unwrap(), Value::Str("Aé☃".into()));
    assert_eq!(from_str("\"\\u0000\"").unwrap(), Value::Str("\u{0}".into()));
    assert_eq!(from_str("\"\\/\\b\\f\"").unwrap(), Value::Str("/\u{8}\u{c}".into()));
    // Surrogate pairs decode to one supplementary-plane character...
    assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap(), Value::Str("\u{1F600}".into()));
    // ...and lone halves are rejected rather than mangled.
    assert!(from_str("\"\\ud83d\"").is_err());
    assert!(from_str("\"\\ude00x\"").is_err());
}

#[test]
fn non_bmp_codepoints_survive_raw_and_escaped() {
    let text = "emoji \u{1F600}\u{1F389} and beyond \u{10FFFF}";
    let value = Value::Str(text.into());
    assert_eq!(from_str(&to_string(&value)).unwrap(), value);
    // The escaped spelling of the same character parses equal to the raw one.
    assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap(), from_str("\"\u{1F600}\"").unwrap());
}
