//! Golden-transcript conformance suite.
//!
//! `tests/transcripts/*.txt` record whole protocol sessions: `> ` lines
//! are client requests, `< ` lines the exact frames the server must emit.
//! The suite replays them byte for byte through three paths — the
//! dispatcher directly, the generic stream transport, and a real Unix
//! socket served on a background thread — so every transport is certified
//! against the same recordings. `session.txt` is additionally replayed at
//! several shard counts: its replies carry fleet digests, and the
//! flow-keyed engine guarantees those are shard-invariant.
//!
//! To re-record after an intentional protocol change:
//! `MOP_REGEN_TRANSCRIPTS=1 cargo test -p mop_server --test server_protocol`

use std::fs;
use std::path::{Path, PathBuf};

use mop_server::{serve, PlaneConfig, Server};

/// One request and the frames it must produce.
struct Exchange {
    request: String,
    expected: Vec<String>,
}

fn transcript_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/transcripts").join(name)
}

fn parse_transcript(text: &str) -> Vec<Exchange> {
    let mut out: Vec<Exchange> = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(request) = line.strip_prefix("> ") {
            out.push(Exchange { request: request.to_string(), expected: Vec::new() });
        } else if let Some(frame) = line.strip_prefix("< ") {
            out.last_mut()
                .expect("a `< ` frame needs a preceding `> ` request")
                .expected
                .push(frame.to_string());
        } else {
            panic!("unrecognised transcript line: {line}");
        }
    }
    out
}

fn config(shards: usize) -> PlaneConfig {
    PlaneConfig { shards, ..PlaneConfig::default() }
}

/// Runs every request through a fresh dispatcher, returning the frames
/// per exchange.
fn live_frames(name: &str, shards: usize) -> (Vec<Exchange>, Vec<Vec<String>>) {
    let path = transcript_path(name);
    let exchanges = parse_transcript(&fs::read_to_string(&path).unwrap());
    let mut server = Server::new(config(shards));
    let frames: Vec<Vec<String>> =
        exchanges.iter().map(|e| server.handle_line(&e.request).frames).collect();
    (exchanges, frames)
}

/// Loads a transcript; under MOP_REGEN_TRANSCRIPTS=1 first re-records the
/// `< ` lines from a live session (preserving the comment header).
fn load(name: &str, shards: usize) -> Vec<Exchange> {
    let path = transcript_path(name);
    if std::env::var_os("MOP_REGEN_TRANSCRIPTS").is_some() {
        let original = fs::read_to_string(&path).unwrap();
        let (exchanges, frames) = live_frames(name, shards);
        let mut text = String::new();
        for line in original.lines() {
            if line.is_empty() || line.starts_with('#') {
                text.push_str(line);
                text.push('\n');
            } else {
                break;
            }
        }
        for (exchange, frames) in exchanges.iter().zip(&frames) {
            text.push_str("> ");
            text.push_str(&exchange.request);
            text.push('\n');
            for frame in frames {
                text.push_str("< ");
                text.push_str(frame);
                text.push('\n');
            }
        }
        fs::write(&path, text).unwrap();
    }
    let exchanges = parse_transcript(&fs::read_to_string(&path).unwrap());
    assert!(
        exchanges.iter().all(|e| !e.expected.is_empty()),
        "{name} has requests with no recorded reply — run with MOP_REGEN_TRANSCRIPTS=1"
    );
    exchanges
}

fn replay_in_memory(name: &str, record_shards: usize, replay_shards: usize) {
    let exchanges = load(name, record_shards);
    let mut server = Server::new(config(replay_shards));
    for (i, exchange) in exchanges.iter().enumerate() {
        let turn = server.handle_line(&exchange.request);
        assert_eq!(
            turn.frames, exchange.expected,
            "{name} exchange {i} ({}) diverged at {replay_shards} shards",
            exchange.request
        );
    }
}

#[test]
fn the_error_transcript_replays_byte_for_byte() {
    replay_in_memory("errors.txt", 2, 2);
}

#[test]
fn the_session_transcript_is_shard_invariant() {
    for shards in [1, 2, 4] {
        replay_in_memory("session.txt", 2, shards);
    }
}

#[test]
fn transcripts_replay_over_the_stream_transport() {
    for (name, shards) in [("errors.txt", 2), ("session.txt", 4)] {
        let exchanges = load(name, 2);
        let input: String =
            exchanges.iter().map(|e| format!("{}\n", e.request)).collect();
        let expected: String = exchanges
            .iter()
            .flat_map(|e| e.expected.iter())
            .map(|f| format!("{f}\n"))
            .collect();
        let mut server = Server::new(config(shards));
        let mut output = Vec::new();
        let stopped = serve(&mut server, input.as_bytes(), &mut output).unwrap();
        assert!(stopped, "both transcripts end in server.shutdown");
        assert_eq!(String::from_utf8(output).unwrap(), expected, "{name} over serve()");
    }
}

#[cfg(unix)]
#[test]
fn transcripts_replay_over_a_unix_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    for (name, shards) in [("errors.txt", 2), ("session.txt", 1)] {
        let exchanges = load(name, 2);
        let socket = std::env::temp_dir()
            .join(format!("mop-serve-test-{}-{name}.sock", std::process::id()));
        let server_socket = socket.clone();
        let handle = std::thread::spawn(move || {
            let mut server = Server::new(config(shards));
            mop_server::serve_unix(&mut server, &server_socket)
        });

        let mut stream = None;
        for _ in 0..100 {
            match UnixStream::connect(&socket) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        let stream = stream.expect("the server thread binds its socket");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for (i, exchange) in exchanges.iter().enumerate() {
            writeln!(writer, "{}", exchange.request).unwrap();
            for expected in &exchange.expected {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert_eq!(
                    line.trim_end(),
                    expected,
                    "{name} exchange {i} over the socket"
                );
            }
        }
        handle.join().unwrap().unwrap();
        assert!(!socket.exists(), "serve_unix unlinks its socket on shutdown");
    }
}
