//! Oracle conformance: the stepped, interleaved, checkpointed control
//! plane must produce bit-identical reports to uninterrupted batch runs.
//!
//! The oracle for any session is simple: for every injected scenario,
//! take the flows that the session actually let run (all of them, or —
//! for a scenario retired at cursor `c` — those scheduled before the
//! epoch boundary of `c`), run each scenario whole on a single fresh
//! fleet, absorb everything into one report. Under the flow-keyed
//! discipline the plane's incremental absorb of the same flow set must
//! land on the same canonical report, whatever the step/retire/
//! checkpoint interleaving and whatever the shard counts involved.

use std::mem;

use mop_dataset::Scenario;
use mop_json::json;
use mop_server::{ControlPlane, PlaneConfig, Server};
use mopeye_core::{
    epoch_boundary, run_report_from_json, split_at, FleetConfig, FleetEngine, RunReport,
};
use proptest::prelude::*;

const KINDS: [&str; 3] = ["rush-hour", "flash-crowd", "degraded-commute"];

fn config(shards: usize) -> PlaneConfig {
    PlaneConfig { shards, ..PlaneConfig::default() }
}

fn scenario(kind: &str, users: usize, seed: u64) -> Scenario {
    match kind {
        "rush-hour" => Scenario::rush_hour(users, seed),
        "flash-crowd" => Scenario::flash_crowd(users, seed),
        "degraded-commute" => Scenario::degraded_commute(users, seed),
        other => panic!("unknown kind {other}"),
    }
}

/// Mirrors `ControlPlane::build_fleet` for the reference runs.
fn batch_fleet(plane: &PlaneConfig, network: mop_simnet::SimNetworkBuilder) -> FleetEngine {
    let mut fleet = FleetConfig::new(plane.shards)
        .with_seed(plane.seed)
        .with_congestion(plane.congestion)
        .with_epochs(plane.epoch_width, plane.epoch_window);
    fleet.engine = fleet.engine.with_retain_samples(false);
    FleetEngine::new(fleet, network)
}

/// One scenario's session history, as the test driver saw it.
struct Mirror {
    kind: &'static str,
    users: usize,
    seed: u64,
    /// `Some(boundary)` when the scenario was retired: only flows
    /// scheduled before the boundary ever ran.
    ran_cut: Option<mop_simnet::SimTime>,
}

/// The uninterrupted batch reference for a session history.
fn oracle_digest(plane: &PlaneConfig, mirrors: &[Mirror]) -> u64 {
    let mut merged = RunReport::empty();
    for mirror in mirrors {
        let scenario = scenario(mirror.kind, mirror.users, mirror.seed);
        let mut flows = scenario.generate();
        if let Some(cut) = mirror.ran_cut {
            flows = split_at(flows, cut).0;
        }
        if flows.is_empty() {
            continue;
        }
        let fleet = batch_fleet(plane, scenario.network());
        let mut report = fleet.run(flows);
        merged.absorb(mem::replace(&mut report.merged, RunReport::empty()));
    }
    merged.canonicalise();
    merged.fleet_digest()
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Inject { kind: usize, users: usize, seed: u64 },
    Retire { slot: usize },
    Step { epochs: u64 },
    /// Checkpoint the plane and resume the document on a fresh plane with
    /// this shard count, continuing the session there.
    CheckpointResume { shards: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..KINDS.len(), 8usize..20, 1u64..40)
            .prop_map(|(kind, users, seed)| Op::Inject { kind, users, seed }),
        1 => (0usize..4).prop_map(|slot| Op::Retire { slot }),
        3 => (0u64..4).prop_map(|epochs| Op::Step { epochs }),
        1 => (1usize..5).prop_map(|shards| Op::CheckpointResume { shards }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn random_interleavings_match_the_batch_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..6),
    ) {
        let base = config(2);
        let width = base.epoch_width.as_nanos();
        let mut plane = ControlPlane::new(base);
        let mut mirrors: Vec<Mirror> = Vec::new();
        for op in &ops {
            match *op {
                Op::Inject { kind, users, seed } => {
                    let kind = KINDS[kind];
                    plane.inject(kind, users, seed).unwrap();
                    mirrors.push(Mirror { kind, users, seed, ran_cut: None });
                }
                Op::Retire { slot } => {
                    let live: Vec<usize> = mirrors
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.ran_cut.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    if live.is_empty() {
                        continue;
                    }
                    let index = live[slot % live.len()];
                    // Scenario ids are handed out in inject order: s1, s2...
                    plane.retire(&format!("s{}", index + 1)).unwrap();
                    mirrors[index].ran_cut =
                        Some(epoch_boundary(width, plane.cursor_epoch()));
                }
                Op::Step { epochs } => {
                    plane.step(epochs);
                }
                Op::CheckpointResume { shards } => {
                    let doc = plane.checkpoint();
                    let mut fresh = ControlPlane::new(config(shards));
                    fresh.resume(&doc).unwrap();
                    plane = fresh;
                }
            }
        }
        plane.step(plane.epochs_to_drain());
        prop_assert_eq!(plane.digest(), oracle_digest(&base, &mirrors));
    }
}

/// Drives the protocol dispatcher (not the plane directly): a `full`
/// subscriber's streamed step deltas, folded back through the checkpoint
/// encoding, reproduce the server's cumulative fleet digest.
#[test]
fn streamed_deltas_fold_to_the_cumulative_digest() {
    let mut server = Server::new(config(2));
    let call = |server: &mut Server, line: &str| server.handle_line(line);
    call(
        &mut server,
        "{\"id\":1,\"method\":\"scenario.inject\",\
         \"params\":{\"scenario\":\"rush-hour\",\"users\":30,\"seed\":5}}",
    );
    call(
        &mut server,
        "{\"id\":2,\"method\":\"report.subscribe\",\"params\":{\"detail\":\"full\"}}",
    );

    let mut folded = RunReport::empty();
    let mut digest = String::new();
    let mut id = 3u64;
    loop {
        let turn = call(
            &mut server,
            &format!("{{\"id\":{id},\"method\":\"fleet.step\",\"params\":{{\"epochs\":1}}}}"),
        );
        id += 1;
        let mut pending = None;
        for frame in &turn.frames {
            let value = mop_json::from_str(frame).unwrap();
            if value["id"].is_null() {
                assert_eq!(value["stream"].as_str(), Some("delta"));
                let delta = run_report_from_json(&value["event"]["report"]).unwrap();
                folded.absorb(delta);
                folded.canonicalise();
            } else {
                pending = value["result"]["pending"].as_u64();
                digest = value["result"]["digest"].as_str().unwrap().to_string();
            }
        }
        if pending == Some(0) {
            break;
        }
        assert!(id < 1_000, "drain must terminate");
    }
    assert_eq!(format!("{:016x}", folded.fleet_digest()), digest);
    assert_eq!(
        folded.fleet_digest(),
        oracle_digest(&config(2), &[Mirror { kind: "rush-hour", users: 30, seed: 5, ran_cut: None }]),
    );
}

/// The full protocol round trip the issue pins: inject, stream, checkpoint
/// mid-run, resume the document on FRESH servers at several shard counts,
/// and land on the batch reference digest every time.
#[test]
fn protocol_checkpoint_resume_matches_batch_across_shard_counts() {
    let reference = oracle_digest(
        &config(2),
        &[Mirror { kind: "rush-hour", users: 40, seed: 7, ran_cut: None }],
    );

    let mut saver = Server::new(config(2));
    saver.handle_line(
        "{\"id\":1,\"method\":\"scenario.inject\",\
         \"params\":{\"scenario\":\"rush-hour\",\"users\":40,\"seed\":7}}",
    );
    saver.handle_line("{\"id\":2,\"method\":\"fleet.step\",\"params\":{\"epochs\":3}}");
    let turn = saver.handle_line("{\"id\":3,\"method\":\"fleet.checkpoint\"}");
    let reply = mop_json::from_str(&turn.frames[0]).unwrap();
    let doc = reply["result"]["checkpoint"].clone();
    assert!(!doc.is_null());
    // The saving server drains to the reference digest on its own...
    let turn = saver.handle_line("{\"id\":4,\"method\":\"fleet.step\"}");
    let reply = mop_json::from_str(&turn.frames[0]).unwrap();
    assert_eq!(reply["result"]["digest"].as_str().unwrap(), format!("{reference:016x}"));

    // ...and so does every fresh server resumed from the mid-run document.
    for shards in [1, 4] {
        let mut resumed = Server::new(config(shards));
        let request = mop_json::to_string(&json!({
            "id": 1,
            "method": "fleet.resume",
            "params": json!({ "checkpoint": doc.clone() }),
        }));
        let turn = resumed.handle_line(&request);
        let reply = mop_json::from_str(&turn.frames[0]).unwrap();
        assert!(
            !reply["result"].is_null(),
            "resume on {shards} shards failed: {}",
            turn.frames[0]
        );
        let turn = resumed.handle_line("{\"id\":2,\"method\":\"fleet.step\"}");
        let reply = mop_json::from_str(&turn.frames[0]).unwrap();
        assert_eq!(
            reply["result"]["digest"].as_str().unwrap(),
            format!("{reference:016x}"),
            "resumed drain on {shards} shards"
        );
        assert_eq!(reply["result"]["pending"].as_u64(), Some(0));
    }
}

#[test]
fn server_profile_reports_resident_fleet_stats() {
    let mut server = Server::new(config(2));
    server.handle_line(
        "{\"id\":1,\"method\":\"scenario.inject\",\
         \"params\":{\"scenario\":\"rush-hour\",\"users\":40,\"seed\":7}}",
    );
    let turn = server.handle_line("{\"id\":2,\"method\":\"server.profile\"}");
    let reply = mop_json::from_str(&turn.frames[0]).unwrap();
    assert_eq!(reply["result"]["runs"].as_u64(), Some(0), "injecting runs nothing");
    assert_eq!(reply["result"]["threads_spawned"].as_u64(), Some(2));
    assert_eq!(reply["result"]["shards"].as_u64(), Some(2));

    server.handle_line("{\"id\":3,\"method\":\"fleet.step\",\"params\":{\"epochs\":3}}");
    server.handle_line("{\"id\":4,\"method\":\"fleet.step\"}");
    let turn = server.handle_line("{\"id\":5,\"method\":\"server.profile\"}");
    let reply = mop_json::from_str(&turn.frames[0]).unwrap();
    // Both steps had due flows, so both ran on the resident fleet: runs
    // advanced while the worker threads stayed the ones spawned at start.
    assert!(reply["result"]["runs"].as_u64().unwrap() >= 2);
    assert_eq!(reply["result"]["threads_spawned"].as_u64(), Some(2));
    assert_eq!(reply["result"]["profiling"].as_bool(), Some(mop_simnet::Profiler::enabled()));
    if !mop_simnet::Profiler::enabled() {
        // Default builds compile the timers to nothing: the tables must be
        // empty, not populated with zeros.
        assert!(reply["result"]["phases"].as_array().unwrap().is_empty());
        assert!(reply["result"]["counters"].as_array().unwrap().is_empty());
    }
}
