//! Transports: moving protocol lines between a [`Server`] and a peer.
//!
//! A transport is nothing but a line loop — read one line, hand it to
//! [`Server::handle_line`], write the resulting frames, flush, repeat
//! until the peer hangs up or a handled frame requests shutdown. Keeping
//! the loop generic over `BufRead`/`Write` means the stdio transport, the
//! Unix-socket transport and the in-memory conformance tests all exercise
//! the *same* code path; the conformance transcripts therefore certify
//! every transport at once.

use std::io::{self, BufRead, BufReader, Write};

use crate::server::Server;

/// Serves one session over a pair of byte streams. Returns when the
/// reader reaches end-of-file or a request triggered shutdown; the value
/// says whether the stop was a shutdown request (`true`) or a hang-up
/// (`false`).
pub fn serve<R: BufRead, W: Write>(
    server: &mut Server,
    reader: R,
    mut writer: W,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let turn = server.handle_line(&line);
        for frame in &turn.frames {
            writer.write_all(frame.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        // Flush per turn, not per frame: a subscriber sees its events and
        // the response as one burst, and the client can block on the
        // response line without deadlocking on buffered events.
        writer.flush()?;
        if turn.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves one session over this process's stdin/stdout (the `--stdio`
/// mode of `mop-serve`).
pub fn serve_stdio(server: &mut Server) -> io::Result<bool> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve(server, stdin.lock(), stdout.lock())
}

/// Serves sessions over a Unix domain socket, accepting connections one
/// at a time so the plane never sees interleaved sessions. The listener
/// keeps accepting until a session ends with `server.shutdown`.
#[cfg(unix)]
pub fn serve_unix(server: &mut Server, socket_path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a killed server would make bind fail.
    if socket_path.exists() {
        std::fs::remove_file(socket_path)?;
    }
    let listener = UnixListener::bind(socket_path)?;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = BufReader::new(stream.try_clone()?);
        if serve(server, reader, stream)? {
            break;
        }
    }
    std::fs::remove_file(socket_path).ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::PlaneConfig;

    #[test]
    fn the_line_loop_frames_responses_and_stops_on_shutdown() {
        let mut server = Server::new(PlaneConfig { shards: 1, ..PlaneConfig::default() });
        let input = "{\"id\":1,\"method\":\"server.info\"}\n\
                     {\"id\":2,\"method\":\"server.shutdown\"}\n\
                     {\"id\":3,\"method\":\"server.info\"}\n";
        let mut output = Vec::new();
        let stopped = serve(&mut server, input.as_bytes(), &mut output).unwrap();
        assert!(stopped, "shutdown stops the loop");
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "the frame after shutdown is never served");
        assert!(lines[0].starts_with("{\"id\":1"));
        assert!(lines[1].starts_with("{\"id\":2"));
    }

    #[test]
    fn a_hangup_without_shutdown_reports_false() {
        let mut server = Server::new(PlaneConfig { shards: 1, ..PlaneConfig::default() });
        let mut output = Vec::new();
        let stopped =
            serve(&mut server, "{\"id\":1,\"method\":\"server.info\"}\n".as_bytes(), &mut output)
                .unwrap();
        assert!(!stopped);
    }
}
