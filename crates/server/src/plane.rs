//! The control plane: a fleet engine driven incrementally through virtual
//! time, with scenarios injected and retired at runtime.
//!
//! # Why stepping preserves the batch digest
//!
//! The plane keeps a *cursor* in epoch units and, per
//! [`ControlPlane::step`], runs every not-yet-run flow scheduled before the
//! new cursor boundary (one run per scenario, each over its own network),
//! absorbing the merged result into one cumulative [`RunReport`]. Under
//! the flow-keyed discipline every flow's behaviour is a pure function of
//! `(seed, four-tuple)`, so the absorb of any partition of a flow schedule
//! — by time, by scenario, or both — equals the report of the
//! unpartitioned batch run. This is the same invariance behind
//! [`FleetCheckpoint`]; the plane merely applies it once per step instead
//! of once per restart. `tests/server_oracle.rs` pins the equivalence
//! against batch runs across shard counts and random interleavings.
//!
//! # The resident fleet
//!
//! Since PR 10 the plane holds one [`ResidentFleet`] for its whole life:
//! shard workers spawn when the plane is built and park on their job rings
//! between steps, and every per-scenario run goes through
//! [`ResidentFleet::run_next`], which resets the shard engines in place
//! instead of rebuilding them. Run results are bit-identical to fresh
//! [`FleetEngine`](mopeye_core::FleetEngine) construction (the workers share one protocol — see the
//! fleet module's `# Residency` docs); only the steady-state step cost
//! changes, from thread spawns + engine construction per scenario per step
//! to a few ring messages.
//!
//! Retiring a scenario drops only its not-yet-run flows: contributions
//! already absorbed stay in the cumulative report, exactly like a crowd
//! device that stops reporting.

use std::mem;

use mop_dataset::Scenario;
use mop_json::{json, Value};
use mop_measure::EpochSummary;
use mop_simnet::{SimDuration, SimNetworkBuilder};
use mop_tun::FlowSpec;
use mopeye_core::{
    epoch_boundary, run_report_from_json, run_report_to_json, CongestionAlgo, FleetCheckpoint,
    FleetConfig, ResidentFleet, RunReport,
};
#[cfg(test)]
use mopeye_core::FleetEngine;

/// Version tag of the server checkpoint document (which embeds a
/// [`FleetCheckpoint`] plus the plane's scenario table and cursor).
pub const SERVER_CHECKPOINT_VERSION: u64 = 1;

/// The run parameters a plane is built with. Every engine the plane spins
/// up uses these; a checkpoint can only be resumed on a plane with the
/// same seed, congestion algorithm and epoch geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneConfig {
    /// Shard count for every step's engine. The merged report is invariant
    /// to it, so a resumed plane may use a different value.
    pub shards: usize,
    /// Engine seed (flow-keyed streams derive from it).
    pub seed: u64,
    /// Congestion-control algorithm.
    pub congestion: CongestionAlgo,
    /// Epoch width of the windowed aggregates and of the step cursor.
    pub epoch_width: SimDuration,
    /// Live-epoch window length.
    pub epoch_window: usize,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        // A quarter-second epoch suits the burst scenarios (rush hour spans
        // ~2 virtual seconds → ~8 epochs), mirroring the report binary's
        // duration/8 rule for its default 2,000-user runs.
        Self {
            shards: 4,
            seed: 2017,
            congestion: CongestionAlgo::Reno,
            epoch_width: SimDuration::from_millis(250),
            epoch_window: 32,
        }
    }
}

/// One injected scenario: its generation parameters (enough to rebuild it
/// bit-identically after a resume) and its not-yet-run flows.
#[derive(Debug)]
struct ScenarioSlot {
    id: String,
    kind: String,
    users: usize,
    seed: u64,
    retired: bool,
    pending: Vec<FlowSpec>,
    injected_flows: usize,
}

impl ScenarioSlot {
    fn network(&self) -> SimNetworkBuilder {
        build_scenario(&self.kind, self.users, self.seed)
            .expect("slot kind was validated at inject")
            .network()
    }
}

/// The fleet configuration every run of a plane uses, resident or not.
fn fleet_config(config: &PlaneConfig) -> FleetConfig {
    let mut fleet = FleetConfig::new(config.shards)
        .with_seed(config.seed)
        .with_congestion(config.congestion)
        .with_epochs(config.epoch_width, config.epoch_window);
    // Lean mode: the cumulative report carries sketches, not samples.
    fleet.engine = fleet.engine.with_retain_samples(false);
    fleet
}

/// Builds the named scenario, or `None` for an unknown kind. The kinds
/// mirror the `report` binary's `--scenario` values (minus the diurnal
/// day, which has its own generator type).
fn build_scenario(kind: &str, users: usize, seed: u64) -> Option<Scenario> {
    match kind {
        "rush-hour" => Some(Scenario::rush_hour(users, seed)),
        "flash-crowd" => Some(Scenario::flash_crowd(users, seed)),
        "degraded-commute" => Some(Scenario::degraded_commute(users, seed)),
        _ => None,
    }
}

/// What one [`ControlPlane::step`] produced, for the response and for
/// stream subscribers.
#[derive(Debug)]
pub struct StepOutcome {
    /// The cursor after the step, in epochs.
    pub cursor_epoch: u64,
    /// Flows that ran in this step (across all scenarios).
    pub ran: usize,
    /// Flows still pending after the step.
    pub pending: usize,
    /// The cumulative fleet digest after absorbing the step.
    pub digest: u64,
    /// The step's merged report delta, in the checkpoint JSON encoding —
    /// folding these with [`RunReport::absorb`] reproduces the cumulative
    /// report (`Null` when the step ran no flows).
    pub delta: Value,
    /// Per-epoch summaries of the delta's live window, for `summary`
    /// subscribers (empty when the step ran no flows).
    pub epoch_summaries: Vec<EpochSummary>,
}

/// The long-lived control plane. See the [module docs](self).
#[derive(Debug)]
pub struct ControlPlane {
    config: PlaneConfig,
    cursor_epoch: u64,
    next_scenario: usize,
    scenarios: Vec<ScenarioSlot>,
    cumulative: RunReport,
    /// The long-lived worker fleet every step's runs go through; spawned
    /// once here and reset in place per run.
    resident: ResidentFleet,
}

impl ControlPlane {
    /// An idle plane at epoch zero with no scenarios. The resident shard
    /// workers spawn here and park until the first step.
    pub fn new(config: PlaneConfig) -> Self {
        Self {
            resident: ResidentFleet::new(fleet_config(&config)),
            config,
            cursor_epoch: 0,
            next_scenario: 1,
            scenarios: Vec::new(),
            cumulative: RunReport::empty(),
        }
    }

    /// The plane's run parameters.
    pub fn config(&self) -> &PlaneConfig {
        &self.config
    }

    /// The virtual-time cursor, in epochs.
    pub fn cursor_epoch(&self) -> u64 {
        self.cursor_epoch
    }

    /// Flows injected but not yet run, across all scenarios.
    pub fn pending_flows(&self) -> usize {
        self.scenarios.iter().map(|s| s.pending.len()).sum()
    }

    /// Scenarios injected and not retired.
    pub fn live_scenarios(&self) -> usize {
        self.scenarios.iter().filter(|s| !s.retired).count()
    }

    /// The cumulative fleet digest — bit-identical to the digest of the
    /// equivalent uninterrupted batch run once all pending flows have run.
    pub fn digest(&self) -> u64 {
        self.cumulative.fleet_digest()
    }

    /// The cumulative merged report.
    pub fn report(&self) -> &RunReport {
        &self.cumulative
    }

    /// Injects a scenario: generates its flow schedule and parks it
    /// pending. Flows scheduled before the current cursor are *not* lost —
    /// they run in the next step, and their samples fold into the correct
    /// epochs (or the window tail) because the windowed merge keys on
    /// sample timestamps. Returns `(scenario_id, flows_injected)`.
    pub fn inject(&mut self, kind: &str, users: usize, seed: u64) -> Result<(String, usize), String> {
        let Some(scenario) = build_scenario(kind, users, seed) else {
            return Err(format!(
                "unknown scenario kind {kind:?}; expected rush-hour, flash-crowd or \
                 degraded-commute"
            ));
        };
        let pending = scenario.generate();
        let id = format!("s{}", self.next_scenario);
        self.next_scenario += 1;
        let flows = pending.len();
        self.scenarios.push(ScenarioSlot {
            id: id.clone(),
            kind: kind.to_string(),
            users,
            seed,
            retired: false,
            pending,
            injected_flows: flows,
        });
        Ok((id, flows))
    }

    /// Retires a scenario: drops its not-yet-run flows and stops it from
    /// participating in future steps. Contributions already absorbed stay.
    /// Returns the number of flows dropped.
    pub fn retire(&mut self, id: &str) -> Result<usize, String> {
        let Some(slot) = self.scenarios.iter_mut().find(|s| s.id == id) else {
            return Err(format!("unknown scenario {id:?}"));
        };
        if slot.retired {
            return Err(format!("scenario {id:?} is already retired"));
        }
        slot.retired = true;
        Ok(mem::take(&mut slot.pending).len())
    }

    /// The lowest step count that would drain every pending flow.
    pub fn epochs_to_drain(&self) -> u64 {
        let width = self.config.epoch_width.as_nanos();
        let Some(max_at) = self
            .scenarios
            .iter()
            .flat_map(|s| s.pending.iter().map(|f| f.at.as_nanos()))
            .max()
        else {
            return 0;
        };
        let target = max_at / width.max(1) + 1;
        target.saturating_sub(self.cursor_epoch)
    }

    /// Advances the cursor by `epochs` and runs every pending flow
    /// scheduled before the new boundary, one fresh fleet per scenario,
    /// absorbing the merged results into the cumulative report.
    pub fn step(&mut self, epochs: u64) -> StepOutcome {
        self.cursor_epoch += epochs;
        let cut = epoch_boundary(self.config.epoch_width.as_nanos(), self.cursor_epoch);
        let mut delta = RunReport::empty();
        let mut ran = 0usize;
        for i in 0..self.scenarios.len() {
            let due: Vec<FlowSpec> = {
                let slot = &mut self.scenarios[i];
                let (due, keep) = mopeye_core::split_at(mem::take(&mut slot.pending), cut);
                slot.pending = keep;
                due
            };
            if due.is_empty() {
                continue;
            }
            ran += due.len();
            let network = self.scenarios[i].network();
            let mut report = self.resident.run_next(&network, due);
            delta.absorb(mem::replace(&mut report.merged, RunReport::empty()));
        }
        delta.canonicalise();
        let (delta_json, epoch_summaries) = if ran == 0 {
            (Value::Null, Vec::new())
        } else {
            let summaries =
                delta.windows.as_ref().map(|w| w.epoch_summaries()).unwrap_or_default();
            (run_report_to_json(&delta), summaries)
        };
        self.cumulative.absorb(delta);
        self.cumulative.canonicalise();
        StepOutcome {
            cursor_epoch: self.cursor_epoch,
            ran,
            pending: self.pending_flows(),
            digest: self.digest(),
            delta: delta_json,
            epoch_summaries,
        }
    }

    /// The resident fleet's lifetime statistics: `(runs, threads_spawned)`.
    /// `threads_spawned` equals the shard count forever — the whole point
    /// of residency — and `server.profile` surfaces both.
    pub fn resident_stats(&self) -> (u64, u64) {
        (self.resident.runs(), self.resident.threads_spawned())
    }

    /// The wall-clock profile accumulated by the resident fleet's runs so
    /// far (empty unless the workspace was built with the `profiling`
    /// feature). Lives in the cumulative report like the other merged
    /// statistics, but is excluded from digests and checkpoints.
    pub fn profile(&self) -> &mop_simnet::ProfileReport {
        &self.cumulative.profile
    }

    /// A fresh one-shot fleet with this plane's run parameters — the cold
    /// path the resident fleet replaces; kept for oracle comparisons.
    #[cfg(test)]
    fn build_fleet(&self, network: SimNetworkBuilder) -> FleetEngine {
        FleetEngine::new(fleet_config(&self.config), network)
    }

    /// Serialises the plane to its checkpoint document: a
    /// [`FleetCheckpoint`] (base = the cumulative report, pending = every
    /// not-yet-run flow, cut = the cursor boundary) plus the scenario
    /// table needed to rebuild the slots on resume.
    pub fn checkpoint(&self) -> Value {
        let pending: Vec<FlowSpec> =
            self.scenarios.iter().flat_map(|s| s.pending.iter().cloned()).collect();
        let base = run_report_from_json(&run_report_to_json(&self.cumulative))
            .expect("the report encoding round-trips");
        let fleet = FleetCheckpoint {
            seed: self.config.seed,
            shards_at_save: self.config.shards,
            congestion: self.config.congestion,
            epoch_width_ns: Some(self.config.epoch_width.as_nanos()),
            epoch_window: self.config.epoch_window,
            cut: epoch_boundary(self.config.epoch_width.as_nanos(), self.cursor_epoch),
            base,
            pending,
        };
        let scenarios: Vec<Value> = self
            .scenarios
            .iter()
            .map(|s| {
                json!({
                    "id": s.id.clone(),
                    "kind": s.kind.clone(),
                    "users": s.users as i64,
                    "seed": format!("{:016x}", s.seed),
                    "retired": s.retired,
                    "injected_flows": s.injected_flows as i64,
                    "pending": s.pending.len() as i64,
                })
            })
            .collect();
        json!({
            "format": "mop-server-checkpoint",
            "version": SERVER_CHECKPOINT_VERSION as i64,
            "cursor_epoch": self.cursor_epoch as i64,
            "next_scenario": self.next_scenario as i64,
            "scenarios": scenarios,
            "fleet": fleet.to_json(),
        })
    }

    /// Restores a plane from a checkpoint document. The receiving plane
    /// must be idle (no scenarios, cursor at zero) and configured with the
    /// saved seed, congestion algorithm and epoch geometry; shard count
    /// may differ freely. On success the plane continues bit-identically
    /// to the one that saved the document.
    pub fn resume(&mut self, doc: &Value) -> Result<(), String> {
        if self.cursor_epoch != 0 || !self.scenarios.is_empty() {
            return Err("resume requires an idle plane (no scenarios, cursor at 0)".into());
        }
        let Some(format) = doc["format"].as_str() else {
            return Err("server checkpoint has no \"format\" string field".into());
        };
        if format != "mop-server-checkpoint" {
            return Err(format!("not a server checkpoint: format tag {format:?}"));
        }
        let Some(version) = doc["version"].as_u64() else {
            return Err("server checkpoint has no \"version\" number field".into());
        };
        if version != SERVER_CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported server checkpoint version {version} \
                 (this build reads version {SERVER_CHECKPOINT_VERSION})"
            ));
        }
        // Route the embedded fleet document through the descriptive parser
        // so a malformed body is rejected with the same messages a direct
        // `FleetCheckpoint::parse` would produce.
        let fleet = FleetCheckpoint::parse(&mop_json::to_string(&doc["fleet"]))?;
        if fleet.seed != self.config.seed {
            return Err(format!(
                "checkpoint was saved under seed {:#018x}, plane runs {:#018x}",
                fleet.seed, self.config.seed
            ));
        }
        if fleet.congestion != self.config.congestion {
            return Err("checkpoint and plane disagree on the congestion algorithm".into());
        }
        if fleet.epoch_width_ns != Some(self.config.epoch_width.as_nanos())
            || fleet.epoch_window != self.config.epoch_window
        {
            return Err("checkpoint and plane disagree on the epoch geometry".into());
        }
        let Some(cursor_epoch) = doc["cursor_epoch"].as_u64() else {
            return Err("server checkpoint has no \"cursor_epoch\"".into());
        };
        let Some(next_scenario) = doc["next_scenario"].as_u64() else {
            return Err("server checkpoint has no \"next_scenario\"".into());
        };
        let Some(entries) = doc["scenarios"].as_array() else {
            return Err("server checkpoint has no \"scenarios\" array".into());
        };
        // Re-slice the flat pending vector back into per-scenario slots:
        // checkpoint() wrote it in slot order.
        let mut slots = Vec::with_capacity(entries.len());
        let mut remaining = fleet.pending;
        for entry in entries {
            let (Some(id), Some(kind), Some(users), Some(seed), Some(retired), Some(count)) = (
                entry["id"].as_str(),
                entry["kind"].as_str(),
                entry["users"].as_u64(),
                entry["seed"].as_str().and_then(|s| u64::from_str_radix(s, 16).ok()),
                entry["retired"].as_bool(),
                entry["pending"].as_u64(),
            ) else {
                return Err("server checkpoint scenario entry is malformed".into());
            };
            let injected = entry["injected_flows"].as_u64().unwrap_or(0) as usize;
            let users = users as usize;
            if build_scenario(kind, users, seed).is_none() {
                return Err(format!("server checkpoint names unknown scenario kind {kind:?}"));
            }
            let count = count as usize;
            if count > remaining.len() {
                return Err("server checkpoint pending counts exceed the pending set".into());
            }
            let rest = remaining.split_off(count);
            let pending = mem::replace(&mut remaining, rest);
            slots.push(ScenarioSlot {
                id: id.to_string(),
                kind: kind.to_string(),
                users,
                seed,
                retired,
                pending,
                injected_flows: injected,
            });
        }
        if !remaining.is_empty() {
            return Err("server checkpoint pending counts do not cover the pending set".into());
        }
        self.cursor_epoch = cursor_epoch;
        self.next_scenario = next_scenario as usize;
        self.scenarios = slots;
        self.cumulative = fleet.base;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plane(shards: usize) -> ControlPlane {
        ControlPlane::new(PlaneConfig { shards, ..PlaneConfig::default() })
    }

    /// The uninterrupted reference: each scenario run whole on one fleet,
    /// everything absorbed into one report.
    fn oracle_digest(shards: usize, scenarios: &[(&str, usize, u64)]) -> u64 {
        let plane = small_plane(shards);
        let mut merged = RunReport::empty();
        for (kind, users, seed) in scenarios {
            let scenario = build_scenario(kind, *users, *seed).unwrap();
            let fleet = plane.build_fleet(scenario.network());
            let mut report = fleet.run(scenario.generate());
            merged.absorb(mem::replace(&mut report.merged, RunReport::empty()));
        }
        merged.canonicalise();
        merged.fleet_digest()
    }

    #[test]
    fn stepped_run_matches_the_batch_oracle() {
        let mut plane = small_plane(2);
        plane.inject("rush-hour", 60, 5).unwrap();
        let reference = oracle_digest(2, &[("rush-hour", 60, 5)]);
        let mut steps = 0;
        while plane.pending_flows() > 0 {
            plane.step(1);
            steps += 1;
            assert!(steps < 1_000, "drain must terminate");
        }
        assert!(steps > 1, "the schedule should span multiple epochs");
        assert_eq!(plane.digest(), reference);
    }

    #[test]
    fn retire_drops_only_future_flows() {
        let mut plane = small_plane(2);
        let (id, flows) = plane.inject("rush-hour", 40, 5).unwrap();
        plane.step(4);
        let ran_before = flows - plane.pending_flows();
        assert!(ran_before > 0, "some flows ran before the retire");
        let dropped = plane.retire(&id).unwrap();
        assert_eq!(dropped + ran_before, flows);
        assert_eq!(plane.pending_flows(), 0);
        assert!(plane.retire(&id).is_err(), "double retire is rejected");
        assert!(plane.retire("s99").is_err(), "unknown id is rejected");
    }

    #[test]
    fn checkpoint_resume_round_trips_across_shard_counts() {
        let mut plane = small_plane(2);
        plane.inject("rush-hour", 60, 5).unwrap();
        plane.inject("flash-crowd", 30, 9).unwrap();
        plane.step(3);
        let doc = plane.checkpoint();
        plane.step(plane.epochs_to_drain());
        let reference = plane.digest();

        for shards in [1, 4] {
            let mut resumed = small_plane(shards);
            resumed.resume(&doc).unwrap();
            assert_eq!(resumed.cursor_epoch(), 3);
            resumed.step(resumed.epochs_to_drain());
            assert_eq!(resumed.digest(), reference, "resume on {shards} shards");
        }
    }

    #[test]
    fn resume_rejects_incompatible_documents() {
        let mut plane = small_plane(2);
        plane.inject("rush-hour", 20, 5).unwrap();
        let doc = plane.checkpoint();

        let mut busy = small_plane(2);
        busy.inject("rush-hour", 20, 5).unwrap();
        assert!(busy.resume(&doc).unwrap_err().contains("idle plane"));

        let mut other_seed = ControlPlane::new(PlaneConfig {
            seed: 99,
            ..PlaneConfig::default()
        });
        assert!(other_seed.resume(&doc).unwrap_err().contains("seed"));

        let mut other_geometry = ControlPlane::new(PlaneConfig {
            epoch_window: 8,
            ..PlaneConfig::default()
        });
        assert!(other_geometry.resume(&doc).unwrap_err().contains("epoch geometry"));

        let mut fresh = small_plane(2);
        assert!(fresh.resume(&json!({"format": "other"})).unwrap_err().contains("format tag"));
        assert!(fresh
            .resume(&json!({"format": "mop-server-checkpoint", "version": 9}))
            .unwrap_err()
            .contains("version 9"));
    }
}
