//! A minimal client harness: sends requests, collects stream events,
//! returns the response. Used by the conformance tests, the
//! `mop-serve --connect` mode and the CI integration script.

use std::io::{self, BufRead, Write};

use mop_json::Value;

/// What one request produced: the events that preceded the response (in
/// arrival order) and the response frame itself.
#[derive(Debug)]
pub struct Reply {
    /// `{"stream": ..., "event": ...}` frames, parsed.
    pub events: Vec<Value>,
    /// The `{"id": ..., "result"|"error": ...}` frame, parsed.
    pub response: Value,
}

impl Reply {
    /// The `result` object; `None` if the response was an error.
    pub fn result(&self) -> Option<&Value> {
        match &self.response["result"] {
            Value::Null => None,
            result => Some(result),
        }
    }

    /// The error code string; `None` if the response was a success.
    pub fn error_code(&self) -> Option<&str> {
        self.response["error"]["code"].as_str()
    }
}

/// A client over any pair of byte streams (Unix socket, child-process
/// pipes, in-memory buffers).
#[derive(Debug)]
pub struct Client<R, W> {
    reader: R,
    writer: W,
    next_id: u64,
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// A client with its request-id counter at 1.
    pub fn new(reader: R, writer: W) -> Self {
        Self { reader, writer, next_id: 1 }
    }

    /// Sends one request and reads frames until the response arrives.
    /// Events received before the response are collected into the reply.
    pub fn call(&mut self, method: &str, params: Value) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let request = if params.is_null() {
            format!("{{\"id\":{id},\"method\":\"{method}\"}}")
        } else {
            format!("{{\"id\":{id},\"method\":\"{method}\",\"params\":{}}}", mop_json::to_string(&params))
        };
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut events = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server hung up before responding",
                ));
            }
            let frame = mop_json::from_str(line.trim_end()).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))
            })?;
            if frame["id"].is_null() {
                events.push(frame);
            } else {
                return Ok(Reply { events, response: frame });
            }
        }
    }
}

/// Connects to a `mop-serve` Unix socket, retrying briefly so a client
/// started alongside the server does not race its bind.
#[cfg(unix)]
pub fn connect_unix(
    socket_path: &std::path::Path,
) -> io::Result<Client<io::BufReader<std::os::unix::net::UnixStream>, std::os::unix::net::UnixStream>> {
    use std::os::unix::net::UnixStream;

    let mut last_err = None;
    for _ in 0..50 {
        match UnixStream::connect(socket_path) {
            Ok(stream) => {
                let reader = io::BufReader::new(stream.try_clone()?);
                return Ok(Client::new(reader, stream));
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no socket")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_json::json;

    #[test]
    fn call_collects_events_then_the_response() {
        // A canned server transcript: two events, then the response.
        let canned = "{\"stream\":\"epochs\",\"event\":{\"epoch\":0}}\n\
                      {\"stream\":\"epochs\",\"event\":{\"epoch\":1}}\n\
                      {\"id\":1,\"result\":{\"ok\":true}}\n";
        let mut sent = Vec::new();
        let mut client = Client::new(canned.as_bytes(), &mut sent);
        let reply = client.call("fleet.step", json!({ "epochs": 2 })).unwrap();
        assert_eq!(reply.events.len(), 2);
        assert_eq!(reply.response["result"]["ok"], Value::Bool(true));
        assert!(reply.error_code().is_none());
        assert_eq!(
            std::str::from_utf8(&sent).unwrap(),
            "{\"id\":1,\"method\":\"fleet.step\",\"params\":{\"epochs\":2}}\n"
        );
    }

    #[test]
    fn error_replies_expose_their_code() {
        let canned = "{\"id\":1,\"error\":{\"code\":\"bad-params\",\"message\":\"x\"}}\n";
        let mut client = Client::new(canned.as_bytes(), Vec::new());
        let reply = client.call("scenario.inject", Value::Null).unwrap();
        assert!(reply.result().is_none());
        assert_eq!(reply.error_code(), Some("bad-params"));
    }
}
