//! The wire protocol: line-delimited JSON frames.
//!
//! Every frame is one compact JSON document followed by `\n` — no document
//! ever contains a raw newline, because [`mop_json::to_string`] escapes
//! control characters into `\uXXXX`. Three frame shapes exist:
//!
//! * **request** (client → server): `{"id": n, "method": "...", "params": {...}}`
//!   — `id` is a client-chosen non-negative integer echoed back verbatim;
//!   `params` may be omitted (treated as `{}`),
//! * **response** (server → client): `{"id": n, "result": {...}}` on
//!   success, `{"id": n, "error": {"code": "...", "message": "..."}}` on
//!   failure — exactly one per request, always the *last* frame the request
//!   produces,
//! * **event** (server → client): `{"stream": "...", "event": {...}}` —
//!   zero or more emitted *before* a response while a subscription is
//!   active; a client reads frames until it sees one carrying `id`.
//!
//! [`mop_json`] keeps object keys in insertion order and prints floats
//! deterministically, so a session transcript is byte-stable — which is
//! what lets `tests/server_protocol.rs` pin recorded sessions verbatim.

use mop_json::{json, Value};

/// Protocol version reported by `server.info`.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Method name, e.g. `scenario.inject`.
    pub method: String,
    /// Method parameters (`Null` when the frame omitted them).
    pub params: Value,
}

/// Error codes a response can carry. Stable strings: clients match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a well-formed request.
    ParseError,
    /// The method name is not part of this protocol version.
    UnknownMethod,
    /// The params were missing a field or carried a wrong type/value.
    BadParams,
    /// The named scenario does not exist (or was already retired).
    UnknownScenario,
    /// A checkpoint document was rejected; the message says why.
    BadCheckpoint,
    /// `fleet.resume` on a plane that is not idle.
    ResumeConflict,
    /// The server could not read or write a file the request named.
    Io,
}

impl ErrorCode {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse-error",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::BadParams => "bad-params",
            ErrorCode::UnknownScenario => "unknown-scenario",
            ErrorCode::BadCheckpoint => "bad-checkpoint",
            ErrorCode::ResumeConflict => "resume-conflict",
            ErrorCode::Io => "io",
        }
    }
}

/// Parses one request frame. The error string becomes the `parse-error`
/// response message.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value =
        mop_json::from_str(line).map_err(|e| format!("frame is not valid JSON: {e}"))?;
    let Some(id) = value["id"].as_u64() else {
        return Err("frame has no non-negative integer \"id\"".into());
    };
    let Some(method) = value["method"].as_str() else {
        return Err("frame has no \"method\" string".into());
    };
    Ok(Request { id, method: method.to_string(), params: value["params"].clone() })
}

/// A success response frame (without the trailing newline).
pub fn result_frame(id: u64, result: Value) -> String {
    mop_json::to_string(&json!({ "id": id as i64, "result": result }))
}

/// An error response frame. `id` is zero when the request id could not be
/// parsed at all.
pub fn error_frame(id: u64, code: ErrorCode, message: &str) -> String {
    mop_json::to_string(&json!({
        "id": id as i64,
        "error": json!({ "code": code.as_str(), "message": message }),
    }))
}

/// A stream event frame.
pub fn event_frame(stream: &str, event: Value) -> String {
    mop_json::to_string(&json!({ "stream": stream, "event": event }))
}

/// Formats a fleet digest the way every digest-bearing frame carries it:
/// sixteen lower-case hex digits, matching the `report` binary's output.
pub fn digest_str(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject_malformed_frames() {
        let req = parse_request(
            "{\"id\": 3, \"method\": \"scenario.inject\", \"params\": {\"users\": 40}}",
        )
        .unwrap();
        assert_eq!(req.id, 3);
        assert_eq!(req.method, "scenario.inject");
        assert_eq!(req.params["users"].as_u64(), Some(40));

        let no_params = parse_request("{\"id\": 0, \"method\": \"server.info\"}").unwrap();
        assert!(no_params.params.is_null());

        assert!(parse_request("{\"id\": 3").unwrap_err().contains("not valid JSON"));
        assert!(parse_request("{\"method\": \"x\"}").unwrap_err().contains("\"id\""));
        assert!(parse_request("{\"id\": -1, \"method\": \"x\"}").unwrap_err().contains("\"id\""));
        assert!(parse_request("{\"id\": 1}").unwrap_err().contains("\"method\""));
    }

    #[test]
    fn frames_are_single_line_and_stable() {
        let ok = result_frame(7, json!({ "digest": digest_str(0xabc) }));
        assert_eq!(ok, "{\"id\":7,\"result\":{\"digest\":\"0000000000000abc\"}}");
        assert!(!ok.contains('\n'));
        let err = error_frame(0, ErrorCode::UnknownMethod, "no such method \"x\"");
        assert_eq!(
            err,
            "{\"id\":0,\"error\":{\"code\":\"unknown-method\",\
             \"message\":\"no such method \\\"x\\\"\"}}"
        );
        let event = event_frame("epochs", json!({ "epoch": 4 }));
        assert_eq!(event, "{\"stream\":\"epochs\",\"event\":{\"epoch\":4}}");
    }
}
