//! `mop_server` — the long-lived crowd control plane.
//!
//! The batch layers of this workspace answer "run this scenario, print the
//! report". The paper's deployment, though, is a *service*: a fleet of
//! crowd devices measuring continuously while operators inject load, watch
//! per-epoch deltas, query diagnoses and snapshot state — without ever
//! stopping the world. This crate is that service, built from the same
//! deterministic engine:
//!
//! * [`plane::ControlPlane`] steps a [`mopeye_core::FleetEngine`] through
//!   virtual time, one fresh fleet per scenario per step, exploiting the
//!   flow-keyed partition invariance so the cumulative digest stays
//!   bit-identical to an uninterrupted batch run,
//! * [`proto`] defines the line-delimited JSON frames (requests,
//!   responses, stream events) on first-party [`mop_json`],
//! * [`server::Server`] dispatches frames to the plane,
//! * [`transport`] runs the line loop over stdio or a Unix socket,
//! * [`client::Client`] is the matching harness for tests and the
//!   `mop-serve --connect` mode.
//!
//! The protocol reference with an annotated transcript lives in
//! `docs/SERVER.md`; `tests/server_protocol.rs` pins recorded sessions
//! byte for byte and `tests/server_oracle.rs` checks random
//! inject/retire/step/checkpoint interleavings against batch oracles.

pub mod client;
pub mod plane;
pub mod proto;
pub mod server;
pub mod transport;

pub use client::{Client, Reply};
pub use plane::{ControlPlane, PlaneConfig, StepOutcome, SERVER_CHECKPOINT_VERSION};
pub use proto::{
    digest_str, error_frame, event_frame, parse_request, result_frame, ErrorCode, Request,
    PROTOCOL_VERSION,
};
pub use server::{Detail, Server, Turn};
pub use transport::{serve, serve_stdio};

#[cfg(unix)]
pub use client::connect_unix;
#[cfg(unix)]
pub use transport::serve_unix;
