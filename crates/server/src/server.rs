//! Request dispatch: one [`Server`] owns a [`ControlPlane`] and turns
//! request frames into response (and event) frames.
//!
//! The dispatcher is transport-agnostic and purely functional over frames:
//! [`Server::handle_line`] maps one input line to the ordered list of
//! output frames it produces. Transports (stdio, Unix socket — see
//! [`crate::transport`]) only move lines; conformance tests drive
//! `handle_line` directly with in-memory sessions and compare bytes.

use std::fs;

use mop_analytics::{diagnose_apps, diagnose_live, DiagnosisConfig, TrendConfig};
use mop_json::{json, Value};

use crate::plane::{ControlPlane, PlaneConfig, StepOutcome};
use crate::proto::{
    self, digest_str, error_frame, event_frame, result_frame, ErrorCode, Request,
};

/// What a subscriber receives per step. See `report.subscribe`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detail {
    /// No stream events.
    Off,
    /// One `epochs` event per live epoch of the step delta: index, sample
    /// and cell counts, store digest. Compact — golden-transcript friendly.
    Summary,
    /// One `delta` event per step carrying the full merged report delta in
    /// the checkpoint encoding; folding deltas reproduces the fleet digest.
    Full,
}

/// What one handled frame produced.
#[derive(Debug)]
pub struct Turn {
    /// Output frames in emit order (events first, the response last).
    pub frames: Vec<String>,
    /// True after `server.shutdown`: the transport should stop serving.
    pub shutdown: bool,
}

/// The protocol server. See the [module docs](self).
#[derive(Debug)]
pub struct Server {
    plane: ControlPlane,
    detail: Detail,
    steps: u64,
}

impl Server {
    /// A server over an idle plane.
    pub fn new(config: PlaneConfig) -> Self {
        Self { plane: ControlPlane::new(config), detail: Detail::Off, steps: 0 }
    }

    /// The plane, for tests and embedding.
    pub fn plane(&self) -> &ControlPlane {
        &self.plane
    }

    /// Handles one request line, producing its output frames.
    pub fn handle_line(&mut self, line: &str) -> Turn {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Turn { frames: Vec::new(), shutdown: false };
        }
        let request = match proto::parse_request(line) {
            Ok(request) => request,
            Err(message) => {
                return Turn {
                    frames: vec![error_frame(0, ErrorCode::ParseError, &message)],
                    shutdown: false,
                }
            }
        };
        self.dispatch(request)
    }

    fn dispatch(&mut self, request: Request) -> Turn {
        let id = request.id;
        let params = &request.params;
        let mut shutdown = false;
        let outcome: Result<(Vec<String>, Value), (ErrorCode, String)> =
            match request.method.as_str() {
                "server.info" => self.info().map(|r| (Vec::new(), r)),
                "server.profile" => self.profile().map(|r| (Vec::new(), r)),
                "scenario.inject" => self.inject(params).map(|r| (Vec::new(), r)),
                "scenario.retire" => self.retire(params).map(|r| (Vec::new(), r)),
                "report.subscribe" => self.subscribe(params).map(|r| (Vec::new(), r)),
                "fleet.step" => self.step(params),
                "diagnose.query" => self.diagnose().map(|r| (Vec::new(), r)),
                "fleet.checkpoint" => self.checkpoint(params).map(|r| (Vec::new(), r)),
                "fleet.resume" => self.resume(params).map(|r| (Vec::new(), r)),
                "server.shutdown" => {
                    shutdown = true;
                    self.shutdown(params).map(|r| (Vec::new(), r))
                }
                other => Err((ErrorCode::UnknownMethod, format!("no such method {other:?}"))),
            };
        let mut frames;
        match outcome {
            Ok((events, result)) => {
                frames = events;
                frames.push(result_frame(id, result));
            }
            Err((code, message)) => {
                frames = vec![error_frame(id, code, &message)];
                shutdown = false;
            }
        }
        Turn { frames, shutdown }
    }

    fn info(&self) -> Result<Value, (ErrorCode, String)> {
        let config = self.plane.config();
        Ok(json!({
            "server": "mop-serve",
            "protocol": proto::PROTOCOL_VERSION as i64,
            "seed": format!("{:016x}", config.seed),
            "shards": config.shards as i64,
            "congestion": config.congestion.label(),
            "epoch_width_ns": config.epoch_width.as_nanos() as i64,
            "epoch_window": config.epoch_window as i64,
            "cursor_epoch": self.plane.cursor_epoch() as i64,
            "scenarios": self.plane.live_scenarios() as i64,
            "pending": self.plane.pending_flows() as i64,
            "digest": digest_str(self.plane.digest()),
        }))
    }

    /// `server.profile`: the resident fleet's lifetime statistics and the
    /// accumulated wall-clock profile. Everything here is host timing —
    /// never part of digests, transcripts or checkpoints — so the values
    /// (beyond `runs`/`threads_spawned`/`shards`) are only non-empty when
    /// the workspace was built with the `profiling` feature.
    fn profile(&self) -> Result<Value, (ErrorCode, String)> {
        let (runs, threads_spawned) = self.plane.resident_stats();
        let profile = self.plane.profile();
        let phases: Vec<Value> = profile
            .phases
            .iter()
            .map(|(name, stats)| {
                json!({
                    "phase": *name,
                    "calls": stats.calls as i64,
                    "total_ns": stats.total_ns as i64,
                    "max_ns": stats.max_ns as i64,
                })
            })
            .collect();
        let counters: Vec<Value> = profile
            .counters
            .iter()
            .map(|(name, value)| json!({ "counter": *name, "value": *value as i64 }))
            .collect();
        Ok(json!({
            "runs": runs as i64,
            "threads_spawned": threads_spawned as i64,
            "shards": self.plane.config().shards as i64,
            "profiling": mop_simnet::Profiler::enabled(),
            "phases": phases,
            "counters": counters,
        }))
    }

    fn inject(&mut self, params: &Value) -> Result<Value, (ErrorCode, String)> {
        let Some(kind) = params["scenario"].as_str() else {
            return Err((ErrorCode::BadParams, "inject needs a \"scenario\" kind".into()));
        };
        let Some(users) = params["users"].as_u64() else {
            return Err((ErrorCode::BadParams, "inject needs a \"users\" count".into()));
        };
        let seed = match &params["seed"] {
            Value::Null => self.plane.config().seed,
            v => v
                .as_u64()
                .ok_or((ErrorCode::BadParams, "\"seed\" must be a non-negative integer".into()))?,
        };
        let (id, flows) = self
            .plane
            .inject(kind, users as usize, seed)
            .map_err(|m| (ErrorCode::BadParams, m))?;
        Ok(json!({ "scenario": id, "flows": flows as i64 }))
    }

    fn retire(&mut self, params: &Value) -> Result<Value, (ErrorCode, String)> {
        let Some(id) = params["scenario"].as_str() else {
            return Err((ErrorCode::BadParams, "retire needs a \"scenario\" id".into()));
        };
        let dropped = self.plane.retire(id).map_err(|m| (ErrorCode::UnknownScenario, m))?;
        Ok(json!({ "scenario": id, "dropped": dropped as i64 }))
    }

    fn subscribe(&mut self, params: &Value) -> Result<Value, (ErrorCode, String)> {
        let detail = match params["detail"].as_str() {
            Some("off") => Detail::Off,
            Some("summary") => Detail::Summary,
            Some("full") => Detail::Full,
            _ => {
                return Err((
                    ErrorCode::BadParams,
                    "subscribe needs \"detail\": \"off\", \"summary\" or \"full\"".into(),
                ))
            }
        };
        self.detail = detail;
        Ok(json!({ "detail": params["detail"].as_str().unwrap_or("off") }))
    }

    fn step(&mut self, params: &Value) -> Result<(Vec<String>, Value), (ErrorCode, String)> {
        let epochs = match &params["epochs"] {
            // No count: drain everything currently pending.
            Value::Null => self.plane.epochs_to_drain(),
            v => v
                .as_u64()
                .ok_or((ErrorCode::BadParams, "\"epochs\" must be a non-negative integer".into()))?,
        };
        let outcome = self.plane.step(epochs);
        self.steps += 1;
        let events = self.stream_events(&outcome);
        let result = json!({
            "cursor_epoch": outcome.cursor_epoch as i64,
            "ran": outcome.ran as i64,
            "pending": outcome.pending as i64,
            "digest": digest_str(outcome.digest),
        });
        Ok((events, result))
    }

    fn stream_events(&self, outcome: &StepOutcome) -> Vec<String> {
        match self.detail {
            Detail::Off => Vec::new(),
            Detail::Summary => outcome
                .epoch_summaries
                .iter()
                .map(|s| {
                    event_frame(
                        "epochs",
                        json!({
                            "epoch": s.epoch as i64,
                            "samples": s.samples as i64,
                            "cells": s.cells as i64,
                            "digest": digest_str(s.digest),
                        }),
                    )
                })
                .collect(),
            Detail::Full => {
                if outcome.delta.is_null() {
                    Vec::new()
                } else {
                    vec![event_frame(
                        "delta",
                        json!({ "step": self.steps as i64, "report": outcome.delta.clone() }),
                    )]
                }
            }
        }
    }

    fn diagnose(&self) -> Result<Value, (ErrorCode, String)> {
        let report = self.plane.report();
        let (apps, trends) = match &report.windows {
            Some(windows) => {
                let live =
                    diagnose_live(windows, DiagnosisConfig::default(), TrendConfig::default());
                (live.apps, live.trends)
            }
            None => (diagnose_apps(&report.aggregates, DiagnosisConfig::default()), Vec::new()),
        };
        let apps: Vec<Value> = apps
            .iter()
            .map(|d| {
                json!({
                    "app": d.app.clone(),
                    "verdict": d.verdict.label(),
                    "samples": d.samples as i64,
                    "app_median_ms": d.app_median_ms,
                    "baseline_median_ms": d.baseline_median_ms,
                })
            })
            .collect();
        let trends: Vec<Value> = trends
            .iter()
            .map(|t| {
                json!({
                    "subject": t.subject.clone(),
                    "verdict": t.verdict.label(),
                    "samples": t.samples as i64,
                    "early_median_ms": t.early_median_ms,
                    "late_median_ms": t.late_median_ms,
                })
            })
            .collect();
        Ok(json!({ "apps": apps, "trends": trends }))
    }

    fn checkpoint(&self, params: &Value) -> Result<Value, (ErrorCode, String)> {
        let doc = self.plane.checkpoint();
        let mut result = vec![
            ("cursor_epoch".to_string(), Value::from(self.plane.cursor_epoch() as i64)),
            ("pending".to_string(), Value::from(self.plane.pending_flows() as i64)),
            ("digest".to_string(), Value::from(digest_str(self.plane.digest()))),
        ];
        if let Some(path) = params["path"].as_str() {
            fs::write(path, mop_json::to_string_pretty(&doc))
                .map_err(|e| (ErrorCode::Io, format!("cannot write {path:?}: {e}")))?;
            result.push(("path".to_string(), Value::from(path)));
        } else {
            result.push(("checkpoint".to_string(), doc));
        }
        Ok(Value::Object(result))
    }

    fn resume(&mut self, params: &Value) -> Result<Value, (ErrorCode, String)> {
        let doc = if let Some(path) = params["path"].as_str() {
            let text = fs::read_to_string(path)
                .map_err(|e| (ErrorCode::Io, format!("cannot read {path:?}: {e}")))?;
            mop_json::from_str(&text).map_err(|e| {
                (ErrorCode::BadCheckpoint, format!("checkpoint is not valid JSON: {e}"))
            })?
        } else if !params["checkpoint"].is_null() {
            params["checkpoint"].clone()
        } else {
            return Err((
                ErrorCode::BadParams,
                "resume needs a \"checkpoint\" document or a \"path\"".into(),
            ));
        };
        self.plane.resume(&doc).map_err(|m| {
            if m.contains("idle plane") {
                (ErrorCode::ResumeConflict, m)
            } else {
                (ErrorCode::BadCheckpoint, m)
            }
        })?;
        Ok(json!({
            "cursor_epoch": self.plane.cursor_epoch() as i64,
            "pending": self.plane.pending_flows() as i64,
            "digest": digest_str(self.plane.digest()),
        }))
    }

    fn shutdown(&mut self, params: &Value) -> Result<Value, (ErrorCode, String)> {
        // Graceful: drain every pending flow so nothing in-flight is lost,
        // then (optionally) flush a final checkpoint of the drained state.
        let outcome = self.plane.step(self.plane.epochs_to_drain());
        let mut result = vec![
            ("stopped".to_string(), Value::Bool(true)),
            ("ran".to_string(), Value::from(outcome.ran as i64)),
            ("digest".to_string(), Value::from(digest_str(outcome.digest))),
        ];
        if let Some(path) = params["checkpoint_path"].as_str() {
            let doc = self.plane.checkpoint();
            fs::write(path, mop_json::to_string_pretty(&doc))
                .map_err(|e| (ErrorCode::Io, format!("cannot write {path:?}: {e}")))?;
            result.push(("checkpoint_path".to_string(), Value::from(path)));
        }
        Ok(Value::Object(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(PlaneConfig { shards: 2, ..PlaneConfig::default() })
    }

    fn call(server: &mut Server, line: &str) -> Turn {
        server.handle_line(line)
    }

    #[test]
    fn a_session_flows_through_inject_step_and_shutdown() {
        let mut server = server();
        let turn = call(&mut server, "{\"id\":1,\"method\":\"server.info\"}");
        assert_eq!(turn.frames.len(), 1);
        assert!(turn.frames[0].contains("\"protocol\":1"));
        assert!(!turn.shutdown);

        let turn = call(
            &mut server,
            "{\"id\":2,\"method\":\"scenario.inject\",\
             \"params\":{\"scenario\":\"rush-hour\",\"users\":40,\"seed\":5}}",
        );
        assert!(turn.frames[0].contains("\"scenario\":\"s1\""), "{}", turn.frames[0]);

        let turn = call(&mut server, "{\"id\":3,\"method\":\"fleet.step\",\"params\":{}}");
        assert!(turn.frames[0].contains("\"pending\":0"), "{}", turn.frames[0]);
        assert!(turn.frames[0].contains("\"digest\":\""));

        let turn = call(&mut server, "{\"id\":4,\"method\":\"server.shutdown\"}");
        assert!(turn.shutdown);
        assert!(turn.frames[0].contains("\"stopped\":true"));
    }

    #[test]
    fn errors_carry_stable_codes() {
        let mut server = server();
        let turn = call(&mut server, "not json");
        assert!(turn.frames[0].contains("\"code\":\"parse-error\""));
        let turn = call(&mut server, "{\"id\":1,\"method\":\"no.such\"}");
        assert!(turn.frames[0].contains("\"code\":\"unknown-method\""));
        let turn = call(&mut server, "{\"id\":2,\"method\":\"scenario.inject\",\"params\":{}}");
        assert!(turn.frames[0].contains("\"code\":\"bad-params\""));
        let turn = call(
            &mut server,
            "{\"id\":3,\"method\":\"scenario.retire\",\"params\":{\"scenario\":\"s9\"}}",
        );
        assert!(turn.frames[0].contains("\"code\":\"unknown-scenario\""));
        let turn = call(&mut server, "{\"id\":4,\"method\":\"fleet.resume\",\"params\":{}}");
        assert!(turn.frames[0].contains("\"code\":\"bad-params\""));
        // A failed shutdown does not stop the server.
        let turn = call(
            &mut server,
            "{\"id\":5,\"method\":\"server.shutdown\",\
             \"params\":{\"checkpoint_path\":\"/nonexistent-dir/x.ckpt\"}}",
        );
        assert!(turn.frames[0].contains("\"code\":\"io\""));
        assert!(!turn.shutdown);
    }

    #[test]
    fn subscriptions_emit_events_before_the_step_response() {
        let mut server = server();
        call(
            &mut server,
            "{\"id\":1,\"method\":\"scenario.inject\",\
             \"params\":{\"scenario\":\"rush-hour\",\"users\":40,\"seed\":5}}",
        );
        call(
            &mut server,
            "{\"id\":2,\"method\":\"report.subscribe\",\"params\":{\"detail\":\"summary\"}}",
        );
        let turn = call(&mut server, "{\"id\":3,\"method\":\"fleet.step\",\"params\":{}}");
        assert!(turn.frames.len() > 1, "events precede the response");
        for event in &turn.frames[..turn.frames.len() - 1] {
            assert!(event.starts_with("{\"stream\":\"epochs\""), "{event}");
        }
        assert!(turn.frames.last().unwrap().starts_with("{\"id\":3"));
    }
}
