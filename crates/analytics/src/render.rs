//! Plain-text rendering of tables and CDF series for `EXPERIMENTS.md` and the
//! `repro` binary.

use mop_measure::{Cdf, RttSketch};

/// Renders a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a CDF as `x<TAB>F(x)` rows, one series per call.
pub fn render_cdf_series(label: &str, cdf: &Cdf, x_max: f64, points: usize) -> String {
    let mut out = format!("# CDF: {label} ({} samples)\n", cdf.len());
    for (x, f) in cdf.series(x_max, points) {
        out.push_str(&format!("{x:.1}\t{f:.4}\n"));
    }
    out
}

/// Renders a sketch's CDF as `x<TAB>F(x)` rows — the same format as
/// [`render_cdf_series`], read from the constant-memory aggregate instead of
/// a sample vector.
pub fn render_sketch_series(label: &str, sketch: &RttSketch, x_max: f64, points: usize) -> String {
    let mut out = format!("# CDF: {label} ({} samples)\n", sketch.count());
    for (x, f) in sketch.series(x_max, points) {
        out.push_str(&format!("{x:.1}\t{f:.4}\n"));
    }
    out
}

/// Formats a float with one decimal, using "n/a" for non-finite values.
pub fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "n/a".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let text = render_table(
            "Table X: demo",
            &["name", "value"],
            &[
                vec!["Google".into(), "4.3".into()],
                vec!["Dropbox".into(), "284.5".into()],
            ],
        );
        assert!(text.starts_with("Table X: demo\n"));
        assert!(text.contains("name"));
        assert!(text.contains("Dropbox  284.5"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn cdf_series_renders_requested_points() {
        let cdf = Cdf::from_values(&[10.0, 20.0, 30.0, 40.0]);
        let text = render_cdf_series("demo", &cdf, 40.0, 5);
        assert!(text.starts_with("# CDF: demo (4 samples)"));
        assert_eq!(text.lines().count(), 6);
        assert!(text.trim_end().ends_with("1.0000"));
    }

    #[test]
    fn sketch_series_matches_the_cdf_format() {
        let sketch: RttSketch = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        let text = render_sketch_series("demo", &sketch, 40.0, 5);
        assert!(text.starts_with("# CDF: demo (4 samples)"));
        assert_eq!(text.lines().count(), 6);
        assert!(text.trim_end().ends_with("1.0000"));
    }

    #[test]
    fn fmt_ms_handles_nan() {
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
    }
}
