//! Plain-text rendering of tables and CDF series for `EXPERIMENTS.md` and the
//! `repro` binary.

use mop_measure::{Cdf, RttSketch, WindowedAggregateStore};

use crate::diagnose::epoch_series;

/// Renders a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a run's live epochs as an aligned table — one row per epoch,
/// with the epoch's start time in virtual seconds, its sample count and its
/// TCP median/p95. The longitudinal view behind the `report` binary's
/// `--epochs` flag.
pub fn render_epoch_table(title: &str, windows: &WindowedAggregateStore) -> String {
    let width_ns = windows.width_ns();
    let rows: Vec<Vec<String>> = epoch_series(windows)
        .into_iter()
        .map(|point| {
            let start_s = (point.epoch * width_ns) as f64 / 1e9;
            let fmt = |value: Option<f64>| {
                value.map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}"))
            };
            vec![
                point.epoch.to_string(),
                format!("{start_s:.1}"),
                point.samples.to_string(),
                fmt(point.median_ms),
                fmt(point.p95_ms),
            ]
        })
        .collect();
    render_table(title, &["epoch", "start (s)", "samples", "tcp p50 (ms)", "tcp p95 (ms)"], &rows)
}

/// Renders a CDF as `x<TAB>F(x)` rows, one series per call.
pub fn render_cdf_series(label: &str, cdf: &Cdf, x_max: f64, points: usize) -> String {
    let mut out = format!("# CDF: {label} ({} samples)\n", cdf.len());
    for (x, f) in cdf.series(x_max, points) {
        out.push_str(&format!("{x:.1}\t{f:.4}\n"));
    }
    out
}

/// Renders a sketch's CDF as `x<TAB>F(x)` rows — the same format as
/// [`render_cdf_series`], read from the constant-memory aggregate instead of
/// a sample vector.
pub fn render_sketch_series(label: &str, sketch: &RttSketch, x_max: f64, points: usize) -> String {
    let mut out = format!("# CDF: {label} ({} samples)\n", sketch.count());
    for (x, f) in sketch.series(x_max, points) {
        out.push_str(&format!("{x:.1}\t{f:.4}\n"));
    }
    out
}

/// The relay's loss-recovery tallies for one run, ready to render. All
/// counters are zero on clean networks (no recovery state is ever created),
/// so reports usually show this section only when something actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossRecoverySummary {
    /// The congestion-control algorithm label ("reno", "cubic").
    pub congestion: &'static str,
    /// Data segments retransmitted towards apps (fast + RTO paths).
    pub retransmits: u64,
    /// Fast-retransmit events (third duplicate ACK).
    pub fast_retransmits: u64,
    /// Retransmission-timer fires that resent a segment.
    pub rto_fires: u64,
    /// In-flight segments covered by SACK blocks from apps.
    pub sacked_segments: u64,
}

impl LossRecoverySummary {
    /// True if any recovery machinery fired during the run.
    pub fn any_fired(&self) -> bool {
        self.retransmits + self.fast_retransmits + self.rto_fires + self.sacked_segments > 0
    }
}

/// Renders the loss-recovery tallies as a one-row table (the crowd report's
/// loss section).
pub fn render_loss_recovery(summary: &LossRecoverySummary) -> String {
    render_table(
        "Loss recovery (data-path faults survived by the relay)",
        &["cc", "retransmits", "fast rtx", "RTO fires", "SACKed segs"],
        &[vec![
            summary.congestion.to_string(),
            summary.retransmits.to_string(),
            summary.fast_retransmits.to_string(),
            summary.rto_fires.to_string(),
            summary.sacked_segments.to_string(),
        ]],
    )
}

/// Formats a float with one decimal, using "n/a" for non-finite values.
pub fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "n/a".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let text = render_table(
            "Table X: demo",
            &["name", "value"],
            &[
                vec!["Google".into(), "4.3".into()],
                vec!["Dropbox".into(), "284.5".into()],
            ],
        );
        assert!(text.starts_with("Table X: demo\n"));
        assert!(text.contains("name"));
        assert!(text.contains("Dropbox  284.5"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn cdf_series_renders_requested_points() {
        let cdf = Cdf::from_values(&[10.0, 20.0, 30.0, 40.0]);
        let text = render_cdf_series("demo", &cdf, 40.0, 5);
        assert!(text.starts_with("# CDF: demo (4 samples)"));
        assert_eq!(text.lines().count(), 6);
        assert!(text.trim_end().ends_with("1.0000"));
    }

    #[test]
    fn sketch_series_matches_the_cdf_format() {
        let sketch: RttSketch = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        let text = render_sketch_series("demo", &sketch, 40.0, 5);
        assert!(text.starts_with("# CDF: demo (4 samples)"));
        assert_eq!(text.lines().count(), 6);
        assert!(text.trim_end().ends_with("1.0000"));
    }

    #[test]
    fn fmt_ms_handles_nan() {
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
    }

    #[test]
    fn loss_recovery_summary_renders_and_detects_quiet_runs() {
        let quiet = LossRecoverySummary { congestion: "reno", ..Default::default() };
        assert!(!quiet.any_fired());
        let busy = LossRecoverySummary {
            congestion: "cubic",
            retransmits: 12,
            fast_retransmits: 9,
            rto_fires: 3,
            sacked_segments: 40,
        };
        assert!(busy.any_fired());
        let text = render_loss_recovery(&busy);
        assert!(text.starts_with("Loss recovery"));
        assert!(text.contains("cubic"));
        assert!(text.contains("12"));
        assert!(text.contains("40"));
    }
}
