//! Micro-benchmark experiments: Figure 5 and Tables 1–4.

use mop_measure::{Cdf, Histogram};
use mop_packet::{Endpoint, FourTuple};
use mop_procnet::{ConnectionTable, EagerMapper, LazyMapper, SocketStateCode};
use mop_simnet::{CostModel, CpuLedger, SimDuration, SimNetwork, SimRng, SimTime};
use mop_tun::{FlowKind, FlowSpec, Workload, WorkloadKind};
use mopeye_core::{EnqueueScheme, MopEyeConfig, MopEyeEngine, TunWriter, WriteScheme};
use mop_baselines::{MobiPerf, SpeedTest, ThroughputReport};

/// Figure 5: CDFs of the per-SYN packet-to-app mapping overhead before and
/// after the lazy mapping mechanism.
#[derive(Debug, Clone)]
pub struct Fig5Mapping {
    /// Per-SYN mapping CPU overhead with eager parsing (Figure 5a), in ms.
    pub before_ms: Vec<f64>,
    /// Per-SYN mapping CPU overhead with lazy mapping (Figure 5b), in ms.
    pub after_ms: Vec<f64>,
    /// Fraction of lazy requests that avoided a parse (67.8 % in the paper).
    pub mitigation_rate: f64,
    /// Number of connect threads that actually parsed under lazy mapping.
    pub lazy_parses: u64,
    /// Total connect threads in the scenario (481 in the paper).
    pub total_requests: u64,
}

impl Fig5Mapping {
    /// Runs the web-browsing mapping scenario of §3.3.
    pub fn run(seed: u64) -> Self {
        let cost = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut table = ConnectionTable::new();
        let mut eager = EagerMapper::new();
        let mut lazy = LazyMapper::new();
        // A browsing session: bursts of connections opened nearly together,
        // each burst roughly one page load (≈480 connections overall).
        let mut port = 40_000u16;
        let bursts = 40u64;
        for burst in 0..bursts {
            let burst_start = SimTime::from_millis(900 * burst);
            for c in 0..12u64 {
                let flow = FourTuple::new(
                    Endpoint::v4(10, 0, 0, 2, port),
                    Endpoint::v4(31, 13, 70 + (burst % 20) as u8, 36, 443),
                );
                port += 1;
                table.register(flow, true, 10_100 + (burst % 4) as u32, SocketStateCode::SynSent);
                // The connect completes after a Facebook-scale RTT.
                let registered = burst_start + SimDuration::from_millis(c * 4);
                let established = registered + SimDuration::from_millis(35 + c);
                eager.map(&table, &cost, &mut rng, flow);
                lazy.map(&table, &cost, &mut rng, flow, registered, established);
            }
        }
        let before_ms = eager.stats().cpu_cost_ms.clone();
        let after_ms = lazy.stats().cpu_cost_ms.clone();
        Self {
            mitigation_rate: lazy.stats().mitigation_rate(),
            lazy_parses: lazy.stats().parses,
            total_requests: lazy.stats().requests,
            before_ms,
            after_ms,
        }
    }

    /// CDF of the "before" overheads.
    pub fn before_cdf(&self) -> Cdf {
        Cdf::from_values(&self.before_ms)
    }

    /// CDF of the "after" overheads.
    pub fn after_cdf(&self) -> Cdf {
        Cdf::from_values(&self.after_ms)
    }
}

/// Table 1: delay of writing packets to the VPN tunnel under four schemes.
#[derive(Debug, Clone)]
pub struct Table1TunnelWrite {
    /// Histogram of producer-visible delays with directWrite.
    pub direct: Histogram,
    /// Histogram of tunnel-write delays with queueWrite.
    pub queue: Histogram,
    /// Histogram of enqueue delays with the traditional put.
    pub old_put: Histogram,
    /// Histogram of enqueue delays with the sleep-counter put.
    pub new_put: Histogram,
}

impl Table1TunnelWrite {
    /// Runs the four writing schemes over the same bursty packet schedule.
    pub fn run(seed: u64, packets: usize) -> Self {
        let cost = CostModel::android_phone();
        // The packet gaps mix sub-millisecond trains (data bursts) with idle
        // gaps, like the mixed relay workload of §3.5.1.
        let gaps_us: Vec<u64> = {
            let mut rng = SimRng::seed_from_u64(seed ^ 0xfeed);
            (0..packets)
                .map(|_| {
                    if rng.chance(0.7) {
                        rng.int_inclusive(50, 900)
                    } else {
                        rng.int_inclusive(3_000, 40_000)
                    }
                })
                .collect()
        };
        let run = |scheme: WriteScheme, enqueue: EnqueueScheme, contention: f64| -> (Vec<f64>, Vec<f64>) {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut ledger = CpuLedger::new();
            let mut writer = TunWriter::new(scheme, enqueue);
            let mut now = SimTime::from_millis(1);
            for gap in &gaps_us {
                // With directWrite, a socket-connect thread occasionally wants
                // the tunnel at the same time as MainWorker.
                let writers = if rng.chance(contention) { 2 } else { 1 };
                writer.submit(now, writers, &cost, &mut rng, &mut ledger);
                now += SimDuration::from_micros(*gap);
            }
            (writer.stats().write_delays_ms.clone(), writer.stats().enqueue_delays_ms.clone())
        };
        // directWrite: MainWorker and connect threads share the tunnel.
        let (direct_writes, _) = run(WriteScheme::Direct, EnqueueScheme::OldPut, 0.035);
        // queueWrite: only the dedicated TunWriter writes.
        let (queue_writes, _) = run(WriteScheme::Queue, EnqueueScheme::NewPut, 0.0);
        let (_, old_puts) = run(WriteScheme::Queue, EnqueueScheme::OldPut, 0.0);
        let (_, new_puts) = run(WriteScheme::Queue, EnqueueScheme::NewPut, 0.0);
        let mut table = Self {
            direct: Histogram::table1_bins(),
            queue: Histogram::table1_bins(),
            old_put: Histogram::table1_bins(),
            new_put: Histogram::table1_bins(),
        };
        table.direct.add_all(&direct_writes);
        table.queue.add_all(&queue_writes);
        table.old_put.add_all(&old_puts);
        table.new_put.add_all(&new_puts);
        table
    }

    /// The fraction of samples above 1 ms for each column
    /// (direct, queue, oldPut, newPut).
    pub fn large_fractions(&self) -> [f64; 4] {
        [
            self.direct.fraction_at_or_above(1.0),
            self.queue.fraction_at_or_above(1.0),
            self.old_put.fraction_at_or_above(1.0),
            self.new_put.fraction_at_or_above(1.0),
        ]
    }
}

/// One destination row of Table 2.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Destination name ("Google", "Facebook", "Dropbox").
    pub name: String,
    /// Destination address.
    pub dst: Endpoint,
    /// tcpdump reference mean during the MopEye run, in ms.
    pub tcpdump_for_mopeye_ms: f64,
    /// MopEye's mean measured RTT, in ms.
    pub mopeye_ms: f64,
    /// MopEye's deviation from tcpdump.
    pub mopeye_delta_ms: f64,
    /// tcpdump reference mean during the MobiPerf run, in ms.
    pub tcpdump_for_mobiperf_ms: f64,
    /// MobiPerf's mean measured RTT, in ms.
    pub mobiperf_ms: f64,
    /// MobiPerf's deviation from tcpdump.
    pub mobiperf_delta_ms: f64,
}

/// Table 2: RTT measurement accuracy of MopEye and MobiPerf against tcpdump.
#[derive(Debug, Clone)]
pub struct Table2Accuracy {
    /// One row per destination.
    pub rows: Vec<AccuracyRow>,
}

impl Table2Accuracy {
    /// Runs the accuracy experiment: `connects` connections per destination
    /// through the MopEye relay, and the same number of MobiPerf pings.
    pub fn run(seed: u64, connects: usize) -> Self {
        let destinations = [
            ("Google", Endpoint::v4(216, 58, 221, 132, 443)),
            ("Facebook", Endpoint::v4(31, 13, 79, 251, 443)),
            ("Dropbox", Endpoint::v4(108, 160, 166, 126, 443)),
        ];
        let mut rows = Vec::new();
        for (name, dst) in destinations {
            // MopEye run: the app opens `connects` connections to the target.
            let net = SimNetwork::builder().seed(seed).with_table2_destinations().build();
            let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye().with_seed(seed), net);
            let flows: Vec<FlowSpec> = (0..connects)
                .map(|i| FlowSpec {
                    at: SimTime::from_millis(500 * i as u64 + 20),
                    uid: 10_100,
                    package: "com.measurement.app".into(),
                    src: None,
                    dst,
                    domain: None,
                    request_bytes: 200,
                    close_after: 1024,
                    kind: FlowKind::Tcp,
                    network: None,
                    isp: None,
                })
                .collect();
            let report = engine.run_flows(flows);
            let mopeye_rtts: Vec<f64> =
                report.tcp_samples().iter().map(|s| s.measured_ms).collect();
            let tcpdump_rtts: Vec<f64> = report
                .tcp_samples()
                .iter()
                .filter_map(|s| s.tcpdump_ms)
                .collect();
            let mopeye_ms = mean(&mopeye_rtts);
            let tcpdump_for_mopeye_ms = mean(&tcpdump_rtts);
            // MobiPerf run: fresh network, same destination.
            let mut mobi_net = SimNetwork::builder().seed(seed ^ 1).with_table2_destinations().build();
            let mut mobiperf = MobiPerf::new(seed ^ 2);
            let ping = mobiperf.ping(&mut mobi_net, dst, connects);
            rows.push(AccuracyRow {
                name: name.to_string(),
                dst,
                tcpdump_for_mopeye_ms,
                mopeye_ms,
                mopeye_delta_ms: (mopeye_ms - tcpdump_for_mopeye_ms).abs(),
                tcpdump_for_mobiperf_ms: ping.mean_tcpdump(),
                mobiperf_ms: ping.mean_measured(),
                mobiperf_delta_ms: ping.delta_ms(),
            });
        }
        Self { rows }
    }

    /// The worst MopEye deviation across destinations.
    pub fn worst_mopeye_delta(&self) -> f64 {
        self.rows.iter().map(|r| r.mopeye_delta_ms).fold(0.0, f64::max)
    }

    /// The best (smallest) MobiPerf deviation across destinations.
    pub fn best_mobiperf_delta(&self) -> f64 {
        self.rows.iter().map(|r| r.mobiperf_delta_ms).fold(f64::INFINITY, f64::min)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Table 3: download and upload throughput overhead of MopEye and Haystack.
#[derive(Debug, Clone)]
pub struct Table3Throughput {
    /// Throughput with no relay (the Speedtest baseline).
    pub baseline: ThroughputReport,
    /// Throughput through the MopEye relay.
    pub mopeye: ThroughputReport,
    /// Throughput through the Haystack-like relay.
    pub haystack: ThroughputReport,
}

impl Table3Throughput {
    /// Runs the throughput experiment on the dedicated 25 Mbps WiFi network.
    pub fn run(seed: u64, transfer_bytes: usize) -> Self {
        let harness = SpeedTest::new(seed, transfer_bytes);
        Self {
            baseline: harness.baseline(),
            mopeye: harness.with_relay(&MopEyeConfig::mopeye()),
            haystack: harness.with_relay(&MopEyeConfig::haystack_like()),
        }
    }
}

/// Table 4: resource overhead while streaming a 58-minute HD video.
#[derive(Debug, Clone)]
pub struct Table4Resources {
    /// MopEye's CPU utilisation (per cent), battery drain (percentage points)
    /// and peak memory (MiB).
    pub mopeye: ResourceRow,
    /// The same for the Haystack-like configuration.
    pub haystack: ResourceRow,
}

/// One row of Table 4.
#[derive(Debug, Clone, Copy)]
pub struct ResourceRow {
    /// CPU utilisation over the experiment, in per cent.
    pub cpu_percent: f64,
    /// Battery consumed, in percentage points.
    pub battery_percent: f64,
    /// Peak resident buffer memory, in MiB.
    pub memory_mib: f64,
}

impl Table4Resources {
    /// Streams `minutes` of video through each configuration.
    pub fn run(seed: u64, minutes: u64) -> Self {
        let run_one = |config: MopEyeConfig| -> ResourceRow {
            let mut net = SimNetwork::builder().seed(seed).with_table2_destinations().build();
            // A video CDN edge that actually serves 500 KiB segments, so the
            // streaming workload moves HD-scale volumes through the relay.
            net.add_server(
                mop_simnet::ServerConfig::new(
                    "video-cdn",
                    "203.0.113.50".parse().unwrap(),
                    mop_simnet::LatencyModel::lognormal_with(18.0, 0.3, 4.0),
                    mop_simnet::Service::Request {
                        response_bytes: 500 * 1024,
                        processing: mop_simnet::LatencyModel::uniform(2.0, 10.0),
                    },
                )
                .with_domain("youtubei.googleapis.com"),
            );
            let mut engine = MopEyeEngine::new(config, net);
            let workload = Workload::new(
                WorkloadKind::VideoStreaming,
                10_300,
                "com.google.android.youtube",
                vec![(Endpoint::v4(203, 0, 113, 50, 443), "youtubei.googleapis.com".into())],
                SimDuration::from_secs(minutes * 60),
                1,
            );
            let report = engine.run(&[workload]);
            let wall = SimDuration::from_secs(minutes * 60).max(report.finished_at - SimTime::ZERO);
            let bytes = (report.relay.bytes_in + report.relay.bytes_out) as usize;
            ResourceRow {
                cpu_percent: report.ledger.cpu_percent(wall),
                battery_percent: report.ledger.battery_percent(wall, bytes),
                memory_mib: report.ledger.memory_peak_bytes() as f64 / (1024.0 * 1024.0),
            }
        };
        Self {
            mopeye: run_one(MopEyeConfig::mopeye().with_seed(seed)),
            haystack: run_one(MopEyeConfig::haystack_like().with_seed(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_lazy_mapping_mitigates_most_parses() {
        let fig5 = Fig5Mapping::run(1);
        assert_eq!(fig5.total_requests, 480);
        assert_eq!(fig5.before_ms.len(), 480);
        assert_eq!(fig5.after_ms.len(), 480);
        // Figure 5(a): the bulk of eager parses cost more than 5 ms.
        let before = fig5.before_cdf();
        assert!(before.fraction_at_or_below(5.0) < 0.4, "eager parses should be slow");
        // Figure 5(b): most lazy requests cost (almost) nothing; the paper
        // reports a 67.8 % mitigation rate.
        let after = fig5.after_cdf();
        assert!(after.fraction_at_or_below(1.0) > 0.5);
        assert!(fig5.mitigation_rate > 0.55, "mitigation {}", fig5.mitigation_rate);
        assert!(fig5.mitigation_rate < 0.95);
        assert!(fig5.lazy_parses < fig5.total_requests / 2);
    }

    #[test]
    fn table1_ordering_matches_the_paper() {
        let t1 = Table1TunnelWrite::run(3, 2_000);
        let [direct, queue, old_put, new_put] = t1.large_fractions();
        // directWrite suffers the most large overheads; queueWrite's writes
        // are mostly sub-millisecond; oldPut pays wait/notify; newPut almost
        // never does (paper: 3.4 %, 0.65 %, 5.8 %, 0.075 %).
        assert!(direct > queue, "direct {direct} vs queue {queue}");
        assert!(old_put > new_put * 5.0, "oldPut {old_put} vs newPut {new_put}");
        assert!(new_put < 0.02, "newPut {new_put}");
        assert!(old_put > 0.01, "oldPut {old_put}");
        assert_eq!(t1.direct.total(), 2_000);
        assert_eq!(t1.new_put.total(), 2_000);
    }

    #[test]
    fn table2_mopeye_beats_mobiperf_by_an_order_of_magnitude() {
        let t2 = Table2Accuracy::run(5, 6);
        assert_eq!(t2.rows.len(), 3);
        assert!(t2.worst_mopeye_delta() < 1.0, "worst MopEye δ {}", t2.worst_mopeye_delta());
        assert!(t2.best_mobiperf_delta() > 4.0, "best MobiPerf δ {}", t2.best_mobiperf_delta());
        // RTT scales: Google < Facebook < Dropbox.
        assert!(t2.rows[0].tcpdump_for_mopeye_ms < t2.rows[1].tcpdump_for_mopeye_ms);
        assert!(t2.rows[1].tcpdump_for_mopeye_ms < t2.rows[2].tcpdump_for_mopeye_ms);
        assert!(t2.rows[2].tcpdump_for_mopeye_ms > 150.0);
    }

    #[test]
    fn table3_shape_matches_the_paper() {
        let t3 = Table3Throughput::run(7, 6 * 1024 * 1024);
        let (mop_down, mop_up) = t3.mopeye.delta_from(&t3.baseline);
        let (hay_down, hay_up) = t3.haystack.delta_from(&t3.baseline);
        assert!(mop_down < 1.5 && mop_up < 1.5, "MopEye deltas {mop_down}/{mop_up}");
        assert!(hay_down > mop_down, "Haystack download should be worse");
        assert!(hay_up > 10.0, "Haystack upload delta {hay_up}");
    }

    #[test]
    fn table4_haystack_uses_more_of_everything() {
        // Three virtual minutes keep the test quick; the repro binary uses 58.
        let t4 = Table4Resources::run(11, 3);
        assert!(t4.mopeye.cpu_percent < t4.haystack.cpu_percent,
            "cpu {} vs {}", t4.mopeye.cpu_percent, t4.haystack.cpu_percent);
        assert!(t4.mopeye.memory_mib < t4.haystack.memory_mib / 5.0);
        assert!(t4.mopeye.battery_percent <= t4.haystack.battery_percent);
        assert!(t4.mopeye.cpu_percent > 0.0);
        assert!(t4.mopeye.memory_mib > 1.0);
    }
}
