//! Crowdsourced-dataset analyses: Figures 6–11, Tables 5–6 and the two case
//! studies of §4.2.
//!
//! Every computation here runs against the dataset's **streaming
//! aggregates** ([`mop_dataset::SyntheticDataset::aggregates`]): mergeable
//! per-(app, kind, network, ISP) RTT sketches plus a per-device activity
//! plane, folded in as records arrive. No analysis touches the raw record
//! vector, so the cost and memory of producing a full crowd report are
//! independent of the number of samples — the property that lets the fleet
//! `report` binary emit the same analyses from a 100k-connection run without
//! ever materialising the samples.
//!
//! Medians and CDF fractions therefore carry the sketch guarantee: within
//! [`RttSketch::RELATIVE_ERROR`] (1 %) of the exact vector-based statistic,
//! with counts, minima and maxima exact.

use std::collections::BTreeMap;

use mop_dataset::SyntheticDataset;
use mop_measure::{AggregateKey, AggregateStore, MeasurementKind, NetKind, RttSketch};

/// Figure 6: number of users / apps per measurement-contribution bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig6Contribution {
    /// Users in the (>10K, 5K–10K, 1K–5K, 100–1K) buckets, after rescaling
    /// the bucket edges by the dataset's scale factor.
    pub users_per_bucket: [u64; 4],
    /// Apps in the same buckets.
    pub apps_per_bucket: [u64; 4],
}

impl Fig6Contribution {
    /// Computes the contribution buckets from the aggregate counts.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let scale = dataset.spec.scale;
        let edges = [
            (10_000.0 * scale) as u64,
            (5_000.0 * scale) as u64,
            (1_000.0 * scale) as u64,
            (100.0 * scale).max(2.0) as u64,
        ];
        let bucket_of = |count: u64| -> Option<usize> {
            if count > edges[0] {
                Some(0)
            } else if count > edges[1] {
                Some(1)
            } else if count > edges[2] {
                Some(2)
            } else if count >= edges[3] {
                Some(3)
            } else {
                None
            }
        };
        let mut users = [0u64; 4];
        for count in dataset.aggregates.counts_per_device().values() {
            if let Some(b) = bucket_of(*count) {
                users[b] += 1;
            }
        }
        let mut apps = [0u64; 4];
        for count in dataset.aggregates.counts_per_app().values() {
            if let Some(b) = bucket_of(*count) {
                apps[b] += 1;
            }
        }
        Self { users_per_bucket: users, apps_per_bucket: apps }
    }
}

/// Figure 7: the top user countries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig7Countries {
    /// (country, device count), sorted descending, top 20.
    pub top: Vec<(String, u64)>,
}

impl Fig7Countries {
    /// Computes the top-20 countries by device count from the device plane.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let mut counts: Vec<(String, u64)> =
            dataset.aggregates.devices_per_country().into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts.truncate(20);
        Self { top: counts }
    }
}

/// Figure 8: measurement locations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Locations {
    /// (latitude, longitude) of each device's measurements.
    pub points: Vec<(f64, f64)>,
}

impl Fig8Locations {
    /// Extracts the location scatter.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        Self { points: dataset.locations.clone() }
    }
}

/// Figure 9: per-app RTT distributions.
#[derive(Debug, Clone)]
pub struct Fig9AppRtt {
    /// Sketch of all raw app RTTs.
    pub all: RttSketch,
    /// Sketch of WiFi app RTTs.
    pub wifi: RttSketch,
    /// Sketch of cellular app RTTs.
    pub cellular: RttSketch,
    /// Sketch of LTE app RTTs.
    pub lte: RttSketch,
    /// Sketch of the per-app median RTTs of apps with enough measurements
    /// (Figure 9b; 424 apps with more than 1K measurements in the paper).
    pub per_app_medians: RttSketch,
    /// Number of apps included in `per_app_medians`.
    pub qualifying_apps: usize,
}

impl Fig9AppRtt {
    /// Computes the Figure 9 distributions from the aggregates.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let agg = &dataset.aggregates;
        let tcp = |pred: &dyn Fn(NetKind) -> bool| -> RttSketch {
            agg.sketch_where(|k| k.kind == MeasurementKind::Tcp && pred(k.network))
        };
        let threshold = dataset.spec.scaled_threshold(1_000);
        let per_app =
            agg.group_by(|k| k.app.clone(), |k| k.kind == MeasurementKind::Tcp);
        let medians: Vec<f64> = per_app
            .values()
            .filter(|sketch| sketch.count() >= threshold)
            .filter_map(RttSketch::median)
            .collect();
        Self {
            all: tcp(&|_| true),
            wifi: tcp(&|n| n == NetKind::Wifi),
            cellular: tcp(&NetKind::is_cellular),
            lte: tcp(&|n| n == NetKind::Lte),
            qualifying_apps: medians.len(),
            per_app_medians: medians.into_iter().collect(),
        }
    }
}

/// Table 5: the representative apps' measurement counts and median RTTs.
#[derive(Debug, Clone)]
pub struct Table5Apps {
    /// (category, package, measurement count, median RTT ms, paper median).
    pub rows: Vec<(String, String, u64, f64, f64)>,
}

impl Table5Apps {
    /// Computes the per-app statistics for the 16 representative apps.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let counts = dataset.aggregates.counts_per_app();
        let rows = dataset
            .catalog
            .apps
            .iter()
            .map(|app| {
                let count = counts.get(&app.package).copied().unwrap_or(0);
                let median = dataset
                    .aggregates
                    .median_where(|k| k.app == app.package)
                    .unwrap_or(f64::NAN);
                (app.category.to_string(), app.package.clone(), count, median, app.median_rtt_ms)
            })
            .collect();
        Self { rows }
    }
}

/// Figure 10: DNS RTT distributions.
#[derive(Debug, Clone)]
pub struct Fig10Dns {
    /// Sketch of all DNS RTTs.
    pub all: RttSketch,
    /// Sketch of WiFi DNS RTTs.
    pub wifi: RttSketch,
    /// Sketch of cellular DNS RTTs.
    pub cellular: RttSketch,
    /// Sketch of 4G DNS RTTs.
    pub lte: RttSketch,
    /// Sketch of 3G DNS RTTs.
    pub umts3g: RttSketch,
    /// Sketch of 2G DNS RTTs.
    pub gprs2g: RttSketch,
}

impl Fig10Dns {
    /// Computes the Figure 10 distributions from the aggregates.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let dns = |pred: &dyn Fn(NetKind) -> bool| -> RttSketch {
            dataset
                .aggregates
                .sketch_where(|k| k.kind == MeasurementKind::Dns && pred(k.network))
        };
        Self {
            all: dns(&|_| true),
            wifi: dns(&|n| n == NetKind::Wifi),
            cellular: dns(&NetKind::is_cellular),
            lte: dns(&|n| n == NetKind::Lte),
            umts3g: dns(&|n| n == NetKind::Umts3g),
            gprs2g: dns(&|n| n == NetKind::Gprs2g),
        }
    }
}

/// Table 6: DNS performance of the major LTE operators.
#[derive(Debug, Clone)]
pub struct Table6IspDns {
    /// (ISP, country, DNS measurement count, median DNS RTT ms, paper median).
    pub rows: Vec<(String, String, u64, f64, f64)>,
}

impl Table6IspDns {
    /// Computes per-ISP DNS statistics for the Table 6 operators.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let rows = dataset
            .catalog
            .isps
            .iter()
            .map(|isp| {
                let sketch = dataset.aggregates.sketch_where(|k| {
                    k.kind == MeasurementKind::Dns
                        && k.isp == isp.name
                        && k.network.is_cellular()
                });
                let median = sketch.median().unwrap_or(f64::NAN);
                (isp.name.clone(), isp.country.clone(), sketch.count(), median, isp.dns_median_ms)
            })
            .collect();
        Self { rows }
    }
}

/// Figure 11: DNS CDFs of four selected LTE ISPs.
#[derive(Debug, Clone)]
pub struct Fig11IspDns {
    /// (ISP name, sketch of its LTE DNS RTTs).
    pub isps: Vec<(String, RttSketch)>,
}

impl Fig11IspDns {
    /// The four operators the paper plots.
    pub const SELECTED: [&'static str; 4] = ["Verizon", "Singtel", "Cricket", "U.S. Cellular"];

    /// Computes the per-ISP sketches.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let isps = Self::SELECTED
            .iter()
            .map(|name| {
                let sketch = dataset.aggregates.sketch_where(|k| {
                    k.kind == MeasurementKind::Dns && k.isp == *name && k.network == NetKind::Lte
                });
                (name.to_string(), sketch)
            })
            .collect();
        Self { isps }
    }

    /// The fraction of an ISP's DNS RTTs below 10 ms (Singtel: 14.7 %,
    /// Verizon: < 1 %).
    pub fn fraction_below_10ms(&self, isp: &str) -> Option<f64> {
        self.isps
            .iter()
            .find(|(n, _)| n == isp)
            .map(|(_, sketch)| sketch.fraction_at_or_below(10.0))
    }

    /// The minimum DNS RTT observed for an ISP (Cricket / U.S. Cellular:
    /// ≈ 43 ms). Exact — the sketch tracks the true minimum.
    pub fn min_rtt(&self, isp: &str) -> Option<f64> {
        self.isps.iter().find(|(n, _)| n == isp).and_then(|(_, sketch)| sketch.min())
    }
}

/// Case study 1: the whatsapp.net domains.
#[derive(Debug, Clone)]
pub struct CaseWhatsapp {
    /// Number of distinct whatsapp.net domains observed.
    pub domains_observed: usize,
    /// Median RTT over the SoftLayer-hosted domains, in ms.
    pub softlayer_median_ms: f64,
    /// Median RTT over the three CDN-hosted domains, in ms.
    pub cdn_median_ms: f64,
    /// Median RTT of all whatsapp.net traffic.
    pub overall_median_ms: f64,
    /// Per-network medians over the SoftLayer domains for the most-accessed
    /// networks, bucketed as in the paper: (<100 ms, 100–200, 200–300, >300).
    pub network_buckets: [usize; 4],
    /// Number of networks analysed.
    pub networks_analysed: usize,
}

fn is_whatsapp(domain: &str) -> bool {
    domain.ends_with("whatsapp.net")
}

fn is_whatsapp_cdn(domain: &str) -> bool {
    domain.starts_with("mme.") || domain.starts_with("mmg.") || domain.starts_with("pps.")
}

impl CaseWhatsapp {
    /// Runs the Case 1 analysis from the aggregates.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let agg = &dataset.aggregates;
        let domains = agg.distinct_domains(|k| is_whatsapp(&k.domain));
        let softlayer_median_ms = agg
            .median_where(|k| is_whatsapp(&k.domain) && !is_whatsapp_cdn(&k.domain))
            .unwrap_or(f64::NAN);
        let cdn_median_ms = agg
            .median_where(|k| is_whatsapp(&k.domain) && is_whatsapp_cdn(&k.domain))
            .unwrap_or(f64::NAN);
        let overall_median_ms =
            agg.median_where(|k| is_whatsapp(&k.domain)).unwrap_or(f64::NAN);
        // Per-network medians over the SoftLayer domains, for the networks
        // with the most whatsapp.net measurements.
        let threshold = dataset.spec.scaled_threshold(100);
        let by_network: BTreeMap<String, RttSketch> = agg.group_by(
            |k| k.isp.clone(),
            |k| is_whatsapp(&k.domain) && !is_whatsapp_cdn(&k.domain),
        );
        let mut networks: Vec<(&String, &RttSketch)> =
            by_network.iter().filter(|(_, s)| s.count() >= threshold).collect();
        networks.sort_by_key(|(_, s)| std::cmp::Reverse(s.count()));
        networks.truncate(20);
        let mut buckets = [0usize; 4];
        for (_, sketch) in &networks {
            let median = sketch.median().unwrap_or(f64::NAN);
            let idx = if median < 100.0 {
                0
            } else if median < 200.0 {
                1
            } else if median < 300.0 {
                2
            } else {
                3
            };
            buckets[idx] += 1;
        }
        Self {
            domains_observed: domains.len(),
            softlayer_median_ms,
            cdn_median_ms,
            overall_median_ms,
            network_buckets: buckets,
            networks_analysed: networks.len(),
        }
    }
}

/// Case study 2: Jio, India's largest 4G ISP.
#[derive(Debug, Clone)]
pub struct CaseJio {
    /// Jio's median per-app RTT, in ms.
    pub app_median_ms: f64,
    /// Jio's median DNS RTT, in ms.
    pub dns_median_ms: f64,
    /// Number of Jio per-app measurements.
    pub app_measurements: u64,
    /// Domain medians on Jio, bucketed (<100, 100–200, 200–300, 300–400, >400 ms).
    pub domain_buckets: [usize; 5],
    /// Of the domains observed on both Jio and non-Jio LTE networks, how many
    /// are faster off Jio, and by how much on average (ms).
    pub domains_better_off_jio: usize,
    /// Domains compared across Jio and non-Jio LTE.
    pub domains_compared: usize,
    /// Mean advantage of non-Jio LTE for those domains, in ms.
    pub mean_advantage_ms: f64,
}

impl CaseJio {
    /// Runs the Case 2 analysis from the aggregates.
    pub fn compute(dataset: &SyntheticDataset) -> Self {
        let agg = &dataset.aggregates;
        let jio_apps = agg
            .sketch_where(|k| k.isp == "Jio 4G" && k.kind == MeasurementKind::Tcp);
        let app_median_ms = jio_apps.median().unwrap_or(f64::NAN);
        let dns_median_ms = agg
            .median_where(|k| k.isp == "Jio 4G" && k.kind == MeasurementKind::Dns)
            .unwrap_or(f64::NAN);
        let threshold = dataset.spec.scaled_threshold(100);
        let jio_domains: BTreeMap<String, RttSketch> = agg.group_by(
            |k| k.domain.clone(),
            |k| k.isp == "Jio 4G" && k.kind == MeasurementKind::Tcp && !k.domain.is_empty(),
        );
        let mut domain_buckets = [0usize; 5];
        for (_, sketch) in jio_domains.iter().filter(|(_, s)| s.count() >= threshold) {
            let m = sketch.median().unwrap_or(f64::NAN);
            let idx = if m < 100.0 {
                0
            } else if m < 200.0 {
                1
            } else if m < 300.0 {
                2
            } else if m < 400.0 {
                3
            } else {
                4
            };
            domain_buckets[idx] += 1;
        }
        // Compare with non-Jio LTE networks.
        let other_domains: BTreeMap<String, RttSketch> = agg.group_by(
            |k| k.domain.clone(),
            |k| {
                k.isp != "Jio 4G"
                    && k.network == NetKind::Lte
                    && k.kind == MeasurementKind::Tcp
                    && !k.domain.is_empty()
            },
        );
        let mut compared = 0usize;
        let mut better = 0usize;
        let mut advantage_sum = 0.0;
        for (domain, jio_sketch) in &jio_domains {
            if jio_sketch.count() < threshold {
                continue;
            }
            let Some(other_sketch) = other_domains.get(domain) else { continue };
            if other_sketch.count() < threshold {
                continue;
            }
            let jio_median = jio_sketch.median().unwrap_or(f64::NAN);
            let other_median = other_sketch.median().unwrap_or(f64::NAN);
            compared += 1;
            if other_median < jio_median {
                better += 1;
                advantage_sum += jio_median - other_median;
            }
        }
        Self {
            app_median_ms,
            dns_median_ms,
            app_measurements: jio_apps.count(),
            domain_buckets,
            domains_better_off_jio: better,
            domains_compared: compared,
            mean_advantage_ms: if better > 0 { advantage_sum / better as f64 } else { 0.0 },
        }
    }
}

/// The full §4.2 crowd report computed from any [`AggregateStore`] — the
/// entry point the fleet `report` binary uses on a live run's merged
/// aggregates (a [`SyntheticDataset`] is not required).
#[derive(Debug, Clone)]
pub struct CrowdSummary {
    /// Sketch of all TCP RTTs.
    pub tcp: RttSketch,
    /// Sketch of all DNS RTTs.
    pub dns: RttSketch,
    /// Per-network-kind TCP sketches, in [`NetKind::ALL`] order.
    pub tcp_by_network: Vec<(NetKind, RttSketch)>,
    /// Per-network-kind DNS sketches, in [`NetKind::ALL`] order.
    pub dns_by_network: Vec<(NetKind, RttSketch)>,
    /// Per-app TCP sketches (app, count, sketch), sorted by count descending.
    pub apps: Vec<(String, u64, RttSketch)>,
    /// Distinct devices observed.
    pub devices: usize,
}

impl CrowdSummary {
    /// Computes the summary from a store of aggregates.
    pub fn compute(aggregates: &AggregateStore) -> Self {
        let kind_sketch = |kind: MeasurementKind| {
            aggregates.sketch_where(|k: &AggregateKey| k.kind == kind)
        };
        let by_network = |kind: MeasurementKind| -> Vec<(NetKind, RttSketch)> {
            NetKind::ALL
                .iter()
                .map(|net| {
                    (*net, aggregates.sketch_where(|k| k.kind == kind && k.network == *net))
                })
                .collect()
        };
        let mut apps: Vec<(String, u64, RttSketch)> = aggregates
            .group_by(|k| k.app.clone(), |k| {
                k.kind == MeasurementKind::Tcp && !k.app.is_empty()
            })
            .into_iter()
            .map(|(app, sketch)| (app, sketch.count(), sketch))
            .collect();
        apps.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Self {
            tcp: kind_sketch(MeasurementKind::Tcp),
            dns: kind_sketch(MeasurementKind::Dns),
            tcp_by_network: by_network(MeasurementKind::Tcp),
            dns_by_network: by_network(MeasurementKind::Dns),
            apps,
            devices: aggregates.counts_per_device().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_dataset::DatasetSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec { seed: 99, scale: 0.004 })
    }

    #[test]
    fn fig6_buckets_have_the_paper_shape() {
        let d = dataset();
        let fig6 = Fig6Contribution::compute(&d);
        // The 100–1K bucket dominates among qualifying users, and the 1K–5K
        // bucket is larger than the two heaviest buckets (Figure 6a).
        assert!(fig6.users_per_bucket[3] > fig6.users_per_bucket[2]);
        assert!(fig6.users_per_bucket[2] > fig6.users_per_bucket[0]);
        assert!(fig6.users_per_bucket.iter().sum::<u64>() > 500);
        // Same shape for apps (Figure 6b).
        assert!(fig6.apps_per_bucket[3] > fig6.apps_per_bucket[0]);
        assert!(fig6.apps_per_bucket.iter().sum::<u64>() > 50);
    }

    #[test]
    fn fig7_usa_leads_and_fig8_has_points() {
        let d = dataset();
        let fig7 = Fig7Countries::compute(&d);
        assert_eq!(fig7.top[0].0, "USA");
        assert!(fig7.top.len() == 20);
        assert!(fig7.top[0].1 > fig7.top[1].1);
        let fig8 = Fig8Locations::compute(&d);
        assert_eq!(fig8.points.len(), 2_351);
        assert!(fig8.points.iter().all(|(lat, lon)| (-90.0..=90.0).contains(lat) && (-180.0..=180.0).contains(lon)));
    }

    #[test]
    fn fig9_and_fig10_medians_follow_the_paper_ordering() {
        let d = dataset();
        let fig9 = Fig9AppRtt::compute(&d);
        let all = fig9.all.median().unwrap();
        let wifi = fig9.wifi.median().unwrap();
        let cellular = fig9.cellular.median().unwrap();
        let lte = fig9.lte.median().unwrap();
        assert!(wifi < all && all < cellular, "wifi {wifi} all {all} cellular {cellular}");
        assert!(lte < cellular);
        assert!((40.0..110.0).contains(&all), "overall median {all}");
        assert!(fig9.qualifying_apps > 20);
        // Figure 9(b): most qualifying apps are under 100 ms, a tail is slow.
        let under100 = fig9.per_app_medians.fraction_at_or_below(100.0);
        assert!(under100 > 0.55, "under100 {under100}");
        assert!(under100 < 0.99);
        let fig10 = Fig10Dns::compute(&d);
        let dns_wifi = fig10.wifi.median().unwrap();
        let dns_lte = fig10.lte.median().unwrap();
        let dns_3g = fig10.umts3g.median().unwrap();
        let dns_2g = fig10.gprs2g.median().unwrap();
        assert!(dns_wifi < dns_lte && dns_lte < dns_3g && dns_3g < dns_2g);
        assert!(fig10.all.median().unwrap() < fig9.all.median().unwrap());
    }

    #[test]
    fn sketch_based_figures_match_the_vector_based_store() {
        // The acceptance bar for the aggregate rebuild: every headline median
        // reproduced from sketches is within 1 % of the same median computed
        // from the raw record vectors.
        let d = dataset();
        let fig9 = Fig9AppRtt::compute(&d);
        let pairs = [
            (fig9.all.median().unwrap(), d.store.median_where(|r| r.kind == MeasurementKind::Tcp)),
            (
                fig9.wifi.median().unwrap(),
                d.store.median_where(|r| {
                    r.kind == MeasurementKind::Tcp && r.network == NetKind::Wifi
                }),
            ),
            (
                fig9.lte.median().unwrap(),
                d.store
                    .median_where(|r| r.kind == MeasurementKind::Tcp && r.network == NetKind::Lte),
            ),
        ];
        for (sketch_median, exact) in pairs {
            let exact = exact.unwrap();
            let err = (sketch_median - exact).abs() / exact;
            assert!(err <= 0.011, "sketch {sketch_median} vs exact {exact} (err {err})");
        }
        // Counts are exact, not approximate.
        assert_eq!(fig9.all.count() as usize, d.store.tcp_rtts().len());
    }

    #[test]
    fn table5_and_table6_track_their_paper_targets() {
        let d = dataset();
        let t5 = Table5Apps::compute(&d);
        assert_eq!(t5.rows.len(), 16);
        for (_, package, count, median, paper) in &t5.rows {
            assert!(*count > 0, "{package} should have measurements");
            assert!(median.is_finite());
            // Within a factor-of-two band of the paper's median (the target is
            // shape, not absolute equality).
            assert!(
                *median > paper * 0.45 && *median < paper * 2.6,
                "{package}: median {median} vs paper {paper}"
            );
        }
        let t6 = Table6IspDns::compute(&d);
        assert_eq!(t6.rows.len(), 15);
        let find = |name: &str| t6.rows.iter().find(|r| r.0 == name).unwrap().3;
        assert!(find("Singtel") < find("Verizon"));
        assert!(find("Cricket") > find("Verizon"));
        assert!(find("U.S. Cellular") > find("T-Mobile"));
    }

    #[test]
    fn fig11_singtel_fast_tail_and_cricket_floor() {
        let d = dataset();
        let fig11 = Fig11IspDns::compute(&d);
        let singtel = fig11.fraction_below_10ms("Singtel").unwrap();
        let verizon = fig11.fraction_below_10ms("Verizon").unwrap();
        assert!(singtel > 0.05, "Singtel below-10ms fraction {singtel}");
        assert!(verizon < singtel, "Verizon {verizon} vs Singtel {singtel}");
        let cricket_min = fig11.min_rtt("Cricket").unwrap();
        assert!(cricket_min > 35.0, "Cricket minimum {cricket_min}");
        assert!(fig11.min_rtt("Singtel").unwrap() < 15.0);
        assert!(fig11.fraction_below_10ms("Nonexistent").is_none());
    }

    #[test]
    fn case_studies_reproduce_the_headline_findings() {
        let d = dataset();
        let whatsapp = CaseWhatsapp::compute(&d);
        assert!(whatsapp.domains_observed > 100, "domains {}", whatsapp.domains_observed);
        assert!(whatsapp.softlayer_median_ms > 180.0);
        assert!(whatsapp.cdn_median_ms < 120.0);
        assert!(whatsapp.softlayer_median_ms > whatsapp.cdn_median_ms * 2.0);
        assert!(whatsapp.networks_analysed > 5);
        // Most analysed networks see the SoftLayer domains above 200 ms.
        assert!(whatsapp.network_buckets[2] + whatsapp.network_buckets[3] > whatsapp.network_buckets[0]);

        let jio = CaseJio::compute(&d);
        assert!(jio.app_median_ms > 180.0, "jio app median {}", jio.app_median_ms);
        assert!(jio.dns_median_ms < 100.0, "jio dns median {}", jio.dns_median_ms);
        assert!(jio.app_median_ms > jio.dns_median_ms * 2.5);
        assert!(jio.app_measurements > 100);
        // Most Jio domains sit above 200 ms.
        let slow: usize = jio.domain_buckets[2..].iter().sum();
        assert!(slow > jio.domain_buckets[0], "buckets {:?}", jio.domain_buckets);
        // Nearly every domain observed on both sides is faster off Jio.
        assert!(jio.domains_compared > 3);
        assert!(jio.domains_better_off_jio * 10 >= jio.domains_compared * 8);
        assert!(jio.mean_advantage_ms > 80.0, "advantage {}", jio.mean_advantage_ms);
    }

    #[test]
    fn crowd_summary_computes_from_bare_aggregates() {
        let d = dataset();
        let summary = CrowdSummary::compute(&d.aggregates);
        assert_eq!(summary.tcp.count() as usize, d.store.tcp_rtts().len());
        assert_eq!(summary.dns.count() as usize, d.store.dns_rtts().len());
        assert_eq!(summary.devices, d.store.counts_per_device().len());
        assert!(summary.apps.len() > 300);
        // Apps are sorted by contribution.
        assert!(summary.apps.windows(2).all(|w| w[0].1 >= w[1].1));
        let by_net: u64 = summary.tcp_by_network.iter().map(|(_, s)| s.count()).sum();
        assert_eq!(by_net, summary.tcp.count());
    }
}
