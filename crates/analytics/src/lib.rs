//! Reproduction of every table and figure in the MopEye evaluation.
//!
//! The paper's evaluation splits into micro-benchmarks of the tool itself
//! (§3.3, §3.5, §4.1 — Figures 5, Tables 1–4) and analyses of the
//! crowdsourced dataset (§4.2 — Figures 6–11, Tables 5–6 and two case
//! studies). The [`micro`] module regenerates the former by running the
//! relay engine and the baselines on the simulated substrates; the [`crowd`]
//! module regenerates the latter from streaming aggregates — the
//! per-(app, kind, network, ISP) RTT sketches of
//! [`mop_measure::AggregateStore`] — so its cost is independent of the
//! sample count. [`diagnose`] builds the actionable layer on top:
//! app-slow-vs-network-slow classification and per-ISP rankings. [`render`]
//! turns the results into the text tables and CDF series that
//! `EXPERIMENTS.md` and the `repro` binary print.
//!
//! # Examples
//!
//! Diagnose a small deployment straight from aggregates:
//!
//! ```
//! use mop_analytics::diagnose::{diagnose_apps, DiagnosisConfig, Verdict};
//! use mop_measure::{AggregateStore, NetKind, RttRecord};
//!
//! let mut agg = AggregateStore::new();
//! for i in 0..60u32 {
//!     let jitter = f64::from(i % 11);
//!     agg.observe(&RttRecord::tcp(35.0 + jitter, 1, "com.cdn.app", NetKind::Wifi));
//!     agg.observe(&RttRecord::tcp(42.0 + jitter, 1, "com.chat.app", NetKind::Wifi));
//!     agg.observe(&RttRecord::tcp(280.0 + jitter, 1, "com.faraway.app", NetKind::Wifi));
//! }
//! let report = diagnose_apps(&agg, DiagnosisConfig::default());
//! assert_eq!(report[0].app, "com.faraway.app");
//! assert_eq!(report[0].verdict, Verdict::AppSlow);
//! ```

#![warn(missing_docs)]

pub mod crowd;
pub mod diagnose;
pub mod micro;
pub mod render;

pub use crowd::{
    CaseJio, CaseWhatsapp, CrowdSummary, Fig10Dns, Fig11IspDns, Fig6Contribution, Fig7Countries,
    Fig8Locations, Fig9AppRtt, Table5Apps, Table6IspDns,
};
pub use diagnose::{
    diagnose_apps, diagnose_live, diagnose_trends, epoch_series, rank_isps, AppDiagnosis,
    DiagnosisConfig, EpochPoint, IspRank, LiveDiagnosis, TrendConfig, TrendDiagnosis,
    TrendVerdict, Verdict,
};
pub use micro::{Fig5Mapping, Table1TunnelWrite, Table2Accuracy, Table3Throughput, Table4Resources};
pub use render::{render_cdf_series, render_epoch_table, render_sketch_series, render_table};
