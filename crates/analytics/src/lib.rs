//! Reproduction of every table and figure in the MopEye evaluation.
//!
//! The paper's evaluation splits into micro-benchmarks of the tool itself
//! (§3.3, §3.5, §4.1 — Figures 5, Tables 1–4) and analyses of the
//! crowdsourced dataset (§4.2 — Figures 6–11, Tables 5–6 and two case
//! studies). The [`micro`] module regenerates the former by running the
//! relay engine and the baselines on the simulated substrates; the [`crowd`]
//! module regenerates the latter from a [`mop_dataset::SyntheticDataset`].
//! [`render`] turns the results into the text tables and CDF series that
//! `EXPERIMENTS.md` and the `repro` binary print.

pub mod crowd;
pub mod micro;
pub mod render;

pub use crowd::{
    CaseJio, CaseWhatsapp, Fig10Dns, Fig11IspDns, Fig6Contribution, Fig7Countries, Fig8Locations,
    Fig9AppRtt, Table5Apps, Table6IspDns,
};
pub use micro::{Fig5Mapping, Table1TunnelWrite, Table2Accuracy, Table3Throughput, Table4Resources};
pub use render::{render_cdf_series, render_table};
