//! Per-app and per-ISP diagnosis from streaming aggregates.
//!
//! The point of MopEye's per-app measurement (§1, §4.2.4 of the paper) is to
//! answer the user's actual question: *is this app slow because its servers
//! are slow, or because my network is slow?* The two case studies answer it
//! by hand (WhatsApp: the SoftLayer servers; Jio: the LTE core); this module
//! mechanises the same reasoning over any [`AggregateStore`]:
//!
//! * [`diagnose_apps`] classifies each app by comparing its median RTT on
//!   each network against that network's all-apps baseline — the crowd
//!   control group that a single handset cannot provide,
//! * [`rank_isps`] orders operators by their median RTT for a measurement
//!   kind, the per-ISP league table behind Table 6 and Figure 11.
//!
//! Both run on sketches, so diagnosing a deployment costs O(cells), not
//! O(samples).

use mop_measure::{AggregateStore, MeasurementKind, RttSketch};

/// The verdict of a per-app diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The app is much slower than other apps on the same networks: its
    /// server side (placement, peering, hosting) is the bottleneck — the
    /// WhatsApp/SoftLayer situation of Case 1.
    AppSlow,
    /// The app tracks the network baseline, but the baseline itself is slow:
    /// the access network is the bottleneck — the Jio situation of Case 2.
    NetworkSlow,
    /// The app tracks a healthy network baseline.
    Healthy,
}

impl Verdict {
    /// A stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::AppSlow => "app-slow",
            Verdict::NetworkSlow => "network-slow",
            Verdict::Healthy => "healthy",
        }
    }
}

/// The diagnosis of one app.
#[derive(Debug, Clone)]
pub struct AppDiagnosis {
    /// Package name.
    pub app: String,
    /// TCP measurements behind the diagnosis.
    pub samples: u64,
    /// The app's median RTT, in ms.
    pub app_median_ms: f64,
    /// The baseline: the median RTT of *all* apps, weighted to the networks
    /// this app was measured on, in ms.
    pub baseline_median_ms: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Tuning knobs for [`diagnose_apps`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagnosisConfig {
    /// Apps with fewer TCP samples than this are skipped (no stable median).
    pub min_samples: u64,
    /// An app whose median exceeds `baseline × app_slow_ratio` is
    /// [`Verdict::AppSlow`].
    pub app_slow_ratio: f64,
    /// A baseline above this (ms) makes a non-app-slow app
    /// [`Verdict::NetworkSlow`].
    pub network_slow_ms: f64,
}

impl Default for DiagnosisConfig {
    fn default() -> Self {
        // An app at twice its peers' latency is an outlier among apps; a
        // 150 ms all-apps median is a congested or badly-routed access
        // network by the paper's Figure 9/10 standards.
        Self { min_samples: 30, app_slow_ratio: 2.0, network_slow_ms: 150.0 }
    }
}

/// Classifies every app in the aggregates as app-slow, network-slow or
/// healthy. Results are sorted worst-first: app-slow apps by how far they
/// exceed their baseline, then network-slow, then healthy.
pub fn diagnose_apps(aggregates: &AggregateStore, config: DiagnosisConfig) -> Vec<AppDiagnosis> {
    // Three single passes over the cells: per-network all-apps baselines,
    // per-app sketches, and per-(app, network) sample counts. Everything
    // below is lookups, so the whole diagnosis is O(cells), not
    // O(apps × networks × cells).
    let baselines = aggregates.group_by(
        |k| k.network,
        |k| k.kind == MeasurementKind::Tcp && !k.app.is_empty(),
    );
    let per_app = aggregates.group_by(
        |k| k.app.clone(),
        |k| k.kind == MeasurementKind::Tcp && !k.app.is_empty(),
    );
    let per_app_network = aggregates.group_by(
        |k| (k.app.clone(), k.network),
        |k| k.kind == MeasurementKind::Tcp && !k.app.is_empty(),
    );
    let mut out = Vec::new();
    for (app, sketch) in per_app {
        if sketch.count() < config.min_samples {
            continue;
        }
        let Some(app_median) = sketch.median() else { continue };
        // Weight each network's baseline by this app's sample share on it, so
        // an LTE-heavy app is compared against LTE peers, not WiFi ones.
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (network, baseline) in &baselines {
            let share = per_app_network
                .get(&(app.clone(), *network))
                .map_or(0, RttSketch::count);
            if share > 0 {
                if let Some(median) = baseline.median() {
                    weighted += median * share as f64;
                    weight += share as f64;
                }
            }
        }
        let baseline_median = if weight > 0.0 { weighted / weight } else { app_median };
        let verdict = if app_median > baseline_median * config.app_slow_ratio {
            Verdict::AppSlow
        } else if baseline_median > config.network_slow_ms {
            Verdict::NetworkSlow
        } else {
            Verdict::Healthy
        };
        out.push(AppDiagnosis {
            app,
            samples: sketch.count(),
            app_median_ms: app_median,
            baseline_median_ms: baseline_median,
            verdict,
        });
    }
    out.sort_by(|a, b| {
        let severity = |d: &AppDiagnosis| match d.verdict {
            Verdict::AppSlow => 0,
            Verdict::NetworkSlow => 1,
            Verdict::Healthy => 2,
        };
        severity(a)
            .cmp(&severity(b))
            .then(
                (b.app_median_ms / b.baseline_median_ms)
                    .total_cmp(&(a.app_median_ms / a.baseline_median_ms)),
            )
            .then(a.app.cmp(&b.app))
    });
    out
}

/// One row of the per-ISP ranking.
#[derive(Debug, Clone)]
pub struct IspRank {
    /// Operator / Wi-Fi network name.
    pub isp: String,
    /// Measurements behind the row.
    pub samples: u64,
    /// Median RTT, in ms.
    pub median_ms: f64,
    /// 95th-percentile RTT, in ms — the tail the median hides.
    pub p95_ms: f64,
}

/// Ranks ISPs by median RTT for one measurement kind, fastest first
/// (operators with fewer than `min_samples` measurements are skipped). The
/// Table 6 / Figure 11 league table, computed from sketches.
pub fn rank_isps(
    aggregates: &AggregateStore,
    kind: MeasurementKind,
    min_samples: u64,
) -> Vec<IspRank> {
    let per_isp =
        aggregates.group_by(|k| k.isp.clone(), |k| k.kind == kind && !k.isp.is_empty());
    let mut rows: Vec<IspRank> = per_isp
        .into_iter()
        .filter(|(_, sketch)| sketch.count() >= min_samples)
        .filter_map(|(isp, sketch)| {
            Some(IspRank {
                samples: sketch.count(),
                median_ms: sketch.median()?,
                p95_ms: sketch.quantile(0.95)?,
                isp,
            })
        })
        .collect();
    rows.sort_by(|a, b| a.median_ms.total_cmp(&b.median_ms).then(a.isp.cmp(&b.isp)));
    rows
}

/// Convenience: the sketch of one app's TCP RTTs, for drill-down displays.
pub fn app_sketch(aggregates: &AggregateStore, app: &str) -> RttSketch {
    aggregates.sketch_where(|k| k.kind == MeasurementKind::Tcp && k.app == app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_measure::{NetKind, RttRecord};

    /// A small deployment: two healthy apps, one with a slow server, all on
    /// a fast network — plus one app on a slow network.
    fn aggregates() -> AggregateStore {
        let mut agg = AggregateStore::new();
        for i in 0..200u32 {
            let jitter = f64::from(i % 17);
            agg.observe(&RttRecord::tcp(40.0 + jitter, 1, "com.fast.a", NetKind::Wifi));
            agg.observe(&RttRecord::tcp(48.0 + jitter, 1, "com.fast.b", NetKind::Wifi));
            // Same network, far-away servers (the WhatsApp shape).
            agg.observe(&RttRecord::tcp(260.0 + jitter, 2, "com.slowserver", NetKind::Wifi));
            // Slow network, server no slower than its peers (the Jio shape).
            agg.observe(&RttRecord::tcp(290.0 + jitter, 3, "com.on3g", NetKind::Umts3g));
        }
        agg
    }

    #[test]
    fn classifies_app_slow_vs_network_slow() {
        let diagnoses = diagnose_apps(&aggregates(), DiagnosisConfig::default());
        let verdict_of = |app: &str| {
            diagnoses.iter().find(|d| d.app == app).map(|d| d.verdict).unwrap()
        };
        assert_eq!(verdict_of("com.fast.a"), Verdict::Healthy);
        assert_eq!(verdict_of("com.fast.b"), Verdict::Healthy);
        assert_eq!(verdict_of("com.slowserver"), Verdict::AppSlow);
        assert_eq!(verdict_of("com.on3g"), Verdict::NetworkSlow);
        // Worst first: the app-slow app leads the report.
        assert_eq!(diagnoses[0].app, "com.slowserver");
        assert!(diagnoses[0].app_median_ms > diagnoses[0].baseline_median_ms * 2.0);
    }

    #[test]
    fn small_apps_are_skipped_and_labels_are_stable() {
        let mut agg = aggregates();
        for _ in 0..5 {
            agg.observe(&RttRecord::tcp(900.0, 4, "com.tiny", NetKind::Wifi));
        }
        let diagnoses = diagnose_apps(&agg, DiagnosisConfig::default());
        assert!(diagnoses.iter().all(|d| d.app != "com.tiny"), "below min_samples");
        assert_eq!(Verdict::AppSlow.label(), "app-slow");
        assert_eq!(Verdict::NetworkSlow.label(), "network-slow");
        assert_eq!(Verdict::Healthy.label(), "healthy");
    }

    #[test]
    fn isp_ranking_orders_by_median() {
        let mut agg = AggregateStore::new();
        for i in 0..100u32 {
            let jitter = f64::from(i % 13);
            agg.observe(
                &RttRecord::dns(20.0 + jitter, 1, NetKind::Lte).with_isp("FastTel"),
            );
            agg.observe(
                &RttRecord::dns(95.0 + jitter, 2, NetKind::Lte).with_isp("SlowTel"),
            );
        }
        let ranks = rank_isps(&agg, MeasurementKind::Dns, 10);
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].isp, "FastTel");
        assert_eq!(ranks[1].isp, "SlowTel");
        assert!(ranks[0].median_ms < ranks[1].median_ms);
        assert!(ranks[0].p95_ms >= ranks[0].median_ms);
        assert_eq!(ranks[0].samples, 100);
        // Nothing ranks for a kind with no samples above the floor.
        assert!(rank_isps(&agg, MeasurementKind::Tcp, 10).is_empty());
    }

    #[test]
    fn app_sketch_drills_down() {
        let agg = aggregates();
        let sketch = app_sketch(&agg, "com.slowserver");
        assert_eq!(sketch.count(), 200);
        assert!(sketch.median().unwrap() > 200.0);
        assert!(app_sketch(&agg, "com.absent").is_empty());
    }
}
