//! Per-app and per-ISP diagnosis from streaming aggregates.
//!
//! The point of MopEye's per-app measurement (§1, §4.2.4 of the paper) is to
//! answer the user's actual question: *is this app slow because its servers
//! are slow, or because my network is slow?* The two case studies answer it
//! by hand (WhatsApp: the SoftLayer servers; Jio: the LTE core); this module
//! mechanises the same reasoning over any [`AggregateStore`]:
//!
//! * [`diagnose_apps`] classifies each app by comparing its median RTT on
//!   each network against that network's all-apps baseline — the crowd
//!   control group that a single handset cannot provide,
//! * [`rank_isps`] orders operators by their median RTT for a measurement
//!   kind, the per-ISP league table behind Table 6 and Figure 11.
//!
//! Both run on sketches, so diagnosing a deployment costs O(cells), not
//! O(samples).

use mop_measure::{AggregateStore, MeasurementKind, RttSketch, WindowedAggregateStore};

/// The verdict of a per-app diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The app is much slower than other apps on the same networks: its
    /// server side (placement, peering, hosting) is the bottleneck — the
    /// WhatsApp/SoftLayer situation of Case 1.
    AppSlow,
    /// The app tracks the network baseline, but the baseline itself is slow:
    /// the access network is the bottleneck — the Jio situation of Case 2.
    NetworkSlow,
    /// The app tracks a healthy network baseline.
    Healthy,
}

impl Verdict {
    /// A stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::AppSlow => "app-slow",
            Verdict::NetworkSlow => "network-slow",
            Verdict::Healthy => "healthy",
        }
    }
}

/// The diagnosis of one app.
#[derive(Debug, Clone)]
pub struct AppDiagnosis {
    /// Package name.
    pub app: String,
    /// TCP measurements behind the diagnosis.
    pub samples: u64,
    /// The app's median RTT, in ms.
    pub app_median_ms: f64,
    /// The baseline: the median RTT of *all* apps, weighted to the networks
    /// this app was measured on, in ms.
    pub baseline_median_ms: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Tuning knobs for [`diagnose_apps`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagnosisConfig {
    /// Apps with fewer TCP samples than this are skipped (no stable median).
    pub min_samples: u64,
    /// An app whose median exceeds `baseline × app_slow_ratio` is
    /// [`Verdict::AppSlow`].
    pub app_slow_ratio: f64,
    /// A baseline above this (ms) makes a non-app-slow app
    /// [`Verdict::NetworkSlow`].
    pub network_slow_ms: f64,
}

impl Default for DiagnosisConfig {
    fn default() -> Self {
        // An app at twice its peers' latency is an outlier among apps; a
        // 150 ms all-apps median is a congested or badly-routed access
        // network by the paper's Figure 9/10 standards.
        Self { min_samples: 30, app_slow_ratio: 2.0, network_slow_ms: 150.0 }
    }
}

/// Classifies every app in the aggregates as app-slow, network-slow or
/// healthy. Results are sorted worst-first: app-slow apps by how far they
/// exceed their baseline, then network-slow, then healthy.
pub fn diagnose_apps(aggregates: &AggregateStore, config: DiagnosisConfig) -> Vec<AppDiagnosis> {
    // Three single passes over the cells: per-network all-apps baselines,
    // per-app sketches, and per-(app, network) sample counts. Everything
    // below is lookups, so the whole diagnosis is O(cells), not
    // O(apps × networks × cells).
    let baselines = aggregates.group_by(
        |k| k.network,
        |k| k.kind == MeasurementKind::Tcp && !k.app.is_empty(),
    );
    let per_app = aggregates.group_by(
        |k| k.app.clone(),
        |k| k.kind == MeasurementKind::Tcp && !k.app.is_empty(),
    );
    let per_app_network = aggregates.group_by(
        |k| (k.app.clone(), k.network),
        |k| k.kind == MeasurementKind::Tcp && !k.app.is_empty(),
    );
    let mut out = Vec::new();
    for (app, sketch) in per_app {
        if sketch.count() < config.min_samples {
            continue;
        }
        let Some(app_median) = sketch.median() else { continue };
        // Weight each network's baseline by this app's sample share on it, so
        // an LTE-heavy app is compared against LTE peers, not WiFi ones.
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (network, baseline) in &baselines {
            let share = per_app_network
                .get(&(app.clone(), *network))
                .map_or(0, RttSketch::count);
            if share > 0 {
                if let Some(median) = baseline.median() {
                    weighted += median * share as f64;
                    weight += share as f64;
                }
            }
        }
        let baseline_median = if weight > 0.0 { weighted / weight } else { app_median };
        let verdict = if app_median > baseline_median * config.app_slow_ratio {
            Verdict::AppSlow
        } else if baseline_median > config.network_slow_ms {
            Verdict::NetworkSlow
        } else {
            Verdict::Healthy
        };
        out.push(AppDiagnosis {
            app,
            samples: sketch.count(),
            app_median_ms: app_median,
            baseline_median_ms: baseline_median,
            verdict,
        });
    }
    out.sort_by(|a, b| {
        let severity = |d: &AppDiagnosis| match d.verdict {
            Verdict::AppSlow => 0,
            Verdict::NetworkSlow => 1,
            Verdict::Healthy => 2,
        };
        severity(a)
            .cmp(&severity(b))
            .then(
                (b.app_median_ms / b.baseline_median_ms)
                    .total_cmp(&(a.app_median_ms / a.baseline_median_ms)),
            )
            .then(a.app.cmp(&b.app))
    });
    out
}

/// One row of the per-ISP ranking.
#[derive(Debug, Clone)]
pub struct IspRank {
    /// Operator / Wi-Fi network name.
    pub isp: String,
    /// Measurements behind the row.
    pub samples: u64,
    /// Median RTT, in ms.
    pub median_ms: f64,
    /// 95th-percentile RTT, in ms — the tail the median hides.
    pub p95_ms: f64,
}

/// Ranks ISPs by median RTT for one measurement kind, fastest first
/// (operators with fewer than `min_samples` measurements are skipped). The
/// Table 6 / Figure 11 league table, computed from sketches.
pub fn rank_isps(
    aggregates: &AggregateStore,
    kind: MeasurementKind,
    min_samples: u64,
) -> Vec<IspRank> {
    let per_isp =
        aggregates.group_by(|k| k.isp.clone(), |k| k.kind == kind && !k.isp.is_empty());
    let mut rows: Vec<IspRank> = per_isp
        .into_iter()
        .filter(|(_, sketch)| sketch.count() >= min_samples)
        .filter_map(|(isp, sketch)| {
            Some(IspRank {
                samples: sketch.count(),
                median_ms: sketch.median()?,
                p95_ms: sketch.quantile(0.95)?,
                isp,
            })
        })
        .collect();
    rows.sort_by(|a, b| a.median_ms.total_cmp(&b.median_ms).then(a.isp.cmp(&b.isp)));
    rows
}

/// Convenience: the sketch of one app's TCP RTTs, for drill-down displays.
pub fn app_sketch(aggregates: &AggregateStore, app: &str) -> RttSketch {
    aggregates.sketch_where(|k| k.kind == MeasurementKind::Tcp && k.app == app)
}

// ----- time-series diagnosis over epoch windows ----------------------------

/// The verdict of a time-series diagnosis over a run's epoch windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendVerdict {
    /// An operator's all-apps baseline worsened across the run: the access
    /// network degraded, and apps on it got slow *together* — the mid-day
    /// cell-congestion shape.
    IspDegraded,
    /// One app worsened against a baseline that did not: its server side
    /// regressed mid-run while the network stayed put.
    AppRegressed,
    /// The subject's late epochs track its early ones.
    Stable,
}

impl TrendVerdict {
    /// A stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrendVerdict::IspDegraded => "isp-degraded",
            TrendVerdict::AppRegressed => "app-regressed",
            TrendVerdict::Stable => "stable",
        }
    }
}

/// The time-series diagnosis of one subject (an app or an ISP).
#[derive(Debug, Clone)]
pub struct TrendDiagnosis {
    /// The app package or operator name.
    pub subject: String,
    /// TCP measurements behind the diagnosis (early + late halves).
    pub samples: u64,
    /// Median RTT over the early half of the observed epochs, in ms.
    pub early_median_ms: f64,
    /// Median RTT over the late half, in ms.
    pub late_median_ms: f64,
    /// The verdict.
    pub verdict: TrendVerdict,
}

impl TrendDiagnosis {
    /// How much the subject slowed down: late median over early median.
    pub fn ratio(&self) -> f64 {
        self.late_median_ms / self.early_median_ms
    }
}

/// Tuning knobs for [`diagnose_trends`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendConfig {
    /// Subjects with fewer TCP samples than this in *either* half are
    /// skipped (no stable per-half median).
    pub min_samples: u64,
    /// A subject whose late median exceeds `early × degraded_ratio` has
    /// worsened.
    pub degraded_ratio: f64,
    /// An app only counts as regressed if it worsened this much *more* than
    /// the all-apps baseline did — apps riding a degrading network are the
    /// network's fault, not theirs.
    pub relative_margin: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        // Half again slower is a visible regression; the margin keeps an app
        // from being blamed for a network that dragged everyone down.
        Self { min_samples: 20, degraded_ratio: 1.5, relative_margin: 1.25 }
    }
}

/// Splits the observed epoch span in half and merges each half's live
/// epochs into one aggregate. The windowed store is bit-identical for any
/// shard count (and any merge order), so the halves — and every verdict
/// derived from them — are too.
fn split_halves(windows: &WindowedAggregateStore) -> (AggregateStore, AggregateStore) {
    let epochs = windows.live_epochs();
    let mut early = AggregateStore::new();
    let mut late = AggregateStore::new();
    let (Some(&first), Some(&last)) = (epochs.first(), epochs.last()) else {
        return (early, late);
    };
    // Epochs strictly past the span midpoint are "late"; a one-epoch span
    // has no late half and diagnoses everything stable.
    let mid = first + (last - first) / 2;
    for &epoch in &epochs {
        let store = windows.epoch_store(epoch).expect("live epoch has a store");
        if epoch > mid {
            late.merge_from(store);
        } else {
            early.merge_from(store);
        }
    }
    (early, late)
}

/// Classifies every ISP and app by comparing its median RTT over the late
/// half of the run's epochs against the early half. ISPs whose baseline
/// worsened are [`TrendVerdict::IspDegraded`]; apps that worsened *more than
/// their baseline did* are [`TrendVerdict::AppRegressed`]; everything else
/// is stable. Results are sorted worst-first by slow-down ratio.
///
/// Only the window's live epochs participate: the folded tail has no epoch
/// resolution. Size the epoch window to cover the span being diagnosed.
pub fn diagnose_trends(
    windows: &WindowedAggregateStore,
    config: TrendConfig,
) -> Vec<TrendDiagnosis> {
    let (early, late) = split_halves(windows);
    let tcp_isp = |k: &mop_measure::AggregateKey| k.kind == MeasurementKind::Tcp && !k.isp.is_empty();
    let tcp_app = |k: &mop_measure::AggregateKey| k.kind == MeasurementKind::Tcp && !k.app.is_empty();
    let early_isps = early.group_by(|k| k.isp.clone(), tcp_isp);
    let late_isps = late.group_by(|k| k.isp.clone(), tcp_isp);
    let early_apps = early.group_by(|k| k.app.clone(), tcp_app);
    let late_apps = late.group_by(|k| k.app.clone(), tcp_app);
    let baseline_ratio = {
        let early_all = early.sketch_where(tcp_app);
        let late_all = late.sketch_where(tcp_app);
        match (early_all.median(), late_all.median()) {
            (Some(e), Some(l)) if e > 0.0 => l / e,
            _ => 1.0,
        }
    };

    let mut out = Vec::new();
    for (isp, early_sketch) in &early_isps {
        let Some(late_sketch) = late_isps.get(isp) else { continue };
        if early_sketch.count() < config.min_samples || late_sketch.count() < config.min_samples {
            continue;
        }
        let (Some(early_med), Some(late_med)) = (early_sketch.median(), late_sketch.median())
        else {
            continue;
        };
        let verdict = if late_med > early_med * config.degraded_ratio {
            TrendVerdict::IspDegraded
        } else {
            TrendVerdict::Stable
        };
        out.push(TrendDiagnosis {
            subject: isp.clone(),
            samples: early_sketch.count() + late_sketch.count(),
            early_median_ms: early_med,
            late_median_ms: late_med,
            verdict,
        });
    }
    for (app, early_sketch) in &early_apps {
        let Some(late_sketch) = late_apps.get(app) else { continue };
        if early_sketch.count() < config.min_samples || late_sketch.count() < config.min_samples {
            continue;
        }
        let (Some(early_med), Some(late_med)) = (early_sketch.median(), late_sketch.median())
        else {
            continue;
        };
        let ratio = if early_med > 0.0 { late_med / early_med } else { 1.0 };
        let verdict = if ratio > config.degraded_ratio
            && ratio > baseline_ratio * config.relative_margin
        {
            TrendVerdict::AppRegressed
        } else {
            TrendVerdict::Stable
        };
        out.push(TrendDiagnosis {
            subject: app.clone(),
            samples: early_sketch.count() + late_sketch.count(),
            early_median_ms: early_med,
            late_median_ms: late_med,
            verdict,
        });
    }
    out.sort_by(|a, b| {
        let severity = |d: &TrendDiagnosis| match d.verdict {
            TrendVerdict::IspDegraded | TrendVerdict::AppRegressed => 0,
            TrendVerdict::Stable => 1,
        };
        severity(a)
            .cmp(&severity(b))
            .then(b.ratio().total_cmp(&a.ratio()))
            .then(a.subject.cmp(&b.subject))
    });
    out
}

/// Every live verdict in one bundle: the app-slow-vs-network-slow
/// classification over everything the window has seen (tail included) plus
/// the early-vs-late trend diagnosis over the live epochs. This is the
/// payload of the control plane's `diagnose.query`.
#[derive(Debug, Clone)]
pub struct LiveDiagnosis {
    /// Per-app verdicts over the merged window (tail + live epochs).
    pub apps: Vec<AppDiagnosis>,
    /// Per-subject trend verdicts over the live epochs.
    pub trends: Vec<TrendDiagnosis>,
}

/// Diagnoses a windowed store in place: apps against their crowd baseline
/// over the full merged view, and trends across the live epoch span. Safe on
/// degenerate stores — empty, single-epoch, or fully folded windows simply
/// produce fewer (or no) verdicts.
pub fn diagnose_live(
    windows: &WindowedAggregateStore,
    apps: DiagnosisConfig,
    trends: TrendConfig,
) -> LiveDiagnosis {
    LiveDiagnosis {
        apps: diagnose_apps(&windows.merged(), apps),
        trends: diagnose_trends(windows, trends),
    }
}

/// One epoch of a run's time series, ready to render.
#[derive(Debug, Clone)]
pub struct EpochPoint {
    /// The epoch index (sample timestamp divided by the epoch width).
    pub epoch: u64,
    /// Measurements in the epoch.
    pub samples: u64,
    /// Median TCP RTT, in ms (`None` when the epoch has no TCP samples).
    pub median_ms: Option<f64>,
    /// 95th-percentile TCP RTT, in ms.
    pub p95_ms: Option<f64>,
}

/// The run's live epochs as a TCP-RTT time series, oldest first — the rows
/// of the epoch table.
pub fn epoch_series(windows: &WindowedAggregateStore) -> Vec<EpochPoint> {
    windows
        .live_epochs()
        .into_iter()
        .map(|epoch| {
            let store = windows.epoch_store(epoch).expect("live epoch has a store");
            let sketch = store.sketch_where(|k| k.kind == MeasurementKind::Tcp);
            EpochPoint {
                epoch,
                samples: store.sample_count(),
                median_ms: sketch.median(),
                p95_ms: sketch.quantile(0.95),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_measure::{NetKind, RttRecord};

    /// A small deployment: two healthy apps, one with a slow server, all on
    /// a fast network — plus one app on a slow network.
    fn aggregates() -> AggregateStore {
        let mut agg = AggregateStore::new();
        for i in 0..200u32 {
            let jitter = f64::from(i % 17);
            agg.observe(&RttRecord::tcp(40.0 + jitter, 1, "com.fast.a", NetKind::Wifi));
            agg.observe(&RttRecord::tcp(48.0 + jitter, 1, "com.fast.b", NetKind::Wifi));
            // Same network, far-away servers (the WhatsApp shape).
            agg.observe(&RttRecord::tcp(260.0 + jitter, 2, "com.slowserver", NetKind::Wifi));
            // Slow network, server no slower than its peers (the Jio shape).
            agg.observe(&RttRecord::tcp(290.0 + jitter, 3, "com.on3g", NetKind::Umts3g));
        }
        agg
    }

    #[test]
    fn classifies_app_slow_vs_network_slow() {
        let diagnoses = diagnose_apps(&aggregates(), DiagnosisConfig::default());
        let verdict_of = |app: &str| {
            diagnoses.iter().find(|d| d.app == app).map(|d| d.verdict).unwrap()
        };
        assert_eq!(verdict_of("com.fast.a"), Verdict::Healthy);
        assert_eq!(verdict_of("com.fast.b"), Verdict::Healthy);
        assert_eq!(verdict_of("com.slowserver"), Verdict::AppSlow);
        assert_eq!(verdict_of("com.on3g"), Verdict::NetworkSlow);
        // Worst first: the app-slow app leads the report.
        assert_eq!(diagnoses[0].app, "com.slowserver");
        assert!(diagnoses[0].app_median_ms > diagnoses[0].baseline_median_ms * 2.0);
    }

    #[test]
    fn small_apps_are_skipped_and_labels_are_stable() {
        let mut agg = aggregates();
        for _ in 0..5 {
            agg.observe(&RttRecord::tcp(900.0, 4, "com.tiny", NetKind::Wifi));
        }
        let diagnoses = diagnose_apps(&agg, DiagnosisConfig::default());
        assert!(diagnoses.iter().all(|d| d.app != "com.tiny"), "below min_samples");
        assert_eq!(Verdict::AppSlow.label(), "app-slow");
        assert_eq!(Verdict::NetworkSlow.label(), "network-slow");
        assert_eq!(Verdict::Healthy.label(), "healthy");
    }

    #[test]
    fn isp_ranking_orders_by_median() {
        let mut agg = AggregateStore::new();
        for i in 0..100u32 {
            let jitter = f64::from(i % 13);
            agg.observe(
                &RttRecord::dns(20.0 + jitter, 1, NetKind::Lte).with_isp("FastTel"),
            );
            agg.observe(
                &RttRecord::dns(95.0 + jitter, 2, NetKind::Lte).with_isp("SlowTel"),
            );
        }
        let ranks = rank_isps(&agg, MeasurementKind::Dns, 10);
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].isp, "FastTel");
        assert_eq!(ranks[1].isp, "SlowTel");
        assert!(ranks[0].median_ms < ranks[1].median_ms);
        assert!(ranks[0].p95_ms >= ranks[0].median_ms);
        assert_eq!(ranks[0].samples, 100);
        // Nothing ranks for a kind with no samples above the floor.
        assert!(rank_isps(&agg, MeasurementKind::Tcp, 10).is_empty());
    }

    /// Stamps `n` TCP samples for one (app, isp) into the epoch containing
    /// second `at_s`, with a small deterministic jitter.
    fn stamp(
        windows: &mut WindowedAggregateStore,
        at_s: u64,
        app: &str,
        isp: &str,
        device: u32,
        rtt_ms: f64,
        n: usize,
    ) {
        for i in 0..n {
            windows.observe_parts(
                at_s * 1_000_000_000 + i as u64 * 1_000,
                MeasurementKind::Tcp,
                NetKind::Lte,
                app,
                "example.com",
                isp,
                device + i as u32 % 5,
                "",
                rtt_ms + f64::from(i as u32 % 7),
            );
        }
    }

    /// A mid-day ISP degradation: every app on the operator slows down
    /// together in the late epochs.
    fn isp_degradation_day() -> WindowedAggregateStore {
        let mut windows = WindowedAggregateStore::new(1_000_000_000, 16);
        for hour in 0..8u64 {
            let rtt = if hour >= 4 { 160.0 } else { 45.0 };
            stamp(&mut windows, hour, "com.app.alpha", "SimTel LTE", 10, rtt, 30);
            stamp(&mut windows, hour, "com.app.beta", "SimTel LTE", 20, rtt + 5.0, 30);
        }
        windows
    }

    /// A mid-day app regression: one minority app slows down while the
    /// majority app — and therefore the baseline — stays put.
    fn app_regression_day() -> WindowedAggregateStore {
        let mut windows = WindowedAggregateStore::new(1_000_000_000, 16);
        for hour in 0..8u64 {
            stamp(&mut windows, hour, "com.app.steady", "SimTel LTE", 10, 45.0, 90);
            let rtt = if hour >= 4 { 200.0 } else { 50.0 };
            stamp(&mut windows, hour, "com.app.regressed", "SimTel LTE", 20, rtt, 30);
        }
        windows
    }

    fn verdict_of(diagnoses: &[TrendDiagnosis], subject: &str) -> TrendVerdict {
        diagnoses.iter().find(|d| d.subject == subject).expect(subject).verdict
    }

    #[test]
    fn trend_diagnosis_flags_a_degraded_isp_not_its_apps() {
        let diagnoses = diagnose_trends(&isp_degradation_day(), TrendConfig::default());
        assert_eq!(verdict_of(&diagnoses, "SimTel LTE"), TrendVerdict::IspDegraded);
        // The apps slowed down exactly as much as the crowd: the network's
        // fault, not theirs.
        assert_eq!(verdict_of(&diagnoses, "com.app.alpha"), TrendVerdict::Stable);
        assert_eq!(verdict_of(&diagnoses, "com.app.beta"), TrendVerdict::Stable);
        // Worst first.
        assert_eq!(diagnoses[0].subject, "SimTel LTE");
        assert!(diagnoses[0].ratio() > 2.0);
        assert_eq!(TrendVerdict::IspDegraded.label(), "isp-degraded");
    }

    #[test]
    fn trend_diagnosis_flags_a_regressed_app_not_its_isp() {
        let diagnoses = diagnose_trends(&app_regression_day(), TrendConfig::default());
        assert_eq!(verdict_of(&diagnoses, "com.app.regressed"), TrendVerdict::AppRegressed);
        assert_eq!(verdict_of(&diagnoses, "com.app.steady"), TrendVerdict::Stable);
        // The majority app keeps the operator's baseline flat.
        assert_eq!(verdict_of(&diagnoses, "SimTel LTE"), TrendVerdict::Stable);
        assert_eq!(diagnoses[0].subject, "com.app.regressed");
    }

    #[test]
    fn trend_diagnosis_is_identical_for_any_shard_partition() {
        // Rebuild the degradation day as three per-shard windows (samples
        // partitioned by device) and merge them in two different orders: the
        // diagnosis must be bit-identical to the unpartitioned store's.
        let whole = isp_degradation_day();
        let build_shard = |keep: u32| {
            let mut windows = WindowedAggregateStore::new(1_000_000_000, 16);
            for hour in 0..8u64 {
                let rtt = if hour >= 4 { 160.0 } else { 45.0 };
                if keep == 0 {
                    stamp(&mut windows, hour, "com.app.alpha", "SimTel LTE", 10, rtt, 30);
                } else {
                    stamp(&mut windows, hour, "com.app.beta", "SimTel LTE", 20, rtt + 5.0, 30);
                }
            }
            windows
        };
        let (a, b) = (build_shard(0), build_shard(1));
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.digest(), whole.digest(), "partitioned merge == direct observation");
        assert_eq!(ba.digest(), whole.digest(), "merge order is irrelevant");
        for merged in [&ab, &ba] {
            let diagnoses = diagnose_trends(merged, TrendConfig::default());
            let reference = diagnose_trends(&whole, TrendConfig::default());
            assert_eq!(diagnoses.len(), reference.len());
            for (d, r) in diagnoses.iter().zip(&reference) {
                assert_eq!(d.subject, r.subject);
                assert_eq!(d.verdict, r.verdict);
                assert_eq!(d.early_median_ms.to_bits(), r.early_median_ms.to_bits());
                assert_eq!(d.late_median_ms.to_bits(), r.late_median_ms.to_bits());
            }
        }
    }

    #[test]
    fn epoch_series_walks_the_live_epochs_in_order() {
        let windows = isp_degradation_day();
        let series = epoch_series(&windows);
        assert_eq!(series.len(), 8);
        assert!(series.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert!(series.iter().all(|p| p.samples == 60));
        let early = series[0].median_ms.unwrap();
        let late = series[7].median_ms.unwrap();
        assert!(late > early * 2.0, "mid-day degradation visible per epoch: {early} → {late}");
        // Render smoke: a row per epoch plus title, header, rule.
        let table = crate::render::render_epoch_table("day", &windows);
        assert_eq!(table.lines().count(), 3 + 8);
        assert!(table.contains("tcp p50"));
    }

    #[test]
    fn trend_diagnosis_of_an_empty_window_is_empty() {
        let windows = WindowedAggregateStore::new(1_000_000_000, 16);
        assert!(diagnose_trends(&windows, TrendConfig::default()).is_empty());
        let live = diagnose_live(&windows, DiagnosisConfig::default(), TrendConfig::default());
        assert!(live.apps.is_empty());
        assert!(live.trends.is_empty());
    }

    #[test]
    fn trend_diagnosis_of_a_single_epoch_window_is_all_stable() {
        // One live epoch: the span has no late half, so nothing can have a
        // late median above min_samples and nothing is flagged.
        let mut windows = WindowedAggregateStore::new(1_000_000_000, 16);
        stamp(&mut windows, 0, "com.app.alpha", "SimTel LTE", 10, 45.0, 60);
        let diagnoses = diagnose_trends(&windows, TrendConfig::default());
        assert!(
            diagnoses.is_empty(),
            "a one-epoch span has no late half to diagnose: {diagnoses:?}"
        );
        // The merged-view app diagnosis still works on the same store.
        let live = diagnose_live(&windows, DiagnosisConfig::default(), TrendConfig::default());
        assert_eq!(live.apps.len(), 1);
        assert_eq!(live.apps[0].verdict, Verdict::Healthy);
    }

    #[test]
    fn trend_diagnosis_with_all_flows_on_one_app_blames_the_network() {
        // A single app degrading IS the baseline degrading: the ISP is
        // flagged, the app is not (its ratio cannot exceed the baseline's by
        // the relative margin when it is the whole crowd).
        let mut windows = WindowedAggregateStore::new(1_000_000_000, 16);
        for hour in 0..8u64 {
            let rtt = if hour >= 4 { 180.0 } else { 45.0 };
            stamp(&mut windows, hour, "com.app.only", "SimTel LTE", 10, rtt, 40);
        }
        let diagnoses = diagnose_trends(&windows, TrendConfig::default());
        assert_eq!(verdict_of(&diagnoses, "SimTel LTE"), TrendVerdict::IspDegraded);
        assert_eq!(verdict_of(&diagnoses, "com.app.only"), TrendVerdict::Stable);
    }

    #[test]
    fn trend_diagnosis_of_a_tail_only_store_is_empty_but_apps_still_diagnose() {
        // A store whose samples have all folded into the tail (no live ring
        // entries) has no epoch resolution: trends must come back empty
        // without panicking, while the merged view still carries every
        // sample for the app diagnosis.
        let mut windows = isp_degradation_day();
        let json = windows.to_json();
        // Rebuild the store with the live epochs stripped: everything that
        // was live is folded, max_epoch untouched.
        let folded_only = mop_json::json!({
            "width_ns": json["width_ns"].as_i64().unwrap(),
            "window": json["window"].as_i64().unwrap(),
            "max_epoch": json["max_epoch"].as_i64().unwrap(),
            "folded": windows.merged().to_json(),
            "epochs": Vec::<mop_json::Value>::new(),
        });
        windows = WindowedAggregateStore::from_json(&folded_only).unwrap();
        assert!(windows.live_epochs().is_empty());
        assert_eq!(windows.folded().sample_count(), windows.sample_count());

        assert!(diagnose_trends(&windows, TrendConfig::default()).is_empty());
        let live = diagnose_live(&windows, DiagnosisConfig::default(), TrendConfig::default());
        assert!(live.trends.is_empty());
        assert!(!live.apps.is_empty(), "the tail still feeds the merged app diagnosis");
    }

    #[test]
    fn app_sketch_drills_down() {
        let agg = aggregates();
        let sketch = app_sketch(&agg, "com.slowserver");
        assert_eq!(sketch.count(), 200);
        assert!(sketch.median().unwrap() > 200.0);
        assert!(app_sketch(&agg, "com.absent").is_empty());
    }
}
