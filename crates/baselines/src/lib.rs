//! Baseline measurement tools the paper compares MopEye against.
//!
//! * [`tcpdump`] — the ground-truth reference: RTTs read directly off the
//!   wire tap, the role root-privileged tcpdump plays in §4.1.1,
//! * [`mobiperf`] — an active HTTP-ping measurement in the style of MobiPerf
//!   v3.4.0 / Mobilyzer, with the three inaccuracy sources the paper
//!   identifies (coarse timestamps, event-loop timing, timing placed away
//!   from the socket call),
//! * [`speedtest`] — an Ookla-style bulk throughput measurement used as the
//!   reference tool for Table 3,
//! * [`haystack`] — helpers for running the relay engine with Haystack's
//!   design choices (adaptive-sleep reads, cache mapping, per-socket
//!   protect, content inspection) for Tables 3 and 4.

pub mod haystack;
pub mod mobiperf;
pub mod speedtest;
pub mod tcpdump;

pub use haystack::haystack_engine;
pub use mobiperf::{MobiPerf, PingRun};
pub use speedtest::{SpeedTest, ThroughputReport};
pub use tcpdump::TcpdumpReference;
