//! Helpers for running the relay with Haystack's design choices.
//!
//! Haystack (Razaghpanah et al.) uses the same `VpnService` interception
//! point as MopEye but makes different engineering choices — adaptive-sleep
//! tunnel reads, cache-based app mapping, per-socket `protect()`, and deep
//! content inspection of the relayed traffic. Tables 3 and 4 compare the two
//! systems; these helpers build an engine with Haystack's choices so the
//! comparison runs on identical substrates.

use mop_simnet::SimNetwork;
use mopeye_core::{MopEyeConfig, MopEyeEngine};

/// Builds a relay engine configured like Haystack.
pub fn haystack_engine(net: SimNetwork) -> MopEyeEngine {
    MopEyeEngine::new(MopEyeConfig::haystack_like(), net)
}

/// Builds a relay engine configured like MopEye (convenience mirror of
/// [`haystack_engine`] so comparison code reads symmetrically).
pub fn mopeye_engine(net: SimNetwork) -> MopEyeEngine {
    MopEyeEngine::new(MopEyeConfig::mopeye(), net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;
    use mop_simnet::SimDuration;
    use mop_tun::{Workload, WorkloadKind};

    fn net() -> SimNetwork {
        SimNetwork::builder().seed(8).with_table2_destinations().build()
    }

    fn workload() -> Workload {
        Workload::new(
            WorkloadKind::Messaging,
            10_200,
            "com.whatsapp",
            vec![(Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into())],
            SimDuration::from_secs(20),
            15,
        )
    }

    #[test]
    fn both_engines_relay_the_same_workload() {
        let mut hay = haystack_engine(net());
        let mut mop = mopeye_engine(net());
        let hay_report = hay.run(&[workload()]);
        let mop_report = mop.run(&[workload()]);
        assert_eq!(hay_report.relay.syns, mop_report.relay.syns);
        assert_eq!(hay_report.relay.connects_ok, mop_report.relay.connects_ok);
        // Haystack's configuration inspects content, so it burns extra CPU.
        assert!(hay_report.ledger.busy_of("Inspection") > SimDuration::ZERO);
        assert_eq!(mop_report.ledger.busy_of("Inspection"), SimDuration::ZERO);
        // And it keeps far more buffer memory resident.
        assert!(hay_report.ledger.memory_peak_bytes() > 100 * 1024 * 1024);
        assert!(mop_report.ledger.memory_peak_bytes() < 40 * 1024 * 1024);
    }

    #[test]
    fn configurations_differ_as_documented() {
        assert_ne!(MopEyeConfig::haystack_like(), MopEyeConfig::mopeye());
        let hay = haystack_engine(net());
        assert!(hay.config().content_inspection);
    }
}
