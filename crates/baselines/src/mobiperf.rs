//! A MobiPerf-style active HTTP ping.
//!
//! MobiPerf's HTTP ping also derives RTT from the SYN ↔ SYN/ACK exchange, but
//! §4.1.1 identifies three reasons its numbers deviate from tcpdump by
//! 12–79 ms: it times a higher-level call rather than the socket call itself
//! (so queueing and task dispatch are included), it reads a coarse
//! millisecond clock, and the timing functions are not placed immediately
//! around the socket operation. This module reproduces that measurement
//! procedure over the simulated network.

use mop_packet::{Endpoint, FourTuple};
use mop_simnet::{CostModel, SimDuration, SimNetwork, SimRng, SimTime};

/// The result of one ping run against a destination.
#[derive(Debug, Clone, PartialEq)]
pub struct PingRun {
    /// The destination measured.
    pub dst: Endpoint,
    /// The RTTs MobiPerf reports, in milliseconds (one per connect).
    pub measured_ms: Vec<f64>,
    /// The tcpdump-reference RTTs for the same connects.
    pub tcpdump_ms: Vec<f64>,
}

impl PingRun {
    /// The mean measured RTT.
    pub fn mean_measured(&self) -> f64 {
        mean(&self.measured_ms)
    }

    /// The mean reference RTT.
    pub fn mean_tcpdump(&self) -> f64 {
        mean(&self.tcpdump_ms)
    }

    /// The deviation of the tool from the reference (the δ column of Table 2).
    pub fn delta_ms(&self) -> f64 {
        (self.mean_measured() - self.mean_tcpdump()).abs()
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The MobiPerf-style measurement tool.
#[derive(Debug)]
pub struct MobiPerf {
    cost: CostModel,
    rng: SimRng,
    next_port: u16,
}

impl MobiPerf {
    /// Creates the tool with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self { cost: CostModel::android_phone(), rng: SimRng::seed_from_u64(seed), next_port: 52_000 }
    }

    /// Runs `count` HTTP pings against `dst` (given as a raw IP endpoint, as
    /// the paper does to keep DNS out of the comparison).
    pub fn ping(&mut self, net: &mut SimNetwork, dst: Endpoint, count: usize) -> PingRun {
        let mut measured_ms = Vec::with_capacity(count);
        let mut tcpdump_ms = Vec::with_capacity(count);
        let mut at = SimTime::from_millis(50);
        for _ in 0..count {
            let src = Endpoint::v4(10, 0, 0, 2, self.next_port);
            self.next_port += 1;
            let flow = FourTuple::new(src, dst);
            // MobiPerf's measurement task is dispatched through the Mobilyzer
            // task queue before the socket call happens; the pre-timestamp is
            // taken before that dispatch.
            let pre = self.coarse(at);
            let dispatch_before = self.cost.sample_dispatch_delay(&mut self.rng)
                + SimDuration::from_millis_f64(self.rng.uniform(1.0, 6.0));
            let outcome = net.connect(flow, at + dispatch_before);
            // The post-timestamp is taken after the completion callback has
            // worked its way back through the event loop.
            let dispatch_after = self.cost.sample_dispatch_delay(&mut self.rng)
                + SimDuration::from_millis_f64(self.rng.uniform(1.0, 6.0));
            let post = self.coarse(outcome.completed_at + dispatch_after);
            measured_ms.push((post - pre).as_millis_f64());
            if let Some(rtt) = net.tap().handshake_rtt(flow) {
                tcpdump_ms.push(rtt.as_millis_f64());
            }
            at = outcome.completed_at + SimDuration::from_millis(500);
        }
        PingRun { dst, measured_ms, tcpdump_ms }
    }

    fn coarse(&self, t: SimTime) -> SimTime {
        self.cost.coarse_timestamp(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> SimNetwork {
        SimNetwork::builder().seed(5).with_table2_destinations().build()
    }

    #[test]
    fn mobiperf_overestimates_rtt_by_milliseconds() {
        let mut net = network();
        let mut tool = MobiPerf::new(9);
        let run = tool.ping(&mut net, Endpoint::v4(216, 58, 221, 132, 443), 10);
        assert_eq!(run.measured_ms.len(), 10);
        assert_eq!(run.tcpdump_ms.len(), 10);
        // The paper observes 12–24 ms deviation for Google-scale RTTs; allow a
        // generous band around it, but it must be clearly worse than 1 ms.
        let delta = run.delta_ms();
        assert!(delta > 4.0, "delta {delta}");
        assert!(delta < 60.0, "delta {delta}");
        assert!(run.mean_measured() > run.mean_tcpdump());
    }

    #[test]
    fn deviation_is_absolute_not_relative() {
        let mut net = network();
        let mut tool = MobiPerf::new(9);
        let google = tool.ping(&mut net, Endpoint::v4(216, 58, 221, 132, 443), 8);
        let dropbox = tool.ping(&mut net, Endpoint::v4(108, 160, 166, 126, 443), 8);
        // Dropbox RTTs are two orders of magnitude larger, but the added error
        // stays in the same tens-of-milliseconds band.
        assert!(dropbox.mean_tcpdump() > google.mean_tcpdump() * 5.0);
        assert!(dropbox.delta_ms() < 80.0, "dropbox delta {}", dropbox.delta_ms());
        assert!(dropbox.delta_ms() > 4.0);
    }

    #[test]
    fn empty_run_handles_gracefully() {
        let run = PingRun { dst: Endpoint::v4(1, 1, 1, 1, 80), measured_ms: vec![], tcpdump_ms: vec![] };
        assert_eq!(run.mean_measured(), 0.0);
        assert_eq!(run.delta_ms(), 0.0);
    }
}
