//! An Ookla-style throughput measurement and the relay pipeline model used
//! for Table 3.
//!
//! The speed test transfers a large body over the 25 Mbps dedicated WiFi
//! network of §4.1.2, with and without a VPN relay in the path. The relay's
//! impact on throughput comes from its per-packet service time: retrieving
//! the packet from the TUN device, processing it, optionally inspecting its
//! content (Haystack), and writing it onwards. When that service time exceeds
//! the link's per-packet serialisation time, the relay becomes the
//! bottleneck — which is exactly what happens to Haystack's upload path.

use mop_packet::{Endpoint, FourTuple};
use mop_simnet::{CostModel, SimNetwork, SimRng, SimTime};
use mop_tun::ReadStrategy;
use mopeye_core::MopEyeConfig;

/// Segment size used by the transfer.
const SEGMENT: usize = 1460;

/// Download and upload throughput of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Download throughput in Mbit/s.
    pub download_mbps: f64,
    /// Upload throughput in Mbit/s.
    pub upload_mbps: f64,
}

impl ThroughputReport {
    /// The throughput loss relative to a baseline (the ∆ columns of Table 3).
    pub fn delta_from(&self, baseline: &ThroughputReport) -> (f64, f64) {
        (
            baseline.download_mbps - self.download_mbps,
            baseline.upload_mbps - self.upload_mbps,
        )
    }
}

/// Per-packet relay service times derived from an engine configuration.
#[derive(Debug, Clone, Copy)]
struct RelayServiceModel {
    /// Mean per-packet service time on the download path, in ms.
    down_ms: f64,
    /// Mean per-packet service time on the upload path, in ms.
    up_ms: f64,
}

impl RelayServiceModel {
    fn from_config(config: &MopEyeConfig, cost: &CostModel) -> Self {
        // Packet retrieval: a blocking read costs one read() call; polling
        // strategies add (on average) a fraction of their sleep period while
        // a burst is in flight.
        let read_ms = match config.read_strategy {
            ReadStrategy::Blocking => cost.tun_read.nominal_ms(),
            ReadStrategy::AdaptiveSleep { min, .. } => {
                cost.tun_read.nominal_ms() + min.as_millis_f64() * 0.25
            }
            ReadStrategy::FixedSleep { period } => {
                cost.tun_read.nominal_ms() + period.as_millis_f64() * 0.05
            }
        };
        let process_ms = 0.03;
        let write_ms = match config.write_scheme {
            mopeye_core::WriteScheme::Queue => cost.tun_write_base.nominal_ms(),
            // Direct writes share the tunnel with other writers and pay the
            // occasional contended write.
            mopeye_core::WriteScheme::Direct => {
                cost.tun_write_base.nominal_ms() + cost.tun_write_contended_extra.nominal_ms() * 0.05
            }
        };
        let inspect_ms = if config.content_inspection {
            cost.content_inspection_per_kb.nominal_ms() * (SEGMENT as f64 / 1024.0)
        } else {
            0.0
        };
        Self {
            // Haystack inspects outbound (privacy-sensitive) traffic in full;
            // the inbound path only pays a light classification cost.
            down_ms: read_ms + process_ms + write_ms + inspect_ms * 0.05,
            up_ms: read_ms + process_ms + write_ms + inspect_ms,
        }
    }
}

/// The speed-test harness.
#[derive(Debug)]
pub struct SpeedTest {
    seed: u64,
    transfer_bytes: usize,
}

impl Default for SpeedTest {
    fn default() -> Self {
        Self::new(11, 24 * 1024 * 1024)
    }
}

impl SpeedTest {
    /// Creates a harness with an explicit seed and transfer size.
    pub fn new(seed: u64, transfer_bytes: usize) -> Self {
        Self { seed, transfer_bytes }
    }

    fn network(&self) -> SimNetwork {
        SimNetwork::builder().seed(self.seed).with_table2_destinations().build()
    }

    fn flow(port: u16) -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, port), Endpoint::v4(216, 58, 221, 132, 443))
    }

    /// Throughput without any relay in the path.
    pub fn baseline(&self) -> ThroughputReport {
        self.run(None)
    }

    /// Throughput with a relay configured as `config` in the path.
    pub fn with_relay(&self, config: &MopEyeConfig) -> ThroughputReport {
        let cost = CostModel::android_phone();
        self.run(Some(RelayServiceModel::from_config(config, &cost)))
    }

    fn run(&self, relay: Option<RelayServiceModel>) -> ThroughputReport {
        let mut net = self.network();
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x5eed);
        let start = SimTime::from_millis(10);

        // Download: chunks arrive on the access link; the relay (if any)
        // forwards each after its service time, one at a time.
        let chunks = net.bulk_download(Self::flow(50_000), self.transfer_bytes, start);
        let download_done = match relay {
            None => chunks.last().map(|(t, _)| *t).unwrap_or(start),
            Some(model) => {
                let mut ready = start;
                for (arrival, _) in &chunks {
                    let service = sample_service(model.down_ms, &mut rng);
                    ready = (*arrival).max(ready) + service;
                }
                ready
            }
        };
        let download_secs = (download_done - start).as_secs_f64();
        let download_mbps = self.transfer_bytes as f64 * 8.0 / 1_000_000.0 / download_secs.max(1e-9);

        // Upload: the app can produce packets as fast as it likes; each must
        // pass through the relay (service time) and then serialise onto the
        // uplink, whichever is slower.
        let packets = self.transfer_bytes / SEGMENT;
        let mut relay_free = start;
        let mut departures = Vec::with_capacity(packets);
        for i in 0..packets {
            let produced = start;
            let _ = i;
            let forwarded = match relay {
                None => produced,
                Some(model) => {
                    let service = sample_service(model.up_ms, &mut rng);
                    relay_free = relay_free.max(produced) + service;
                    relay_free
                }
            };
            departures.push(forwarded);
        }
        // Serialise onto the uplink in forwarding order.
        let mut upload_done = start;
        {
            let mut link = net;
            let mut cursor = start;
            for forwarded in departures {
                let sched = link.bulk_upload(Self::flow(50_001), SEGMENT, forwarded.max(cursor));
                cursor = sched.last().map(|(t, _)| *t).unwrap_or(cursor);
                upload_done = cursor;
            }
        }
        let upload_secs = (upload_done - start).as_secs_f64();
        let upload_mbps = self.transfer_bytes as f64 * 8.0 / 1_000_000.0 / upload_secs.max(1e-9);
        ThroughputReport { download_mbps, upload_mbps }
    }
}

fn sample_service(mean_ms: f64, rng: &mut SimRng) -> mop_simnet::SimDuration {
    mop_simnet::SimDuration::from_millis_f64(rng.uniform(mean_ms * 0.7, mean_ms * 1.3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> SpeedTest {
        // A smaller transfer keeps the unit test fast; the bench uses more.
        SpeedTest::new(3, 6 * 1024 * 1024)
    }

    #[test]
    fn baseline_saturates_the_25mbps_link() {
        let report = harness().baseline();
        assert!(report.download_mbps > 20.0, "download {}", report.download_mbps);
        assert!(report.download_mbps < 26.0, "download {}", report.download_mbps);
        assert!(report.upload_mbps > 21.0, "upload {}", report.upload_mbps);
        assert!(report.upload_mbps < 27.0, "upload {}", report.upload_mbps);
    }

    #[test]
    fn mopeye_relay_costs_less_than_one_mbps() {
        let harness = harness();
        let baseline = harness.baseline();
        let mopeye = harness.with_relay(&MopEyeConfig::mopeye());
        let (d_down, d_up) = mopeye.delta_from(&baseline);
        assert!(d_down < 1.5, "download delta {d_down}");
        assert!(d_up < 1.5, "upload delta {d_up}");
        assert!(d_down > -0.5 && d_up > -0.5, "relay cannot speed the link up");
    }

    #[test]
    fn haystack_relay_hurts_upload_far_more_than_mopeye() {
        let harness = harness();
        let baseline = harness.baseline();
        let mopeye = harness.with_relay(&MopEyeConfig::mopeye());
        let haystack = harness.with_relay(&MopEyeConfig::haystack_like());
        let (hay_down, hay_up) = haystack.delta_from(&baseline);
        let (mop_down, mop_up) = mopeye.delta_from(&baseline);
        // Download: a visible but moderate hit (paper: ~4.3 Mbps vs 0.46).
        assert!(hay_down > 2.0, "haystack download delta {hay_down}");
        assert!(hay_down > mop_down * 3.0);
        // Upload: collapses (paper: 6.79 Mbps remaining of 25.97).
        assert!(haystack.upload_mbps < 12.0, "haystack upload {}", haystack.upload_mbps);
        assert!(hay_up > 10.0, "haystack upload delta {hay_up}");
        assert!(hay_up > mop_up * 5.0);
    }
}
