//! The tcpdump-style reference measurement.
//!
//! In the paper, tcpdump (running with root privilege) captures the SYN and
//! SYN/ACK at the interface and provides the reference RTTs of Table 2. The
//! simulator's wire tap records the same events; this module packages them
//! per destination.

use std::collections::BTreeMap;
use std::net::IpAddr;

use mop_simnet::SimNetwork;

/// Reference RTTs extracted from a wire-tap capture, grouped by destination.
#[derive(Debug, Default, Clone)]
pub struct TcpdumpReference {
    per_destination: BTreeMap<IpAddr, Vec<f64>>,
}

impl TcpdumpReference {
    /// Extracts handshake RTTs from the network's current capture.
    pub fn from_network(net: &SimNetwork) -> Self {
        let mut per_destination: BTreeMap<IpAddr, Vec<f64>> = BTreeMap::new();
        for (flow, rtt) in net.tap().all_handshake_rtts() {
            per_destination.entry(flow.dst.addr).or_default().push(rtt.as_millis_f64());
        }
        Self { per_destination }
    }

    /// The RTT samples captured towards `dst`, in milliseconds.
    pub fn rtts_to(&self, dst: IpAddr) -> &[f64] {
        self.per_destination.get(&dst).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The mean RTT towards `dst`, if any sample was captured.
    pub fn mean_to(&self, dst: IpAddr) -> Option<f64> {
        let rtts = self.rtts_to(dst);
        if rtts.is_empty() {
            return None;
        }
        Some(rtts.iter().sum::<f64>() / rtts.len() as f64)
    }

    /// Destinations seen in the capture.
    pub fn destinations(&self) -> Vec<IpAddr> {
        self.per_destination.keys().copied().collect()
    }

    /// Total number of handshakes captured.
    pub fn len(&self) -> usize {
        self.per_destination.values().map(Vec::len).sum()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.per_destination.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::{Endpoint, FourTuple};
    use mop_simnet::SimTime;

    #[test]
    fn reference_groups_rtts_by_destination() {
        let mut net = SimNetwork::builder().seed(1).with_table2_destinations().build();
        let google: IpAddr = "216.58.221.132".parse().unwrap();
        let dropbox: IpAddr = "108.160.166.126".parse().unwrap();
        for port in 0..5u16 {
            net.connect(
                FourTuple::new(Endpoint::v4(10, 0, 0, 2, 41000 + port), Endpoint::new(google, 443)),
                SimTime::from_millis(u64::from(port) * 100),
            );
        }
        net.connect(
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 42000), Endpoint::new(dropbox, 443)),
            SimTime::from_secs(1),
        );
        let reference = TcpdumpReference::from_network(&net);
        assert_eq!(reference.len(), 6);
        assert_eq!(reference.rtts_to(google).len(), 5);
        assert_eq!(reference.rtts_to(dropbox).len(), 1);
        assert!(reference.mean_to(google).unwrap() < reference.mean_to(dropbox).unwrap());
        assert!(reference.mean_to("1.2.3.4".parse().unwrap()).is_none());
        assert_eq!(reference.destinations().len(), 2);
        assert!(!reference.is_empty());
    }

    #[test]
    fn empty_capture_yields_empty_reference() {
        let net = SimNetwork::builder().seed(2).build();
        let reference = TcpdumpReference::from_network(&net);
        assert!(reference.is_empty());
        assert_eq!(reference.len(), 0);
    }
}
