//! The simulated TUN virtual network interface, the packet-retrieval
//! strategies built on top of it, and the app workload generators that feed
//! it.
//!
//! On Android, `VpnService.Builder.establish()` hands the app a file
//! descriptor for a TUN device; every IP packet any app sends is delivered to
//! that descriptor, and packets written to it are delivered back to the apps
//! (§2.2 of the paper). How quickly a VPN app retrieves packets from that
//! descriptor — and how much CPU it burns doing so — is the subject of §3.1:
//! ToyVpn sleeps 100 ms between reads, PrivacyGuard 20 ms, Haystack sleeps
//! adaptively, and MopEye puts the descriptor into blocking mode and
//! dedicates a thread to it.
//!
//! * [`device`] — the TUN device with its two packet queues,
//! * [`reader`] — the four read strategies and their delay/CPU behaviour,
//! * [`apps`] — client-side TCP/DNS endpoints that behave like real apps
//!   (handshake, request, ACK, FIN) so the relay can be exercised end to end,
//! * [`workload`] — workload generators (web browsing, messaging, video
//!   streaming, bulk transfer, DNS bursts) that produce flow schedules.

pub mod apps;
pub mod device;
pub mod reader;
pub mod workload;

pub use apps::{AppEndpoint, AppState, DnsClient};
pub use device::{TunDevice, TunStats};
pub use reader::{ReadStrategy, ReaderSim, RetrievalOutcome};
pub use workload::{FlowKind, FlowSpec, Workload, WorkloadKind};
