//! Packet-retrieval strategies for the VPN tunnel (§3.1).
//!
//! The Android VPN programming paradigm reads the TUN descriptor in a loop
//! with a sleep between reads, trading CPU for retrieval delay. The paper
//! compares four approaches:
//!
//! * **ToyVpn** — a fixed 100 ms sleep before each read,
//! * **PrivacyGuard** — a fixed 20 ms sleep,
//! * **Haystack** — an "intelligent" adaptive sleep that shrinks while
//!   packets keep arriving and grows when the tunnel is idle,
//! * **MopEye** — the descriptor is switched to blocking mode and read from a
//!   dedicated thread, so a packet is retrieved the moment it arrives and no
//!   CPU is spent polling an idle tunnel.
//!
//! [`ReaderSim`] reproduces the retrieval delay and polling CPU cost of each
//! strategy on a per-packet basis.

use mop_simnet::{CostModel, SimDuration, SimRng, SimTime};

/// How the TunReader retrieves packets from the tunnel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadStrategy {
    /// Sleep a fixed period between reads (ToyVpn uses 100 ms, PrivacyGuard
    /// 20 ms).
    FixedSleep {
        /// The sleep period.
        period: SimDuration,
    },
    /// Adaptive sleep: start at `min` after activity, double towards `max`
    /// while idle (the Haystack approach).
    AdaptiveSleep {
        /// Sleep used right after packet activity.
        min: SimDuration,
        /// Maximum sleep reached when the tunnel stays idle.
        max: SimDuration,
    },
    /// Blocking read in a dedicated thread (MopEye, §3.1).
    Blocking,
}

impl ReadStrategy {
    /// The ToyVpn configuration from the Android SDK sample (100 ms sleep).
    pub fn toyvpn() -> Self {
        ReadStrategy::FixedSleep { period: SimDuration::from_millis(100) }
    }

    /// The PrivacyGuard configuration (20 ms sleep).
    pub fn privacyguard() -> Self {
        ReadStrategy::FixedSleep { period: SimDuration::from_millis(20) }
    }

    /// The Haystack-style adaptive configuration (1–100 ms).
    pub fn haystack() -> Self {
        ReadStrategy::AdaptiveSleep {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(100),
        }
    }

    /// MopEye's blocking read.
    pub fn mopeye() -> Self {
        ReadStrategy::Blocking
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ReadStrategy::FixedSleep { period } if period.as_millis() >= 100 => "fixed-sleep-100ms",
            ReadStrategy::FixedSleep { .. } => "fixed-sleep",
            ReadStrategy::AdaptiveSleep { .. } => "adaptive-sleep",
            ReadStrategy::Blocking => "blocking",
        }
    }
}

/// The outcome of retrieving one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrievalOutcome {
    /// When the reader actually obtained the packet.
    pub retrieved_at: SimTime,
    /// Retrieval delay relative to the packet's arrival in the tunnel.
    pub delay: SimDuration,
    /// CPU time burned by polling (empty reads) since the previous packet.
    pub polling_cpu: SimDuration,
    /// Number of empty reads performed since the previous packet.
    pub empty_reads: u64,
}

/// Simulates a TunReader running one [`ReadStrategy`].
#[derive(Debug)]
pub struct ReaderSim {
    strategy: ReadStrategy,
    /// The next instant the polling loop will perform a read.
    next_poll_at: SimTime,
    /// Current adaptive sleep value.
    current_sleep: SimDuration,
    /// Totals.
    total_polling_cpu: SimDuration,
    total_empty_reads: u64,
    packets_retrieved: u64,
    total_delay: SimDuration,
}

impl ReaderSim {
    /// Creates a reader using `strategy`, starting its poll loop at time zero.
    pub fn new(strategy: ReadStrategy) -> Self {
        let current_sleep = match strategy {
            ReadStrategy::FixedSleep { period } => period,
            ReadStrategy::AdaptiveSleep { min, .. } => min,
            ReadStrategy::Blocking => SimDuration::ZERO,
        };
        Self {
            strategy,
            next_poll_at: SimTime::ZERO,
            current_sleep,
            total_polling_cpu: SimDuration::ZERO,
            total_empty_reads: 0,
            packets_retrieved: 0,
            total_delay: SimDuration::ZERO,
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> ReadStrategy {
        self.strategy
    }

    /// Resets the reader to its just-constructed state for the same strategy
    /// — poll loop back at time zero, accounting cleared.
    pub fn reset(&mut self) {
        *self = Self::new(self.strategy);
    }

    /// Simulates the retrieval of a packet that arrived in the tunnel at
    /// `arrival`.
    ///
    /// For polling strategies, the empty reads performed between the previous
    /// packet and this arrival are charged as CPU; the packet is retrieved at
    /// the first poll tick at or after its arrival. For the blocking
    /// strategy, retrieval happens immediately after the read system call.
    pub fn retrieve(
        &mut self,
        arrival: SimTime,
        cost_model: &CostModel,
        rng: &mut SimRng,
    ) -> RetrievalOutcome {
        let read_cost = || SimDuration::from_millis_f64(cost_model.tun_read.nominal_ms());
        let outcome = match self.strategy {
            ReadStrategy::Blocking => {
                let cpu = cost_model.tun_read.sample(rng);
                let retrieved_at = arrival + cpu;
                RetrievalOutcome {
                    retrieved_at,
                    delay: retrieved_at - arrival,
                    polling_cpu: SimDuration::ZERO,
                    empty_reads: 0,
                }
            }
            ReadStrategy::FixedSleep { period } => {
                let (retrieved_at, empty_reads) = self.poll_until(arrival, period, period);
                let polling_cpu = read_cost().saturating_mul(empty_reads);
                RetrievalOutcome {
                    retrieved_at,
                    delay: retrieved_at - arrival,
                    polling_cpu,
                    empty_reads,
                }
            }
            ReadStrategy::AdaptiveSleep { min, max } => {
                let (retrieved_at, empty_reads) = self.poll_adaptive(arrival, min, max);
                let polling_cpu = read_cost().saturating_mul(empty_reads);
                RetrievalOutcome {
                    retrieved_at,
                    delay: retrieved_at - arrival,
                    polling_cpu,
                    empty_reads,
                }
            }
        };
        self.total_polling_cpu += outcome.polling_cpu;
        self.total_empty_reads += outcome.empty_reads;
        self.packets_retrieved += 1;
        self.total_delay += outcome.delay;
        outcome
    }

    /// Fixed-period polling: count the empty polls between the previous
    /// position of the loop and the packet's arrival, then retrieve at the
    /// first tick at or after arrival.
    fn poll_until(
        &mut self,
        arrival: SimTime,
        period: SimDuration,
        reset_to: SimDuration,
    ) -> (SimTime, u64) {
        let mut empty = 0u64;
        let mut tick = self.next_poll_at;
        while tick < arrival {
            empty += 1;
            tick += period;
        }
        // The read at `tick` finds the packet.
        self.next_poll_at = tick + reset_to;
        self.current_sleep = reset_to;
        (tick, empty)
    }

    /// Adaptive polling: each empty read doubles the sleep (up to `max`);
    /// finding a packet resets the sleep to `min`.
    fn poll_adaptive(&mut self, arrival: SimTime, min: SimDuration, max: SimDuration) -> (SimTime, u64) {
        let mut empty = 0u64;
        let mut tick = self.next_poll_at;
        let mut sleep = self.current_sleep.max(min);
        while tick < arrival {
            empty += 1;
            tick += sleep;
            sleep = SimDuration::from_nanos((sleep.as_nanos() * 2).min(max.as_nanos()));
        }
        self.current_sleep = min;
        self.next_poll_at = tick + min;
        (tick, empty)
    }

    /// Total CPU spent on empty polls.
    pub fn total_polling_cpu(&self) -> SimDuration {
        self.total_polling_cpu
    }

    /// Total empty reads performed.
    pub fn total_empty_reads(&self) -> u64 {
        self.total_empty_reads
    }

    /// Mean retrieval delay over all packets retrieved so far.
    pub fn mean_delay(&self) -> SimDuration {
        if self.packets_retrieved == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.total_delay.as_nanos() / self.packets_retrieved)
    }

    /// Packets retrieved so far.
    pub fn packets_retrieved(&self) -> u64 {
        self.packets_retrieved
    }

    /// CPU charged for polling an idle tunnel over `idle` time with no
    /// packets at all (used for the Table 4 resource accounting, where
    /// Haystack keeps executing reads regardless of traffic).
    pub fn idle_polling_cpu(&self, idle: SimDuration, cost_model: &CostModel) -> SimDuration {
        let period = match self.strategy {
            ReadStrategy::Blocking => return SimDuration::ZERO,
            ReadStrategy::FixedSleep { period } => period,
            ReadStrategy::AdaptiveSleep { max, .. } => max,
        };
        if period == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let polls = idle.as_nanos() / period.as_nanos().max(1);
        SimDuration::from_millis_f64(cost_model.tun_read.nominal_ms() * polls as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CostModel, SimRng) {
        (CostModel::android_phone(), SimRng::seed_from_u64(3))
    }

    #[test]
    fn blocking_reader_has_negligible_delay_and_no_polling() {
        let (cost, mut rng) = setup();
        let mut reader = ReaderSim::new(ReadStrategy::mopeye());
        for i in 0..100u64 {
            let arrival = SimTime::from_millis(10 * i + 3);
            let outcome = reader.retrieve(arrival, &cost, &mut rng);
            assert!(outcome.delay < SimDuration::from_millis(1));
            assert_eq!(outcome.empty_reads, 0);
        }
        assert_eq!(reader.total_polling_cpu(), SimDuration::ZERO);
        assert!(reader.mean_delay() < SimDuration::from_millis(1));
        assert_eq!(reader.packets_retrieved(), 100);
    }

    #[test]
    fn toyvpn_reader_delays_packets_up_to_its_period() {
        let (cost, mut rng) = setup();
        let mut reader = ReaderSim::new(ReadStrategy::toyvpn());
        let mut delays = Vec::new();
        for i in 0..200u64 {
            // Packets arrive at irregular times.
            let arrival = SimTime::from_millis(137 * i + 13);
            let outcome = reader.retrieve(arrival, &cost, &mut rng);
            delays.push(outcome.delay.as_millis_f64());
            assert!(outcome.delay <= SimDuration::from_millis(100));
        }
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        // Mean delay of a 100 ms poll against uncorrelated arrivals is ~50 ms.
        assert!(mean > 20.0, "mean {mean}");
        assert!(mean < 90.0, "mean {mean}");
    }

    #[test]
    fn privacyguard_has_lower_delay_than_toyvpn_but_more_polls() {
        let (cost, mut rng) = setup();
        let mut toy = ReaderSim::new(ReadStrategy::toyvpn());
        let mut pg = ReaderSim::new(ReadStrategy::privacyguard());
        for i in 0..200u64 {
            let arrival = SimTime::from_millis(311 * i + 7);
            toy.retrieve(arrival, &cost, &mut rng);
            pg.retrieve(arrival, &cost, &mut rng);
        }
        assert!(pg.mean_delay() < toy.mean_delay());
        assert!(pg.total_empty_reads() > toy.total_empty_reads());
    }

    #[test]
    fn adaptive_reader_is_fast_during_bursts_and_cheap_when_idle() {
        let (cost, mut rng) = setup();
        let mut reader = ReaderSim::new(ReadStrategy::haystack());
        // A burst of closely spaced packets: delays stay small because the
        // sleep resets to the minimum after every retrieval.
        let mut burst_delays = Vec::new();
        for i in 0..50u64 {
            let arrival = SimTime::from_millis(1000 + i * 2);
            burst_delays.push(reader.retrieve(arrival, &cost, &mut rng).delay.as_millis_f64());
        }
        let burst_mean = burst_delays.iter().sum::<f64>() / burst_delays.len() as f64;
        assert!(burst_mean < 10.0, "burst mean {burst_mean}");
        // After a long idle gap the sleep has grown, so the next packet waits
        // longer than packets inside the burst did.
        let outcome = reader.retrieve(SimTime::from_secs(30), &cost, &mut rng);
        assert!(outcome.delay.as_millis_f64() <= 100.0);
        assert!(outcome.empty_reads > 10);
    }

    #[test]
    fn idle_polling_cpu_is_zero_only_for_blocking() {
        let (cost, _) = setup();
        let idle = SimDuration::from_secs(3480); // The 58-minute video of Table 4.
        let blocking = ReaderSim::new(ReadStrategy::mopeye());
        assert_eq!(blocking.idle_polling_cpu(idle, &cost), SimDuration::ZERO);
        let pg = ReaderSim::new(ReadStrategy::privacyguard());
        assert!(pg.idle_polling_cpu(idle, &cost) > SimDuration::ZERO);
        let hay = ReaderSim::new(ReadStrategy::haystack());
        assert!(hay.idle_polling_cpu(idle, &cost) > SimDuration::ZERO);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ReadStrategy::toyvpn().label(), "fixed-sleep-100ms");
        assert_eq!(ReadStrategy::privacyguard().label(), "fixed-sleep");
        assert_eq!(ReadStrategy::haystack().label(), "adaptive-sleep");
        assert_eq!(ReadStrategy::mopeye().label(), "blocking");
    }

    #[test]
    fn mean_delay_of_fresh_reader_is_zero() {
        let reader = ReaderSim::new(ReadStrategy::mopeye());
        assert_eq!(reader.mean_delay(), SimDuration::ZERO);
    }
}
