//! The TUN device: two packet queues with timestamps.

use std::collections::VecDeque;

use mop_packet::Packet;
use mop_simnet::SimTime;

/// Counters kept by the device, used for throughput and resource accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct TunStats {
    /// Packets written by apps (outbound, towards MopEye).
    pub packets_from_apps: u64,
    /// Bytes written by apps.
    pub bytes_from_apps: u64,
    /// Packets written by MopEye back to apps.
    pub packets_to_apps: u64,
    /// Bytes written by MopEye back to apps.
    pub bytes_to_apps: u64,
    /// Times the fleet's TUN-ingress dispatcher stalled on backpressure
    /// (full shard ring or exhausted credits). A wall-clock scheduling
    /// observation, not part of the simulated behaviour — excluded from
    /// equality and digests, which is why `PartialEq` is hand-written below.
    pub dispatch_stalls: u64,
}

impl PartialEq for TunStats {
    fn eq(&self, other: &Self) -> bool {
        // `dispatch_stalls` is deliberately excluded: it depends on host
        // thread scheduling, not on what the simulation computed.
        self.packets_from_apps == other.packets_from_apps
            && self.bytes_from_apps == other.bytes_from_apps
            && self.packets_to_apps == other.packets_to_apps
            && self.bytes_to_apps == other.bytes_to_apps
    }
}

impl Eq for TunStats {}

impl TunStats {
    /// Adds another device's counters into this one (cross-shard
    /// aggregation).
    pub fn merge(&mut self, other: &TunStats) {
        self.packets_from_apps += other.packets_from_apps;
        self.bytes_from_apps += other.bytes_from_apps;
        self.packets_to_apps += other.packets_to_apps;
        self.bytes_to_apps += other.bytes_to_apps;
        self.dispatch_stalls += other.dispatch_stalls;
    }
}

/// The simulated `/dev/tun` interface.
///
/// Apps enqueue raw IP packets on the *outbound* queue (they are leaving the
/// apps); MopEye's TunReader retrieves them from there. MopEye's TunWriter
/// enqueues packets on the *inbound* queue, which the apps consume.
///
/// Two usage modes exist: standalone consumers (tests, future multi-process
/// harnesses) drive the queues with [`TunDevice::app_write`] /
/// [`TunDevice::read_outbound`] / [`TunDevice::drain_inbound`], while the
/// relay engine's zero-copy datapath carries packet bytes through pooled
/// buffers itself and only records the counters here via
/// [`TunDevice::record_app_write`] / [`TunDevice::record_relay_write`].
#[derive(Debug, Default)]
pub struct TunDevice {
    outbound: VecDeque<(SimTime, Packet)>,
    inbound: VecDeque<(SimTime, Packet)>,
    stats: TunStats,
    /// Set when a dummy packet has been injected to release a blocked reader
    /// (§3.1's shutdown workaround).
    dummy_injected: bool,
}

impl TunDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// An app writes `packet` into the tunnel at time `at`.
    pub fn app_write(&mut self, at: SimTime, packet: Packet) {
        self.record_app_write(packet.wire_len());
        self.outbound.push_back((at, packet));
    }

    /// MopEye writes `packet` towards the apps at time `at`.
    pub fn relay_write(&mut self, at: SimTime, packet: Packet) {
        self.record_relay_write(packet.wire_len());
        self.inbound.push_back((at, packet));
    }

    /// Records an app write of `wire_len` bytes without queueing the packet.
    ///
    /// The engine's zero-copy datapath serialises app packets into pooled
    /// buffers and hands those to the MainWorker directly, so the device only
    /// keeps the counters — queueing a second owned copy here would be a
    /// clone per packet for nothing.
    pub fn record_app_write(&mut self, wire_len: usize) {
        self.stats.packets_from_apps += 1;
        self.stats.bytes_from_apps += wire_len as u64;
    }

    /// Records a relay write of `wire_len` bytes without queueing the packet.
    pub fn record_relay_write(&mut self, wire_len: usize) {
        self.stats.packets_to_apps += 1;
        self.stats.bytes_to_apps += wire_len as u64;
    }

    /// Injects the dummy packet MopEye uses to release a blocked `read()`
    /// when shutting down (§3.1). It is marked so the relay can discard it.
    pub fn inject_dummy(&mut self, at: SimTime, packet: Packet) {
        self.dummy_injected = true;
        self.outbound.push_back((at, packet));
    }

    /// True if a dummy shutdown packet has been injected.
    pub fn dummy_injected(&self) -> bool {
        self.dummy_injected
    }

    /// The arrival time of the next app packet waiting to be retrieved.
    pub fn next_outbound_at(&self) -> Option<SimTime> {
        self.outbound.front().map(|(t, _)| *t)
    }

    /// Retrieves the next app packet if one arrived at or before `now`.
    pub fn read_outbound(&mut self, now: SimTime) -> Option<(SimTime, Packet)> {
        if self.outbound.front().map(|(t, _)| *t <= now).unwrap_or(false) {
            self.outbound.pop_front()
        } else {
            None
        }
    }

    /// Number of app packets currently queued.
    pub fn outbound_len(&self) -> usize {
        self.outbound.len()
    }

    /// Drains every packet MopEye has written for the apps up to `now`.
    /// The app-side of the simulation consumes these.
    pub fn drain_inbound(&mut self, now: SimTime) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        while self.inbound.front().map(|(t, _)| *t <= now).unwrap_or(false) {
            out.push(self.inbound.pop_front().expect("checked front"));
        }
        out
    }

    /// Number of packets queued towards the apps.
    pub fn inbound_len(&self) -> usize {
        self.inbound.len()
    }

    /// Device counters.
    pub fn stats(&self) -> TunStats {
        self.stats
    }

    /// Resets the device to its just-constructed state, keeping the queue
    /// allocations — the clear-don't-drop reuse path of a resident engine.
    pub fn reset(&mut self) {
        self.outbound.clear();
        self.inbound.clear();
        self.stats = TunStats::default();
        self.dummy_injected = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::{Endpoint, PacketBuilder};

    fn pkt(seq: u32) -> Packet {
        PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(8, 8, 8, 8, 443))
            .tcp_syn(seq)
    }

    #[test]
    fn app_writes_are_readable_in_fifo_order_after_arrival() {
        let mut tun = TunDevice::new();
        tun.app_write(SimTime::from_millis(10), pkt(1));
        tun.app_write(SimTime::from_millis(20), pkt(2));
        assert_eq!(tun.outbound_len(), 2);
        assert_eq!(tun.next_outbound_at(), Some(SimTime::from_millis(10)));
        // Nothing has arrived at t=5.
        assert!(tun.read_outbound(SimTime::from_millis(5)).is_none());
        let (t, p) = tun.read_outbound(SimTime::from_millis(15)).unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(p.tcp().unwrap().seq, 1);
        // Second packet still not arrived at t=15.
        assert!(tun.read_outbound(SimTime::from_millis(15)).is_none());
        assert!(tun.read_outbound(SimTime::from_millis(25)).is_some());
        assert_eq!(tun.stats().packets_from_apps, 2);
        assert!(tun.stats().bytes_from_apps > 0);
    }

    #[test]
    fn relay_writes_are_drained_by_apps() {
        let mut tun = TunDevice::new();
        tun.relay_write(SimTime::from_millis(3), pkt(7));
        tun.relay_write(SimTime::from_millis(9), pkt(8));
        assert_eq!(tun.inbound_len(), 2);
        let drained = tun.drain_inbound(SimTime::from_millis(5));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1.tcp().unwrap().seq, 7);
        assert_eq!(tun.inbound_len(), 1);
        assert_eq!(tun.drain_inbound(SimTime::from_millis(100)).len(), 1);
        assert_eq!(tun.stats().packets_to_apps, 2);
    }

    #[test]
    fn dummy_injection_is_flagged() {
        let mut tun = TunDevice::new();
        assert!(!tun.dummy_injected());
        tun.inject_dummy(SimTime::ZERO, pkt(0));
        assert!(tun.dummy_injected());
        assert_eq!(tun.outbound_len(), 1);
        // Dummy packets do not count as app traffic.
        assert_eq!(tun.stats().packets_from_apps, 0);
    }
}
