//! Workload generators.
//!
//! These produce schedules of flows (TCP connections and DNS queries) shaped
//! like the traffic classes the paper's evaluation uses: web browsing for the
//! mapping experiment (§3.3), bulk transfer for the throughput experiment
//! (Table 3), video streaming for the resource experiment (Table 4), and a
//! messaging mix for general end-to-end runs.

use mop_measure::NetKind;
use mop_packet::Endpoint;
use mop_simnet::{SimDuration, SimRng, SimTime};

/// Whether a flow is a TCP connection or a DNS query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// A TCP connection carrying a request/response exchange.
    Tcp,
    /// A UDP DNS query.
    Dns,
}

/// One flow an app will open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// When the app opens the flow (SYN or DNS query time).
    pub at: SimTime,
    /// UID of the owning app.
    pub uid: u32,
    /// Package name of the owning app.
    pub package: String,
    /// The app-side source endpoint, when pre-assigned.
    ///
    /// `None` lets the engine allocate a port from its sequential pool (the
    /// single-device behaviour). Fleet scenarios pre-assign a unique source
    /// per connection so the flow's four-tuple — and therefore its shard,
    /// its RNG streams and its whole timeline — is a pure function of the
    /// spec.
    pub src: Option<Endpoint>,
    /// Destination endpoint (server for TCP, resolver for DNS).
    pub dst: Endpoint,
    /// The domain being contacted (used for DNS and for per-domain analysis).
    pub domain: Option<String>,
    /// Request size in bytes for TCP flows.
    pub request_bytes: usize,
    /// Close after receiving this many response bytes (0 = first data).
    pub close_after: usize,
    /// TCP or DNS.
    pub kind: FlowKind,
    /// The access-network technology this flow's measurements should be
    /// labelled with in the aggregated crowd report.
    ///
    /// `None` lets the engine derive the label from the simulated network's
    /// access profile at measurement time. Scenario generators set it from
    /// their network profile so the label survives even when the report is
    /// produced far from the network description.
    pub network: Option<NetKind>,
    /// The operator / Wi-Fi network name this flow's measurements should be
    /// labelled with (the per-ISP analyses group by it). `None` leaves the
    /// label empty.
    pub isp: Option<String>,
}

impl FlowSpec {
    /// Sets the network/ISP labels carried into the aggregated crowd report.
    pub fn with_net_label(mut self, network: NetKind, isp: &str) -> Self {
        self.network = Some(network);
        self.isp = Some(isp.to_string());
        self
    }
}

/// The built-in workload shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Bursts of short connections to several domains, like loading pages in
    /// Chrome (the §3.3 scenario).
    WebBrowsing,
    /// Sparse small exchanges, like a chat app.
    Messaging,
    /// One long-lived bulk connection plus periodic keep-alives, like a video
    /// player (Table 4).
    VideoStreaming,
    /// Back-to-back large transfers, like a speed test (Table 3).
    BulkTransfer,
    /// A burst of DNS queries.
    DnsBurst,
}

/// A workload generator: a kind plus its parameters.
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
    /// UID of the app generating the traffic.
    pub uid: u32,
    /// Package name of the app generating the traffic.
    pub package: String,
    /// Destinations the workload spreads its connections over.
    pub destinations: Vec<(Endpoint, String)>,
    /// Total duration over which flows are scheduled.
    pub duration: SimDuration,
    /// Scale knob: pages for browsing, messages for messaging, queries for
    /// DNS bursts, transfers for bulk.
    pub intensity: u32,
}

impl Workload {
    /// Creates a workload of the given kind for one app.
    pub fn new(
        kind: WorkloadKind,
        uid: u32,
        package: &str,
        destinations: Vec<(Endpoint, String)>,
        duration: SimDuration,
        intensity: u32,
    ) -> Self {
        Self { kind, uid, package: package.to_string(), destinations, duration, intensity }
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Generates the flow schedule.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no destinations.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<FlowSpec> {
        assert!(!self.destinations.is_empty(), "workload needs at least one destination");
        let mut flows = match self.kind {
            WorkloadKind::WebBrowsing => self.web_browsing(rng),
            WorkloadKind::Messaging => self.messaging(rng),
            WorkloadKind::VideoStreaming => self.video(rng),
            WorkloadKind::BulkTransfer => self.bulk(rng),
            WorkloadKind::DnsBurst => self.dns_burst(rng),
        };
        flows.sort_by_key(|f| f.at);
        flows
    }

    fn pick_dst(&self, rng: &mut SimRng) -> (Endpoint, String) {
        self.destinations[rng.int_inclusive(0, self.destinations.len() as u64 - 1) as usize].clone()
    }

    fn tcp_flow(&self, at: SimTime, dst: (Endpoint, String), request: usize, close_after: usize) -> FlowSpec {
        FlowSpec {
            at,
            uid: self.uid,
            package: self.package.clone(),
            src: None,
            dst: dst.0,
            domain: Some(dst.1),
            request_bytes: request,
            close_after,
            kind: FlowKind::Tcp,
            network: None,
            isp: None,
        }
    }

    fn web_browsing(&self, rng: &mut SimRng) -> Vec<FlowSpec> {
        // Each "page" opens a DNS query plus a burst of 6–14 connections
        // spread over a couple of seconds; pages are separated by think time.
        let mut flows = Vec::new();
        let pages = self.intensity.max(1);
        let mut cursor = SimTime::from_millis(rng.int_inclusive(50, 500));
        let page_gap = SimDuration::from_nanos(self.duration.as_nanos() / u64::from(pages).max(1));
        for _ in 0..pages {
            let (dst, domain) = self.pick_dst(rng);
            flows.push(FlowSpec {
                at: cursor,
                uid: self.uid,
                package: self.package.clone(),
                src: None,
                dst: Endpoint::v4(192, 168, 1, 1, 53),
                domain: Some(domain.clone()),
                request_bytes: 0,
                close_after: 0,
                kind: FlowKind::Dns,
                network: None,
                isp: None,
            });
            let connections = rng.int_inclusive(6, 14);
            for c in 0..connections {
                // Browsers open their per-page connections almost together,
                // which is what makes the lazy mapping of §3.3 effective.
                let offset = SimDuration::from_millis(20 + rng.int_inclusive(0, 60) + c * 5);
                let request = 200 + rng.int_inclusive(0, 1200) as usize;
                flows.push(self.tcp_flow(
                    cursor + offset,
                    (dst, domain.clone()),
                    request,
                    8 * 1024 + rng.int_inclusive(0, 40 * 1024) as usize,
                ));
            }
            cursor += page_gap.max(SimDuration::from_millis(500));
        }
        flows
    }

    fn messaging(&self, rng: &mut SimRng) -> Vec<FlowSpec> {
        let messages = self.intensity.max(1);
        let mut flows = Vec::new();
        for _ in 0..messages {
            let at = SimTime::from_nanos(rng.int_inclusive(0, self.duration.as_nanos().max(1)));
            let dst = self.pick_dst(rng);
            flows.push(self.tcp_flow(at, dst, 100 + rng.int_inclusive(0, 800) as usize, 256));
        }
        flows
    }

    fn video(&self, rng: &mut SimRng) -> Vec<FlowSpec> {
        // One initial manifest fetch plus a chunk request every few seconds.
        let mut flows = Vec::new();
        let dst = self.pick_dst(rng);
        flows.push(self.tcp_flow(SimTime::from_millis(100), dst.clone(), 500, 4 * 1024));
        let chunk_every = SimDuration::from_secs(6);
        let chunks = (self.duration.as_nanos() / chunk_every.as_nanos().max(1)).max(1);
        for i in 0..chunks {
            let at = SimTime::from_millis(500) + SimDuration::from_nanos(chunk_every.as_nanos() * i);
            flows.push(self.tcp_flow(at, dst.clone(), 400, 500 * 1024));
        }
        flows
    }

    fn bulk(&self, rng: &mut SimRng) -> Vec<FlowSpec> {
        let transfers = self.intensity.max(1);
        let mut flows = Vec::new();
        let gap = SimDuration::from_nanos(self.duration.as_nanos() / u64::from(transfers).max(1));
        for i in 0..transfers {
            let dst = self.pick_dst(rng);
            let at = SimTime::from_millis(10) + SimDuration::from_nanos(gap.as_nanos() * u64::from(i));
            flows.push(self.tcp_flow(at, dst, 300, 2 * 1024 * 1024));
        }
        flows
    }

    fn dns_burst(&self, rng: &mut SimRng) -> Vec<FlowSpec> {
        let queries = self.intensity.max(1);
        let mut flows = Vec::new();
        for _ in 0..queries {
            let at = SimTime::from_nanos(rng.int_inclusive(0, self.duration.as_nanos().max(1)));
            let (_, domain) = self.pick_dst(rng);
            flows.push(FlowSpec {
                at,
                uid: self.uid,
                package: self.package.clone(),
                src: None,
                dst: Endpoint::v4(192, 168, 1, 1, 53),
                domain: Some(domain),
                request_bytes: 0,
                close_after: 0,
                kind: FlowKind::Dns,
                network: None,
                isp: None,
            });
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn destinations() -> Vec<(Endpoint, String)> {
        vec![
            (Endpoint::v4(216, 58, 221, 132, 443), "www.google.com".into()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
        ]
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(21)
    }

    #[test]
    fn web_browsing_mixes_dns_and_tcp_in_bursts() {
        let w = Workload::new(
            WorkloadKind::WebBrowsing,
            10100,
            "com.android.chrome",
            destinations(),
            SimDuration::from_secs(60),
            10,
        );
        let flows = w.generate(&mut rng());
        let dns = flows.iter().filter(|f| f.kind == FlowKind::Dns).count();
        let tcp = flows.iter().filter(|f| f.kind == FlowKind::Tcp).count();
        assert_eq!(dns, 10);
        assert!((60..=140).contains(&tcp), "tcp count {tcp}");
        // Sorted by time.
        assert!(flows.windows(2).all(|w| w[0].at <= w[1].at));
        // All flows carry the app identity.
        assert!(flows.iter().all(|f| f.uid == 10100 && f.package == "com.android.chrome"));
    }

    #[test]
    fn video_workload_is_one_destination_with_periodic_chunks() {
        let w = Workload::new(
            WorkloadKind::VideoStreaming,
            10200,
            "com.google.android.youtube",
            vec![destinations()[0].clone()],
            SimDuration::from_secs(120),
            1,
        );
        let flows = w.generate(&mut rng());
        assert!(flows.len() >= 20, "len {}", flows.len());
        assert!(flows.iter().all(|f| f.kind == FlowKind::Tcp));
        assert!(flows.iter().skip(1).all(|f| f.close_after == 500 * 1024));
    }

    #[test]
    fn bulk_workload_schedules_big_transfers() {
        let w = Workload::new(
            WorkloadKind::BulkTransfer,
            10300,
            "org.zwanoo.android.speedtest",
            destinations(),
            SimDuration::from_secs(30),
            4,
        );
        let flows = w.generate(&mut rng());
        assert_eq!(flows.len(), 4);
        assert!(flows.iter().all(|f| f.close_after == 2 * 1024 * 1024));
    }

    #[test]
    fn messaging_and_dns_burst_counts_match_intensity() {
        let m = Workload::new(
            WorkloadKind::Messaging,
            1,
            "com.whatsapp",
            destinations(),
            SimDuration::from_secs(300),
            25,
        );
        assert_eq!(m.generate(&mut rng()).len(), 25);
        let d = Workload::new(
            WorkloadKind::DnsBurst,
            1,
            "com.whatsapp",
            destinations(),
            SimDuration::from_secs(10),
            40,
        );
        let flows = d.generate(&mut rng());
        assert_eq!(flows.len(), 40);
        assert!(flows.iter().all(|f| f.kind == FlowKind::Dns && f.dst.port == 53));
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn empty_destinations_panic() {
        Workload::new(WorkloadKind::Messaging, 1, "x", Vec::new(), SimDuration::from_secs(1), 1)
            .generate(&mut rng());
    }

    #[test]
    fn kind_accessor() {
        let w = Workload::new(
            WorkloadKind::BulkTransfer,
            1,
            "x",
            destinations(),
            SimDuration::from_secs(1),
            1,
        );
        assert_eq!(w.kind(), WorkloadKind::BulkTransfer);
    }
}
