//! Client-side app endpoints.
//!
//! The relay can only be exercised end to end if something on the app side of
//! the tunnel behaves like a real TCP/DNS client: sends a SYN, completes the
//! handshake when the SYN/ACK comes back, sends its request, ACKs response
//! data and closes with FIN. [`AppEndpoint`] is that client. It is
//! deliberately simple — no retransmission timers, no congestion control —
//! because the tunnel between an app and MopEye is a loss-free in-memory
//! link, exactly the §3.4 assumption MopEye itself relies on.

use mop_packet::{DnsMessage, Endpoint, FourTuple, Packet, PacketBuilder, TcpFlags};

/// Lifecycle of an app-side TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// SYN sent, waiting for the SYN/ACK.
    SynSent,
    /// Handshake done; request in flight or response being received.
    Established,
    /// FIN sent, waiting for the relay's FIN/ACK of our close.
    Closing,
    /// Connection fully closed.
    Done,
    /// Connection was reset.
    Failed,
}

/// A simulated app's TCP connection through the tunnel.
#[derive(Debug)]
pub struct AppEndpoint {
    /// UID of the owning app (what `/proc/net` reports).
    pub uid: u32,
    /// Package name of the owning app.
    pub package: String,
    flow: FourTuple,
    builder: PacketBuilder,
    state: AppState,
    seq: u32,
    ack: u32,
    request: Vec<u8>,
    request_sent: bool,
    /// Bytes of response received so far.
    pub bytes_received: usize,
    /// Close the connection after receiving at least this many bytes
    /// (0 = close as soon as any response data has arrived).
    close_after: usize,
    /// Timestamp bookkeeping for tests and workload statistics.
    pub syn_count: u32,
}

impl AppEndpoint {
    /// Creates an endpoint for `flow`, owned by (`uid`, `package`), that will
    /// send `request` once connected and close after `close_after` response
    /// bytes.
    pub fn new(uid: u32, package: &str, flow: FourTuple, request: Vec<u8>, close_after: usize) -> Self {
        Self {
            uid,
            package: package.to_string(),
            flow,
            builder: PacketBuilder::new(flow.src, flow.dst),
            state: AppState::SynSent,
            seq: 0x4000_0000 ^ u32::from(flow.src.port),
            ack: 0,
            request,
            request_sent: false,
            bytes_received: 0,
            close_after,
            syn_count: 0,
        }
    }

    /// The connection four-tuple.
    pub fn flow(&self) -> FourTuple {
        self.flow
    }

    /// The current state.
    pub fn state(&self) -> AppState {
        self.state
    }

    /// True once the connection has finished (cleanly or not).
    pub fn is_done(&self) -> bool {
        matches!(self.state, AppState::Done | AppState::Failed)
    }

    /// The initial SYN packet. Also used for retransmissions.
    pub fn syn_packet(&mut self) -> Packet {
        self.syn_count += 1;
        self.builder.tcp_syn(self.seq)
    }

    /// Processes a packet arriving from the tunnel (sent by MopEye) and
    /// returns the packets the app sends in response.
    pub fn handle(&mut self, packet: &Packet) -> Vec<Packet> {
        let Some(tcp) = packet.tcp() else { return Vec::new() };
        // Only handle packets for our connection (reverse direction).
        if packet.four_tuple() != Some(self.flow.reversed()) {
            return Vec::new();
        }
        if tcp.flags.contains(TcpFlags::RST) {
            self.state = AppState::Failed;
            return Vec::new();
        }
        match self.state {
            AppState::SynSent if tcp.is_syn_ack() => {
                self.seq = self.seq.wrapping_add(1);
                self.ack = tcp.seq.wrapping_add(1);
                self.state = AppState::Established;
                let mut out = vec![self.builder.tcp_ack(self.seq, self.ack)];
                if !self.request.is_empty() {
                    let data = self.builder.tcp_data(self.seq, self.ack, self.request.clone());
                    self.seq = self.seq.wrapping_add(self.request.len() as u32);
                    self.request_sent = true;
                    out.push(data);
                }
                out
            }
            AppState::Established | AppState::Closing => {
                let mut out = Vec::new();
                let mut advanced = false;
                if !tcp.payload.is_empty() {
                    self.bytes_received += tcp.payload.len();
                    self.ack = tcp.seq.wrapping_add(tcp.payload.len() as u32);
                    advanced = true;
                }
                if tcp.flags.contains(TcpFlags::FIN) {
                    self.ack = self.ack.max(tcp.seq).wrapping_add(1);
                    if self.state == AppState::Established {
                        // Server closed first: ACK its FIN and send ours.
                        out.push(self.builder.tcp_ack(self.seq, self.ack));
                        out.push(self.builder.tcp_fin(self.seq, self.ack));
                        self.seq = self.seq.wrapping_add(1);
                        self.state = AppState::Done;
                        return out;
                    }
                    // We are closing and this is the relay's FIN: final ACK.
                    out.push(self.builder.tcp_ack(self.seq, self.ack));
                    self.state = AppState::Done;
                    return out;
                }
                if advanced {
                    out.push(self.builder.tcp_ack(self.seq, self.ack));
                }
                // Decide whether we are satisfied and can close.
                if self.state == AppState::Established
                    && self.request_sent
                    && self.bytes_received > 0
                    && self.bytes_received >= self.close_after
                {
                    out.push(self.builder.tcp_fin(self.seq, self.ack));
                    self.seq = self.seq.wrapping_add(1);
                    self.state = AppState::Closing;
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

/// A simulated app's DNS query over UDP.
#[derive(Debug)]
pub struct DnsClient {
    /// UID of the owning app.
    pub uid: u32,
    /// Package name of the owning app.
    pub package: String,
    flow: FourTuple,
    builder: PacketBuilder,
    query: DnsMessage,
    /// True once a response has been received.
    pub answered: bool,
    /// Addresses returned by the resolver.
    pub addresses: Vec<std::net::Ipv4Addr>,
}

impl DnsClient {
    /// Creates a DNS client that will query `name` from local endpoint `src`
    /// towards resolver `resolver`.
    pub fn new(uid: u32, package: &str, src: Endpoint, resolver: Endpoint, id: u16, name: &str) -> Self {
        let flow = FourTuple::new(src, resolver);
        Self {
            uid,
            package: package.to_string(),
            flow,
            builder: PacketBuilder::new(src, resolver),
            query: DnsMessage::query(id, name),
            answered: false,
            addresses: Vec::new(),
        }
    }

    /// The flow of this query.
    pub fn flow(&self) -> FourTuple {
        self.flow
    }

    /// The queried name.
    pub fn name(&self) -> &str {
        self.query.queried_name().unwrap_or_default()
    }

    /// The query packet to write into the tunnel.
    pub fn query_packet(&self) -> Packet {
        self.builder.dns(&self.query)
    }

    /// Processes a packet from the tunnel; returns true if it was our answer.
    pub fn handle(&mut self, packet: &Packet) -> bool {
        if packet.four_tuple() != Some(self.flow.reversed()) {
            return false;
        }
        let Some(udp) = packet.udp() else { return false };
        let Ok(msg) = DnsMessage::parse(&udp.payload) else { return false };
        if !msg.flags.response || msg.id != self.query.id {
            return false;
        }
        self.answered = true;
        self.addresses = msg.a_records();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;

    fn flow() -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
    }

    /// The relay side of the handshake, hand-rolled for the test.
    fn relay_builder() -> PacketBuilder {
        PacketBuilder::new(flow().dst, flow().src)
    }

    #[test]
    fn full_client_lifecycle_request_response_close() {
        let mut app = AppEndpoint::new(10100, "com.android.chrome", flow(), b"GET /".to_vec(), 1000);
        let syn = app.syn_packet();
        assert!(syn.tcp().unwrap().is_syn());
        assert_eq!(app.state(), AppState::SynSent);
        assert_eq!(app.syn_count, 1);

        // Relay answers with SYN/ACK.
        let syn_ack = relay_builder().tcp_syn_ack(7000, syn.tcp().unwrap().seq);
        let replies = app.handle(&syn_ack);
        assert_eq!(app.state(), AppState::Established);
        assert_eq!(replies.len(), 2, "ACK plus request data");
        assert!(replies[0].tcp().unwrap().is_pure_ack());
        assert_eq!(replies[1].tcp().unwrap().payload, b"GET /");

        // Relay forwards 1500 bytes of response data in two segments.
        let data1 = relay_builder().tcp_data(7001, replies[1].tcp().unwrap().seq + 5, vec![1u8; 900]);
        let out = app.handle(&data1);
        assert_eq!(out.len(), 1); // Just an ACK; not enough data to close yet.
        let data2 = relay_builder().tcp_data(7901, 0, vec![2u8; 600]);
        let out = app.handle(&data2);
        assert_eq!(app.bytes_received, 1500);
        // ACK plus FIN since close_after=1000 reached.
        assert_eq!(out.len(), 2);
        assert!(out[1].tcp().unwrap().flags.contains(TcpFlags::FIN));
        assert_eq!(app.state(), AppState::Closing);

        // Relay sends its own FIN; the app's final ACK finishes it.
        let fin = relay_builder().tcp_fin(8501, 0);
        let out = app.handle(&fin);
        assert_eq!(out.len(), 1);
        assert!(app.is_done());
        assert_eq!(app.state(), AppState::Done);
    }

    #[test]
    fn server_initiated_close_is_handled() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), b"x".to_vec(), usize::MAX);
        let syn = app.syn_packet();
        app.handle(&relay_builder().tcp_syn_ack(100, syn.tcp().unwrap().seq));
        // Some data, then the relay closes first (close_after is huge so the
        // app would not have closed on its own).
        app.handle(&relay_builder().tcp_data(101, 0, vec![0u8; 10]));
        assert_eq!(app.state(), AppState::Established);
        let out = app.handle(&relay_builder().tcp_fin(111, 0));
        assert_eq!(out.len(), 2); // ACK of FIN plus our FIN.
        assert!(out[1].tcp().unwrap().flags.contains(TcpFlags::FIN));
        assert!(app.is_done());
    }

    #[test]
    fn rst_fails_the_connection() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), Vec::new(), 0);
        let _syn = app.syn_packet();
        let out = app.handle(&relay_builder().tcp_rst_ack(1, 1));
        assert!(out.is_empty());
        assert_eq!(app.state(), AppState::Failed);
        assert!(app.is_done());
    }

    #[test]
    fn packets_for_other_flows_are_ignored() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), Vec::new(), 0);
        let other =
            PacketBuilder::new(Endpoint::v4(9, 9, 9, 9, 443), Endpoint::v4(10, 0, 0, 2, 39999));
        assert!(app.handle(&other.tcp_syn_ack(5, 5)).is_empty());
        assert_eq!(app.state(), AppState::SynSent);
    }

    #[test]
    fn empty_request_connects_without_sending_data() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), Vec::new(), 0);
        let syn = app.syn_packet();
        let replies = app.handle(&relay_builder().tcp_syn_ack(50, syn.tcp().unwrap().seq));
        assert_eq!(replies.len(), 1);
        assert!(replies[0].tcp().unwrap().is_pure_ack());
        assert_eq!(app.state(), AppState::Established);
    }

    #[test]
    fn dns_client_matches_only_its_transaction() {
        let resolver = Endpoint::v4(192, 168, 1, 1, 53);
        let src = Endpoint::v4(10, 0, 0, 2, 41000);
        let mut client = DnsClient::new(1, "com.whatsapp", src, resolver, 0x42, "e3.whatsapp.net");
        assert_eq!(client.name(), "e3.whatsapp.net");
        let query_pkt = client.query_packet();
        assert!(query_pkt.udp().unwrap().is_dns());

        let reply_builder = PacketBuilder::new(resolver, src);
        // A response with the wrong id is ignored.
        let wrong = DnsMessage::answer(&DnsMessage::query(0x43, "e3.whatsapp.net"), &[], 60);
        assert!(!client.handle(&reply_builder.dns(&wrong)));
        assert!(!client.answered);
        // The right one completes it.
        let answer = DnsMessage::answer(
            &DnsMessage::query(0x42, "e3.whatsapp.net"),
            &["158.85.5.197".parse().unwrap()],
            60,
        );
        assert!(client.handle(&reply_builder.dns(&answer)));
        assert!(client.answered);
        assert_eq!(client.addresses.len(), 1);
    }
}
