//! Client-side app endpoints.
//!
//! The relay can only be exercised end to end if something on the app side of
//! the tunnel behaves like a real TCP/DNS client: sends a SYN, completes the
//! handshake when the SYN/ACK comes back, sends its request, ACKs response
//! data and closes with FIN. [`AppEndpoint`] is that client. Its sending side
//! is deliberately simple — no retransmission timers, no congestion control —
//! because the tunnel between an app and MopEye is a loss-free in-memory
//! link, exactly the §3.4 assumption MopEye itself relies on. Its *receiving*
//! side, however, performs ordered reassembly: when the simulated access
//! network drops, reorders or duplicates relayed segments, the endpoint
//! buffers out-of-order data, answers holes with SACK-carrying duplicate
//! ACKs (RFC 2018) and holds a premature FIN until the stream is contiguous,
//! which is what drives the relay's fast-retransmit and RTO machinery. On an
//! in-order stream none of that triggers and the emitted packets are
//! byte-identical to the plain cumulative-ACK client.

use std::collections::BTreeMap;

use mop_packet::{DnsMessage, Endpoint, FourTuple, Packet, PacketBuilder, SackBlocks, TcpFlags};

/// True iff `a` is strictly before `b` in TCP sequence space.
fn seq_before(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000_0000
}

/// Lifecycle of an app-side TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// SYN sent, waiting for the SYN/ACK.
    SynSent,
    /// Handshake done; request in flight or response being received.
    Established,
    /// FIN sent, waiting for the relay's FIN/ACK of our close.
    Closing,
    /// Connection fully closed.
    Done,
    /// Connection was reset.
    Failed,
}

/// A simulated app's TCP connection through the tunnel.
#[derive(Debug)]
pub struct AppEndpoint {
    /// UID of the owning app (what `/proc/net` reports).
    pub uid: u32,
    /// Package name of the owning app.
    pub package: String,
    flow: FourTuple,
    builder: PacketBuilder,
    state: AppState,
    seq: u32,
    ack: u32,
    request: Vec<u8>,
    request_sent: bool,
    /// Bytes of response received so far.
    pub bytes_received: usize,
    /// Close the connection after receiving at least this many bytes
    /// (0 = close as soon as any response data has arrived).
    close_after: usize,
    /// Timestamp bookkeeping for tests and workload statistics.
    pub syn_count: u32,
    /// Received-but-not-contiguous segments, keyed by sequence number,
    /// waiting for the hole below them to fill.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// A FIN that arrived ahead of a sequence hole; processed once the
    /// stream is contiguous up to it.
    pending_fin: Option<u32>,
    /// Duplicate ACKs sent in response to holes or duplicates — nonzero only
    /// when the network misbehaved.
    pub dup_acks_sent: u32,
}

impl AppEndpoint {
    /// Creates an endpoint for `flow`, owned by (`uid`, `package`), that will
    /// send `request` once connected and close after `close_after` response
    /// bytes.
    pub fn new(uid: u32, package: &str, flow: FourTuple, request: Vec<u8>, close_after: usize) -> Self {
        Self {
            uid,
            package: package.to_string(),
            flow,
            builder: PacketBuilder::new(flow.src, flow.dst),
            state: AppState::SynSent,
            seq: 0x4000_0000 ^ u32::from(flow.src.port),
            ack: 0,
            request,
            request_sent: false,
            bytes_received: 0,
            close_after,
            syn_count: 0,
            ooo: BTreeMap::new(),
            pending_fin: None,
            dup_acks_sent: 0,
        }
    }

    /// The contiguous ranges currently held in the out-of-order buffer.
    /// (Raw `u32` ordering is fine here: a connection's receive window never
    /// spans the sequence-space wrap in these workloads.)
    fn buffered_ranges(&self) -> Vec<(u32, u32)> {
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for (&seq, payload) in &self.ooo {
            let end = seq.wrapping_add(payload.len() as u32);
            match ranges.last_mut() {
                Some((_, last_end)) if *last_end == seq => *last_end = end,
                _ => ranges.push((seq, end)),
            }
        }
        ranges
    }

    /// The SACK blocks for a duplicate ACK. Per RFC 2018 the block containing
    /// the segment that triggered the ACK comes first; the rest follow in
    /// ascending order, capped at the option's four-block limit.
    fn sack_blocks(&self, newest_seq: Option<u32>) -> SackBlocks {
        let mut ranges = self.buffered_ranges();
        if let Some(seq) = newest_seq {
            if let Some(pos) =
                ranges.iter().position(|&(s, e)| !seq_before(seq, s) && seq_before(seq, e))
            {
                ranges[..=pos].rotate_right(1);
            }
        }
        ranges.truncate(SackBlocks::MAX);
        SackBlocks::new(&ranges)
    }

    /// The connection four-tuple.
    pub fn flow(&self) -> FourTuple {
        self.flow
    }

    /// The current state.
    pub fn state(&self) -> AppState {
        self.state
    }

    /// True once the connection has finished (cleanly or not).
    pub fn is_done(&self) -> bool {
        matches!(self.state, AppState::Done | AppState::Failed)
    }

    /// The initial SYN packet. Also used for retransmissions.
    pub fn syn_packet(&mut self) -> Packet {
        self.syn_count += 1;
        self.builder.tcp_syn(self.seq)
    }

    /// Processes a packet arriving from the tunnel (sent by MopEye) and
    /// returns the packets the app sends in response.
    pub fn handle(&mut self, packet: &Packet) -> Vec<Packet> {
        let Some(tcp) = packet.tcp() else { return Vec::new() };
        // Only handle packets for our connection (reverse direction).
        if packet.four_tuple() != Some(self.flow.reversed()) {
            return Vec::new();
        }
        if tcp.flags.contains(TcpFlags::RST) {
            self.state = AppState::Failed;
            return Vec::new();
        }
        match self.state {
            AppState::SynSent if tcp.is_syn_ack() => {
                self.seq = self.seq.wrapping_add(1);
                self.ack = tcp.seq.wrapping_add(1);
                self.state = AppState::Established;
                let mut out = vec![self.builder.tcp_ack(self.seq, self.ack)];
                if !self.request.is_empty() {
                    let data = self.builder.tcp_data(self.seq, self.ack, self.request.clone());
                    self.seq = self.seq.wrapping_add(self.request.len() as u32);
                    self.request_sent = true;
                    out.push(data);
                }
                out
            }
            AppState::Established | AppState::Closing => {
                let mut out = Vec::new();
                let mut advanced = false;
                if !tcp.payload.is_empty() {
                    if tcp.seq == self.ack {
                        // In-order: accept, then drain any buffered segments
                        // the arrival made contiguous.
                        self.bytes_received += tcp.payload.len();
                        self.ack = tcp.seq.wrapping_add(tcp.payload.len() as u32);
                        advanced = true;
                        while let Some(payload) = self.ooo.remove(&self.ack) {
                            self.bytes_received += payload.len();
                            self.ack = self.ack.wrapping_add(payload.len() as u32);
                        }
                    } else if seq_before(tcp.seq, self.ack) {
                        // A duplicate of data already reassembled: re-ACK so
                        // the sender's scoreboard advances, relay nothing.
                        self.dup_acks_sent += 1;
                        out.push(self.builder.tcp_ack(self.seq, self.ack));
                        return out;
                    } else {
                        // A sequence hole: buffer the segment and answer
                        // with a SACK-carrying duplicate ACK.
                        self.ooo.entry(tcp.seq).or_insert_with(|| tcp.payload.clone());
                        self.dup_acks_sent += 1;
                        let blocks = self.sack_blocks(Some(tcp.seq));
                        out.push(self.builder.tcp_sack_ack(self.seq, self.ack, blocks));
                        return out;
                    }
                }
                if tcp.flags.contains(TcpFlags::FIN) {
                    self.pending_fin = Some(tcp.seq);
                }
                if let Some(fin_seq) = self.pending_fin {
                    if fin_seq == self.ack {
                        self.pending_fin = None;
                        self.ack = self.ack.wrapping_add(1);
                        if self.state == AppState::Established {
                            // Server closed first: ACK its FIN and send ours.
                            out.push(self.builder.tcp_ack(self.seq, self.ack));
                            out.push(self.builder.tcp_fin(self.seq, self.ack));
                            self.seq = self.seq.wrapping_add(1);
                            self.state = AppState::Done;
                            return out;
                        }
                        // We are closing and this is the relay's FIN: final ACK.
                        out.push(self.builder.tcp_ack(self.seq, self.ack));
                        self.state = AppState::Done;
                        return out;
                    }
                    if tcp.flags.contains(TcpFlags::FIN) {
                        // FIN beyond a hole: hold it and ask for the gap.
                        self.dup_acks_sent += 1;
                        let blocks = self.sack_blocks(None);
                        out.push(self.builder.tcp_sack_ack(self.seq, self.ack, blocks));
                        return out;
                    }
                }
                if advanced {
                    out.push(self.builder.tcp_ack(self.seq, self.ack));
                }
                // Decide whether we are satisfied and can close.
                if self.state == AppState::Established
                    && self.request_sent
                    && self.bytes_received > 0
                    && self.bytes_received >= self.close_after
                {
                    out.push(self.builder.tcp_fin(self.seq, self.ack));
                    self.seq = self.seq.wrapping_add(1);
                    self.state = AppState::Closing;
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

/// A simulated app's DNS query over UDP.
#[derive(Debug)]
pub struct DnsClient {
    /// UID of the owning app.
    pub uid: u32,
    /// Package name of the owning app.
    pub package: String,
    flow: FourTuple,
    builder: PacketBuilder,
    query: DnsMessage,
    /// True once a response has been received.
    pub answered: bool,
    /// Addresses returned by the resolver.
    pub addresses: Vec<std::net::Ipv4Addr>,
}

impl DnsClient {
    /// Creates a DNS client that will query `name` from local endpoint `src`
    /// towards resolver `resolver`.
    pub fn new(uid: u32, package: &str, src: Endpoint, resolver: Endpoint, id: u16, name: &str) -> Self {
        let flow = FourTuple::new(src, resolver);
        Self {
            uid,
            package: package.to_string(),
            flow,
            builder: PacketBuilder::new(src, resolver),
            query: DnsMessage::query(id, name),
            answered: false,
            addresses: Vec::new(),
        }
    }

    /// The flow of this query.
    pub fn flow(&self) -> FourTuple {
        self.flow
    }

    /// The queried name.
    pub fn name(&self) -> &str {
        self.query.queried_name().unwrap_or_default()
    }

    /// The query packet to write into the tunnel.
    pub fn query_packet(&self) -> Packet {
        self.builder.dns(&self.query)
    }

    /// Processes a packet from the tunnel; returns true if it was our answer.
    pub fn handle(&mut self, packet: &Packet) -> bool {
        if packet.four_tuple() != Some(self.flow.reversed()) {
            return false;
        }
        let Some(udp) = packet.udp() else { return false };
        let Ok(msg) = DnsMessage::parse(&udp.payload) else { return false };
        if !msg.flags.response || msg.id != self.query.id {
            return false;
        }
        self.answered = true;
        self.addresses = msg.a_records();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;

    fn flow() -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
    }

    /// The relay side of the handshake, hand-rolled for the test.
    fn relay_builder() -> PacketBuilder {
        PacketBuilder::new(flow().dst, flow().src)
    }

    #[test]
    fn full_client_lifecycle_request_response_close() {
        let mut app = AppEndpoint::new(10100, "com.android.chrome", flow(), b"GET /".to_vec(), 1000);
        let syn = app.syn_packet();
        assert!(syn.tcp().unwrap().is_syn());
        assert_eq!(app.state(), AppState::SynSent);
        assert_eq!(app.syn_count, 1);

        // Relay answers with SYN/ACK.
        let syn_ack = relay_builder().tcp_syn_ack(7000, syn.tcp().unwrap().seq);
        let replies = app.handle(&syn_ack);
        assert_eq!(app.state(), AppState::Established);
        assert_eq!(replies.len(), 2, "ACK plus request data");
        assert!(replies[0].tcp().unwrap().is_pure_ack());
        assert_eq!(replies[1].tcp().unwrap().payload, b"GET /");

        // Relay forwards 1500 bytes of response data in two segments.
        let data1 = relay_builder().tcp_data(7001, replies[1].tcp().unwrap().seq + 5, vec![1u8; 900]);
        let out = app.handle(&data1);
        assert_eq!(out.len(), 1); // Just an ACK; not enough data to close yet.
        let data2 = relay_builder().tcp_data(7901, 0, vec![2u8; 600]);
        let out = app.handle(&data2);
        assert_eq!(app.bytes_received, 1500);
        // ACK plus FIN since close_after=1000 reached.
        assert_eq!(out.len(), 2);
        assert!(out[1].tcp().unwrap().flags.contains(TcpFlags::FIN));
        assert_eq!(app.state(), AppState::Closing);

        // Relay sends its own FIN; the app's final ACK finishes it.
        let fin = relay_builder().tcp_fin(8501, 0);
        let out = app.handle(&fin);
        assert_eq!(out.len(), 1);
        assert!(app.is_done());
        assert_eq!(app.state(), AppState::Done);
    }

    #[test]
    fn server_initiated_close_is_handled() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), b"x".to_vec(), usize::MAX);
        let syn = app.syn_packet();
        app.handle(&relay_builder().tcp_syn_ack(100, syn.tcp().unwrap().seq));
        // Some data, then the relay closes first (close_after is huge so the
        // app would not have closed on its own).
        app.handle(&relay_builder().tcp_data(101, 0, vec![0u8; 10]));
        assert_eq!(app.state(), AppState::Established);
        let out = app.handle(&relay_builder().tcp_fin(111, 0));
        assert_eq!(out.len(), 2); // ACK of FIN plus our FIN.
        assert!(out[1].tcp().unwrap().flags.contains(TcpFlags::FIN));
        assert!(app.is_done());
    }

    #[test]
    fn rst_fails_the_connection() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), Vec::new(), 0);
        let _syn = app.syn_packet();
        let out = app.handle(&relay_builder().tcp_rst_ack(1, 1));
        assert!(out.is_empty());
        assert_eq!(app.state(), AppState::Failed);
        assert!(app.is_done());
    }

    #[test]
    fn packets_for_other_flows_are_ignored() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), Vec::new(), 0);
        let other =
            PacketBuilder::new(Endpoint::v4(9, 9, 9, 9, 443), Endpoint::v4(10, 0, 0, 2, 39999));
        assert!(app.handle(&other.tcp_syn_ack(5, 5)).is_empty());
        assert_eq!(app.state(), AppState::SynSent);
    }

    #[test]
    fn empty_request_connects_without_sending_data() {
        let mut app = AppEndpoint::new(1, "com.app", flow(), Vec::new(), 0);
        let syn = app.syn_packet();
        let replies = app.handle(&relay_builder().tcp_syn_ack(50, syn.tcp().unwrap().seq));
        assert_eq!(replies.len(), 1);
        assert!(replies[0].tcp().unwrap().is_pure_ack());
        assert_eq!(app.state(), AppState::Established);
    }

    /// An established endpoint with the relay's stream starting at seq 101.
    fn established_app() -> AppEndpoint {
        let mut app = AppEndpoint::new(1, "com.app", flow(), b"x".to_vec(), usize::MAX);
        let syn = app.syn_packet();
        app.handle(&relay_builder().tcp_syn_ack(100, syn.tcp().unwrap().seq));
        assert_eq!(app.state(), AppState::Established);
        app
    }

    #[test]
    fn out_of_order_segments_are_buffered_and_reassembled() {
        let mut app = established_app();
        // The second segment arrives first: hole at 101..111.
        let out = app.handle(&relay_builder().tcp_data(111, 0, vec![2u8; 10]));
        assert_eq!(out.len(), 1);
        let dup = out[0].tcp().unwrap();
        assert_eq!(dup.ack, 101, "cumulative ACK does not move past the hole");
        assert_eq!(dup.sack_blocks().unwrap().as_slice(), &[(111, 121)]);
        assert_eq!(app.bytes_received, 0);
        assert_eq!(app.dup_acks_sent, 1);
        // The hole fills: one ACK covering both segments.
        let out = app.handle(&relay_builder().tcp_data(101, 0, vec![1u8; 10]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tcp().unwrap().ack, 121);
        assert!(out[0].tcp().unwrap().sack_blocks().is_none());
        assert_eq!(app.bytes_received, 20);
    }

    #[test]
    fn duplicate_segments_are_re_acked_without_recounting() {
        let mut app = established_app();
        let seg = relay_builder().tcp_data(101, 0, vec![1u8; 10]);
        app.handle(&seg);
        assert_eq!(app.bytes_received, 10);
        // The network duplicated the segment: re-ACK, count nothing twice.
        let out = app.handle(&seg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tcp().unwrap().ack, 111);
        assert_eq!(app.bytes_received, 10);
        assert_eq!(app.dup_acks_sent, 1);
    }

    #[test]
    fn fin_beyond_a_hole_is_held_until_contiguous() {
        let mut app = established_app();
        app.handle(&relay_builder().tcp_data(101, 0, vec![1u8; 10]));
        // The 111..121 segment is lost; the relay's FIN at 121 races ahead.
        let out = app.handle(&relay_builder().tcp_fin(121, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tcp().unwrap().ack, 111, "FIN not acknowledged yet");
        assert_eq!(app.state(), AppState::Established);
        // Retransmission fills the hole: the held FIN is processed and the
        // app closes exactly as if the stream had arrived in order.
        let out = app.handle(&relay_builder().tcp_data(111, 0, vec![2u8; 10]));
        assert_eq!(out.len(), 2, "ACK of FIN plus our FIN");
        assert_eq!(out[0].tcp().unwrap().ack, 122);
        assert!(out[1].tcp().unwrap().flags.contains(TcpFlags::FIN));
        assert_eq!(app.state(), AppState::Done);
        assert_eq!(app.bytes_received, 20);
    }

    #[test]
    fn sack_blocks_lead_with_the_newest_block() {
        let mut app = established_app();
        // Two separate holes; the newest arrival's block must come first
        // (RFC 2018), with the rest in ascending order.
        app.handle(&relay_builder().tcp_data(111, 0, vec![2u8; 10]));
        let out = app.handle(&relay_builder().tcp_data(131, 0, vec![4u8; 10]));
        assert_eq!(
            out[0].tcp().unwrap().sack_blocks().unwrap().as_slice(),
            &[(131, 141), (111, 121)]
        );
        // A third arrival joining the two runs collapses them into one block.
        let out = app.handle(&relay_builder().tcp_data(121, 0, vec![3u8; 10]));
        assert_eq!(out[0].tcp().unwrap().sack_blocks().unwrap().as_slice(), &[(111, 141)]);
        assert_eq!(app.dup_acks_sent, 3);
    }

    #[test]
    fn dns_client_matches_only_its_transaction() {
        let resolver = Endpoint::v4(192, 168, 1, 1, 53);
        let src = Endpoint::v4(10, 0, 0, 2, 41000);
        let mut client = DnsClient::new(1, "com.whatsapp", src, resolver, 0x42, "e3.whatsapp.net");
        assert_eq!(client.name(), "e3.whatsapp.net");
        let query_pkt = client.query_packet();
        assert!(query_pkt.udp().unwrap().is_dns());

        let reply_builder = PacketBuilder::new(resolver, src);
        // A response with the wrong id is ignored.
        let wrong = DnsMessage::answer(&DnsMessage::query(0x43, "e3.whatsapp.net"), &[], 60);
        assert!(!client.handle(&reply_builder.dns(&wrong)));
        assert!(!client.answered);
        // The right one completes it.
        let answer = DnsMessage::answer(
            &DnsMessage::query(0x42, "e3.whatsapp.net"),
            &["158.85.5.197".parse().unwrap()],
            60,
        );
        assert!(client.handle(&reply_builder.dns(&answer)));
        assert!(client.answered);
        assert_eq!(client.addresses.len(), 1);
    }
}
