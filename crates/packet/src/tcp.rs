//! TCP segment parsing and serialisation, including the options MopEye
//! manipulates (MSS and window scale, §3.4 of the paper).

use std::net::IpAddr;

use crate::checksum::{transport_checksum_v4, transport_checksum_v6};
use crate::error::{PacketError, Result};

/// Minimum TCP header length in bytes (no options).
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// The MSS MopEye advertises on the internal (tunnel) connection so that apps
/// send 1500-byte IP packets (§3.4).
pub const MOPEYE_MSS: u16 = 1460;

/// The receive window MopEye advertises: the maximum unscaled value (§3.4).
pub const MOPEYE_RECEIVE_WINDOW: u16 = 65_535;

/// TCP header flags, represented as a transparent bit set.
///
/// A hand-rolled flags type is used instead of the `bitflags` crate to keep
/// the dependency set to the pre-approved list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender has finished sending.
    pub const FIN: Self = Self(0x01);
    /// SYN: synchronise sequence numbers.
    pub const SYN: Self = Self(0x02);
    /// RST: reset the connection.
    pub const RST: Self = Self(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: Self = Self(0x08);
    /// ACK: the acknowledgement number is valid.
    pub const ACK: Self = Self(0x10);
    /// URG: the urgent pointer is valid.
    pub const URG: Self = Self(0x20);

    /// Returns the empty flag set.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Returns the raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Constructs a flag set from raw bits (unknown bits are kept).
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits)
    }

    /// Returns true if `self` contains all flags in `other`.
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns true if `self` and `other` share any flag.
    pub const fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns true if no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for TcpFlags {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        for (flag, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(flag) {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            write!(f, "<none>")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// TCP options relevant to the relay. Unknown options are preserved raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2).
    MaximumSegmentSize(u16),
    /// Window scale shift count (kind 3).
    WindowScale(u8),
    /// Selective acknowledgement permitted (kind 4).
    SackPermitted,
    /// Timestamps (kind 8): TSval and TSecr.
    Timestamps(u32, u32),
    /// No-operation padding (kind 1).
    Nop,
    /// Any other option preserved as (kind, payload).
    Unknown(u8, Vec<u8>),
}

impl TcpOption {
    /// Serialised length of this option in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::MaximumSegmentSize(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps(_, _) => 10,
            TcpOption::Nop => 1,
            TcpOption::Unknown(_, data) => 2 + data.len(),
        }
    }
}

/// A parsed TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window (unscaled).
    pub window: u16,
    /// Urgent pointer (rarely used; preserved).
    pub urgent: u16,
    /// Parsed options in wire order.
    pub options: Vec<TcpOption>,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Creates a segment with empty options and payload.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        Self {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: MOPEYE_RECEIVE_WINDOW,
            urgent: 0,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Returns the MSS option value if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::MaximumSegmentSize(v) => Some(*v),
            _ => None,
        })
    }

    /// Returns the window-scale option value if present.
    pub fn window_scale(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            TcpOption::WindowScale(v) => Some(*v),
            _ => None,
        })
    }

    /// Returns true if this is a bare SYN (no ACK).
    pub fn is_syn(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && !self.flags.contains(TcpFlags::ACK)
    }

    /// Returns true if this is a SYN/ACK.
    pub fn is_syn_ack(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && self.flags.contains(TcpFlags::ACK)
    }

    /// Returns true if this is a pure ACK: ACK set, no payload, no SYN/FIN/RST.
    ///
    /// MopEye discards pure ACKs from the tunnel because there is nothing to
    /// relay to the socket channel (§2.3).
    pub fn is_pure_ack(&self) -> bool {
        self.flags.contains(TcpFlags::ACK)
            && self.payload.is_empty()
            && !self.flags.intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
    }

    /// The number of sequence numbers this segment consumes (payload plus one
    /// for SYN and one for FIN).
    pub fn sequence_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }

    /// Header length in bytes including options and padding.
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(TcpOption::wire_len).sum();
        TCP_MIN_HEADER_LEN + opt_len.div_ceil(4) * 4
    }

    /// Parses a TCP segment from `data` (no checksum verification; the IP
    /// layer caller verifies checksums when it has the pseudo-header).
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < TCP_MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "TCP header",
                needed: TCP_MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let data_offset = usize::from(data[12] >> 4) * 4;
        if data_offset < TCP_MIN_HEADER_LEN || data_offset > data.len() {
            return Err(PacketError::BadHeaderLength(data_offset));
        }
        let options = parse_options(&data[TCP_MIN_HEADER_LEN..data_offset])?;
        Ok(Self {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_bits(data[13] & 0x3f),
            window: u16::from_be_bytes([data[14], data[15]]),
            urgent: u16::from_be_bytes([data[18], data[19]]),
            options,
            payload: data[data_offset..].to_vec(),
        })
    }

    /// Serialises the segment with a zero checksum field.
    ///
    /// Use [`TcpSegment::to_bytes_with_checksum`] when the enclosing IP
    /// addresses are known.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(0)
    }

    /// Serialises the segment and fills in the transport checksum computed
    /// with the pseudo-header for `src`/`dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are not the same IP version.
    pub fn to_bytes_with_checksum(&self, src: IpAddr, dst: IpAddr) -> Vec<u8> {
        let mut bytes = self.encode(0);
        let checksum = match (src, dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => transport_checksum_v4(s, d, crate::IPPROTO_TCP, &bytes),
            (IpAddr::V6(s), IpAddr::V6(d)) => transport_checksum_v6(s, d, crate::IPPROTO_TCP, &bytes),
            _ => panic!("mixed address families in TCP checksum"),
        };
        bytes[16..18].copy_from_slice(&checksum.to_be_bytes());
        bytes
    }

    fn encode(&self, checksum: u16) -> Vec<u8> {
        let header_len = self.header_len();
        let mut out = Vec::with_capacity(header_len + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((header_len / 4) as u8) << 4);
        out.push(self.flags.bits() & 0x3f);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&checksum.to_be_bytes());
        out.extend_from_slice(&self.urgent.to_be_bytes());
        for opt in &self.options {
            encode_option(opt, &mut out);
        }
        while out.len() < header_len {
            out.push(0); // End-of-options padding.
        }
        out.extend_from_slice(&self.payload);
        out
    }
}

fn parse_options(mut data: &[u8]) -> Result<Vec<TcpOption>> {
    let mut options = Vec::new();
    while let Some((&kind, rest)) = data.split_first() {
        match kind {
            0 => break, // End of option list.
            1 => {
                options.push(TcpOption::Nop);
                data = rest;
            }
            _ => {
                let (&len, _) = rest
                    .split_first()
                    .ok_or(PacketError::Truncated { what: "TCP option length", needed: 2, available: 1 })?;
                let len = usize::from(len);
                if len < 2 || len > data.len() {
                    return Err(PacketError::BadHeaderLength(len));
                }
                let body = &data[2..len];
                let opt = match kind {
                    2 if body.len() == 2 => {
                        TcpOption::MaximumSegmentSize(u16::from_be_bytes([body[0], body[1]]))
                    }
                    3 if body.len() == 1 => TcpOption::WindowScale(body[0]),
                    4 if body.is_empty() => TcpOption::SackPermitted,
                    8 if body.len() == 8 => TcpOption::Timestamps(
                        u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    ),
                    _ => TcpOption::Unknown(kind, body.to_vec()),
                };
                options.push(opt);
                data = &data[len..];
            }
        }
    }
    Ok(options)
}

fn encode_option(opt: &TcpOption, out: &mut Vec<u8>) {
    match opt {
        TcpOption::Nop => out.push(1),
        TcpOption::MaximumSegmentSize(mss) => {
            out.extend_from_slice(&[2, 4]);
            out.extend_from_slice(&mss.to_be_bytes());
        }
        TcpOption::WindowScale(shift) => out.extend_from_slice(&[3, 3, *shift]),
        TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
        TcpOption::Timestamps(tsval, tsecr) => {
            out.extend_from_slice(&[8, 10]);
            out.extend_from_slice(&tsval.to_be_bytes());
            out.extend_from_slice(&tsecr.to_be_bytes());
        }
        TcpOption::Unknown(kind, data) => {
            out.push(*kind);
            out.push((data.len() + 2) as u8);
            out.extend_from_slice(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn syn() -> TcpSegment {
        let mut s = TcpSegment::new(40000, 443, 1000, 0, TcpFlags::SYN);
        s.options = vec![
            TcpOption::MaximumSegmentSize(MOPEYE_MSS),
            TcpOption::SackPermitted,
            TcpOption::Nop,
            TcpOption::WindowScale(7),
        ];
        s
    }

    #[test]
    fn roundtrip_syn_with_options() {
        let s = syn();
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.src_port, 40000);
        assert_eq!(parsed.mss(), Some(1460));
        assert_eq!(parsed.window_scale(), Some(7));
        assert!(parsed.is_syn());
        assert!(!parsed.is_syn_ack());
        assert_eq!(parsed.options, s.options);
    }

    #[test]
    fn roundtrip_data_segment() {
        let mut s = TcpSegment::new(40000, 80, 5, 99, TcpFlags::ACK | TcpFlags::PSH);
        s.payload = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.payload, s.payload);
        assert!(!parsed.is_pure_ack());
        assert_eq!(parsed.sequence_len(), s.payload.len() as u32);
    }

    #[test]
    fn pure_ack_detection() {
        let s = TcpSegment::new(1, 2, 10, 20, TcpFlags::ACK);
        assert!(s.is_pure_ack());
        let s = TcpSegment::new(1, 2, 10, 20, TcpFlags::ACK | TcpFlags::FIN);
        assert!(!s.is_pure_ack());
    }

    #[test]
    fn sequence_len_counts_syn_and_fin() {
        assert_eq!(TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN).sequence_len(), 1);
        assert_eq!(TcpSegment::new(1, 2, 0, 0, TcpFlags::FIN | TcpFlags::ACK).sequence_len(), 1);
        let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        s.payload = vec![0; 10];
        assert_eq!(s.sequence_len(), 11);
    }

    #[test]
    fn checksum_is_filled_in() {
        let s = syn();
        let bytes = s.to_bytes_with_checksum(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            IpAddr::V4(Ipv4Addr::new(31, 13, 79, 251)),
        );
        assert_ne!(&bytes[16..18], &[0, 0]);
        // Verifying: checksum over pseudo-header + segment must fold to zero.
        let mut c = crate::checksum::Checksum::new();
        c.add_bytes(&Ipv4Addr::new(10, 0, 0, 2).octets());
        c.add_bytes(&Ipv4Addr::new(31, 13, 79, 251).octets());
        c.add_u16(6);
        c.add_u16(bytes.len() as u16);
        c.add_bytes(&bytes);
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn truncated_and_bad_offset_are_rejected() {
        assert!(TcpSegment::parse(&[0; 10]).is_err());
        let mut bytes = syn().to_bytes();
        bytes[12] = 0x30; // Data offset 12 bytes < 20.
        assert!(matches!(TcpSegment::parse(&bytes), Err(PacketError::BadHeaderLength(12))));
    }

    #[test]
    fn unknown_options_are_preserved() {
        let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        s.options = vec![TcpOption::Unknown(254, vec![1, 2, 3]), TcpOption::Nop, TcpOption::Nop, TcpOption::Nop];
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.options[0], TcpOption::Unknown(254, vec![1, 2, 3]));
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::empty().to_string(), "<none>");
    }

    #[test]
    fn header_len_is_padded_to_words() {
        let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        s.options = vec![TcpOption::WindowScale(2)]; // Three bytes of options.
        assert_eq!(s.header_len(), 24);
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.window_scale(), Some(2));
    }
}
