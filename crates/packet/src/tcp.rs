//! TCP segment parsing and serialisation, including the options MopEye
//! manipulates (MSS and window scale, §3.4 of the paper).

use std::net::IpAddr;

use crate::checksum::{transport_checksum_v4, transport_checksum_v6};
use crate::error::{PacketError, Result};

/// Minimum TCP header length in bytes (no options).
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// The MSS MopEye advertises on the internal (tunnel) connection so that apps
/// send 1500-byte IP packets (§3.4).
pub const MOPEYE_MSS: u16 = 1460;

/// The receive window MopEye advertises: the maximum unscaled value (§3.4).
pub const MOPEYE_RECEIVE_WINDOW: u16 = 65_535;

/// TCP header flags, represented as a transparent bit set.
///
/// A hand-rolled flags type is used instead of the `bitflags` crate to keep
/// the dependency set to the pre-approved list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender has finished sending.
    pub const FIN: Self = Self(0x01);
    /// SYN: synchronise sequence numbers.
    pub const SYN: Self = Self(0x02);
    /// RST: reset the connection.
    pub const RST: Self = Self(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: Self = Self(0x08);
    /// ACK: the acknowledgement number is valid.
    pub const ACK: Self = Self(0x10);
    /// URG: the urgent pointer is valid.
    pub const URG: Self = Self(0x20);

    /// Returns the empty flag set.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Returns the raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Constructs a flag set from raw bits (unknown bits are kept).
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits)
    }

    /// Returns true if `self` contains all flags in `other`.
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns true if `self` and `other` share any flag.
    pub const fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns true if no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for TcpFlags {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        for (flag, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(flag) {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            write!(f, "<none>")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// Inline storage for an unknown TCP option's body.
///
/// A TCP header holds at most 40 option bytes, so an unknown option's body
/// never exceeds 38 bytes. Storing it inline (SmallVec-style) keeps option
/// parsing free of per-option heap allocations — the `to_vec()` the old
/// `Unknown(u8, Vec<u8>)` representation paid on every exotic SYN.
#[derive(Clone, Copy)]
pub struct OptBytes {
    data: [u8; Self::MAX],
    len: u8,
}

impl OptBytes {
    /// Maximum bytes an unknown option body can occupy (40 minus kind+length).
    pub const MAX: usize = 38;

    /// Copies `bytes` into inline storage.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`OptBytes::MAX`] — impossible for data that
    /// came off the wire, and a construction bug otherwise.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= Self::MAX, "TCP option body exceeds 38 bytes");
        let mut data = [0u8; Self::MAX];
        data[..bytes.len()].copy_from_slice(bytes);
        Self { data, len: bytes.len() as u8 }
    }

    /// The stored bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..usize::from(self.len)]
    }

    /// Number of stored bytes.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True if no bytes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for OptBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for OptBytes {
    fn from(bytes: &[u8]) -> Self {
        Self::new(bytes)
    }
}

impl From<Vec<u8>> for OptBytes {
    fn from(bytes: Vec<u8>) -> Self {
        Self::new(&bytes)
    }
}

impl<const N: usize> From<[u8; N]> for OptBytes {
    fn from(bytes: [u8; N]) -> Self {
        Self::new(&bytes)
    }
}

impl PartialEq for OptBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OptBytes {}

impl std::hash::Hash for OptBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for OptBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// Inline storage for the `(left edge, right edge)` blocks of a selective
/// acknowledgement (kind 5) option.
///
/// RFC 2018 caps the option at four blocks (2 + 8·4 = 34 bytes, within the
/// 40-byte option budget), so the blocks always fit inline and
/// [`TcpOption`] stays `Copy` — the same SmallVec-style trade as
/// [`OptBytes`]. Each block is `[left, right)`: `left` is the first sequence
/// number of the sacked run and `right` the sequence number just past it.
#[derive(Clone, Copy)]
pub struct SackBlocks {
    blocks: [(u32, u32); Self::MAX],
    len: u8,
}

impl SackBlocks {
    /// Maximum blocks a SACK option can carry (RFC 2018).
    pub const MAX: usize = 4;

    /// Copies up to [`SackBlocks::MAX`] blocks into inline storage.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` exceeds [`SackBlocks::MAX`] — impossible for data
    /// that came off the wire, and a construction bug otherwise.
    pub fn new(blocks: &[(u32, u32)]) -> Self {
        assert!(blocks.len() <= Self::MAX, "SACK option exceeds 4 blocks");
        let mut data = [(0u32, 0u32); Self::MAX];
        data[..blocks.len()].copy_from_slice(blocks);
        Self { blocks: data, len: blocks.len() as u8 }
    }

    /// The stored blocks.
    pub fn as_slice(&self) -> &[(u32, u32)] {
        &self.blocks[..usize::from(self.len)]
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True if no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for SackBlocks {
    type Target = [(u32, u32)];
    fn deref(&self) -> &[(u32, u32)] {
        self.as_slice()
    }
}

impl From<&[(u32, u32)]> for SackBlocks {
    fn from(blocks: &[(u32, u32)]) -> Self {
        Self::new(blocks)
    }
}

impl<const N: usize> From<[(u32, u32); N]> for SackBlocks {
    fn from(blocks: [(u32, u32); N]) -> Self {
        Self::new(&blocks)
    }
}

impl PartialEq for SackBlocks {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SackBlocks {}

impl std::hash::Hash for SackBlocks {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for SackBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// TCP options relevant to the relay. Unknown options are preserved raw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2).
    MaximumSegmentSize(u16),
    /// Window scale shift count (kind 3).
    WindowScale(u8),
    /// Selective acknowledgement permitted (kind 4).
    SackPermitted,
    /// Selective acknowledgement (kind 5): received-but-not-contiguous
    /// sequence ranges, newest first.
    Sack(SackBlocks),
    /// Timestamps (kind 8): TSval and TSecr.
    Timestamps(u32, u32),
    /// No-operation padding (kind 1).
    Nop,
    /// Any other option preserved as (kind, payload) with inline storage.
    Unknown(u8, OptBytes),
}

/// The option list of a segment, stored as canonical wire bytes inline.
///
/// A TCP header carries at most [`TcpOptions::MAX_BYTES`] option bytes, so
/// the whole list always fits in a 40-byte inline buffer: option parsing and
/// construction never touch the heap, and serialisation is a single memcpy.
/// Options decode on demand through [`TcpOptions::iter`]; every supported
/// option has exactly one wire encoding, so byte equality coincides with
/// option-list equality.
#[derive(Clone, Copy)]
pub struct TcpOptions {
    data: [u8; Self::MAX_BYTES],
    len: u8,
}

impl TcpOptions {
    /// The spec bound: a TCP header holds at most 40 option bytes.
    pub const MAX_BYTES: usize = 40;

    /// Creates an empty list.
    pub const fn new() -> Self {
        Self { data: [0; Self::MAX_BYTES], len: 0 }
    }

    /// Builds a list from already-validated wire bytes (no end-of-list
    /// marker or padding included).
    #[inline]
    pub(crate) fn from_wire(bytes: &[u8]) -> Self {
        debug_assert!(bytes.len() <= Self::MAX_BYTES);
        let mut data = [0u8; Self::MAX_BYTES];
        data[..bytes.len()].copy_from_slice(bytes);
        Self { data, len: bytes.len() as u8 }
    }

    /// Appends an option, storing its canonical wire encoding.
    ///
    /// # Panics
    ///
    /// Panics if the list would exceed the 40-byte spec bound.
    pub fn push(&mut self, opt: TcpOption) {
        let start = usize::from(self.len);
        let needed = opt.wire_len();
        assert!(start + needed <= Self::MAX_BYTES, "TCP options exceed 40 bytes");
        let out = &mut self.data[start..start + needed];
        match opt {
            TcpOption::Nop => out[0] = 1,
            TcpOption::MaximumSegmentSize(mss) => {
                out[0] = 2;
                out[1] = 4;
                out[2..4].copy_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => {
                out[0] = 3;
                out[1] = 3;
                out[2] = shift;
            }
            TcpOption::SackPermitted => {
                out[0] = 4;
                out[1] = 2;
            }
            TcpOption::Sack(blocks) => {
                out[0] = 5;
                out[1] = (2 + 8 * blocks.len()) as u8;
                for (i, (left, right)) in blocks.as_slice().iter().enumerate() {
                    out[2 + 8 * i..6 + 8 * i].copy_from_slice(&left.to_be_bytes());
                    out[6 + 8 * i..10 + 8 * i].copy_from_slice(&right.to_be_bytes());
                }
            }
            TcpOption::Timestamps(tsval, tsecr) => {
                out[0] = 8;
                out[1] = 10;
                out[2..6].copy_from_slice(&tsval.to_be_bytes());
                out[6..10].copy_from_slice(&tsecr.to_be_bytes());
            }
            TcpOption::Unknown(kind, body) => {
                out[0] = kind;
                out[1] = (body.len() + 2) as u8;
                out[2..].copy_from_slice(body.as_slice());
            }
        }
        self.len += needed as u8;
    }

    /// The canonical wire bytes of the list (no padding).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..usize::from(self.len)]
    }

    /// Serialised length of the list in bytes, before word padding.
    pub fn byte_len(&self) -> usize {
        usize::from(self.len)
    }

    /// True if the list holds no options.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes the options in wire order.
    pub fn iter(&self) -> TcpOptionsIter<'_> {
        TcpOptionsIter { inner: crate::view::TcpOptionIter::over(self.as_bytes()) }
    }

    /// Decodes the `index`-th option, if present.
    pub fn get(&self, index: usize) -> Option<TcpOption> {
        self.iter().nth(index)
    }
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for TcpOptions {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for TcpOptions {}

impl std::hash::Hash for TcpOptions {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl std::fmt::Debug for TcpOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl From<Vec<TcpOption>> for TcpOptions {
    fn from(options: Vec<TcpOption>) -> Self {
        options.into_iter().collect()
    }
}

impl<const N: usize> From<[TcpOption; N]> for TcpOptions {
    fn from(options: [TcpOption; N]) -> Self {
        options.into_iter().collect()
    }
}

impl FromIterator<TcpOption> for TcpOptions {
    fn from_iter<I: IntoIterator<Item = TcpOption>>(iter: I) -> Self {
        let mut list = Self::new();
        for opt in iter {
            list.push(opt);
        }
        list
    }
}

impl<'a> IntoIterator for &'a TcpOptions {
    type Item = TcpOption;
    type IntoIter = TcpOptionsIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Decoding iterator over [`TcpOptions`]. Infallible: the bytes were
/// validated when the list was built. Delegates to the zero-copy
/// [`crate::view::TcpOptionIter`] so there is exactly one option-decode
/// table in the crate.
#[derive(Debug, Clone)]
pub struct TcpOptionsIter<'a> {
    inner: crate::view::TcpOptionIter<'a>,
}

impl Iterator for TcpOptionsIter<'_> {
    type Item = TcpOption;

    fn next(&mut self) -> Option<TcpOption> {
        self.inner.next().map(|o| o.to_owned())
    }
}

impl TcpOption {
    /// Serialised length of this option in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::MaximumSegmentSize(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack(blocks) => 2 + 8 * blocks.len(),
            TcpOption::Timestamps(_, _) => 10,
            TcpOption::Nop => 1,
            TcpOption::Unknown(_, data) => 2 + data.len(),
        }
    }
}

/// A parsed TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window (unscaled).
    pub window: u16,
    /// Urgent pointer (rarely used; preserved).
    pub urgent: u16,
    /// Parsed options in wire order (inline storage, no heap for ≤6 options).
    pub options: TcpOptions,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Creates a segment with empty options and payload.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        Self {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: MOPEYE_RECEIVE_WINDOW,
            urgent: 0,
            options: TcpOptions::new(),
            payload: Vec::new(),
        }
    }

    /// Returns the MSS option value if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::MaximumSegmentSize(v) => Some(v),
            _ => None,
        })
    }

    /// Returns the window-scale option value if present.
    pub fn window_scale(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            TcpOption::WindowScale(v) => Some(v),
            _ => None,
        })
    }

    /// Returns the selective-acknowledgement blocks if a SACK option (kind 5)
    /// is present.
    pub fn sack_blocks(&self) -> Option<SackBlocks> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Sack(blocks) => Some(blocks),
            _ => None,
        })
    }

    /// Returns true if this is a bare SYN (no ACK).
    pub fn is_syn(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && !self.flags.contains(TcpFlags::ACK)
    }

    /// Returns true if this is a SYN/ACK.
    pub fn is_syn_ack(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && self.flags.contains(TcpFlags::ACK)
    }

    /// Returns true if this is a pure ACK: ACK set, no payload, no SYN/FIN/RST.
    ///
    /// MopEye discards pure ACKs from the tunnel because there is nothing to
    /// relay to the socket channel (§2.3).
    pub fn is_pure_ack(&self) -> bool {
        self.flags.contains(TcpFlags::ACK)
            && self.payload.is_empty()
            && !self.flags.intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
    }

    /// The number of sequence numbers this segment consumes (payload plus one
    /// for SYN and one for FIN).
    pub fn sequence_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }

    /// Header length in bytes including options and padding.
    pub fn header_len(&self) -> usize {
        TCP_MIN_HEADER_LEN + self.options.byte_len().div_ceil(4) * 4
    }

    /// Parses a TCP segment from `data` (no checksum verification; the IP
    /// layer caller verifies checksums when it has the pseudo-header).
    ///
    /// A thin wrapper over the zero-copy [`crate::view::TcpSegmentView`],
    /// which owns the validation logic.
    pub fn parse(data: &[u8]) -> Result<Self> {
        Ok(crate::view::TcpSegmentView::new(data)?.to_owned())
    }

    /// Total serialised length in bytes (header, options, padding, payload).
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// Serialises the segment with a zero checksum field.
    ///
    /// Use [`TcpSegment::to_bytes_with_checksum`] when the enclosing IP
    /// addresses are known.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Serialises the segment and fills in the transport checksum computed
    /// with the pseudo-header for `src`/`dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are not the same IP version.
    pub fn to_bytes_with_checksum(&self, src: IpAddr, dst: IpAddr) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_with_checksum_into(src, dst, &mut out);
        out
    }

    /// Appends the serialised segment (zero checksum field) to `out`.
    ///
    /// The buffer is not cleared, so a caller composing an IP packet can
    /// write the network header first and the segment after it. With a
    /// warmed, reused buffer this performs no allocations.
    #[inline]
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let header_len = self.header_len();
        out.reserve(self.wire_len());
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((header_len / 4) as u8) << 4);
        out.push(self.flags.bits() & 0x3f);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // Checksum placeholder.
        out.extend_from_slice(&self.urgent.to_be_bytes());
        out.extend_from_slice(self.options.as_bytes());
        while out.len() - start < header_len {
            out.push(0); // End-of-options padding.
        }
        out.extend_from_slice(&self.payload);
    }

    /// Appends the serialised segment to `out` and patches in the transport
    /// checksum computed with the pseudo-header for `src`/`dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are not the same IP version.
    #[inline]
    pub fn encode_with_checksum_into(&self, src: IpAddr, dst: IpAddr, out: &mut Vec<u8>) {
        let start = out.len();
        self.encode_into(out);
        let checksum = match (src, dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                transport_checksum_v4(s, d, crate::IPPROTO_TCP, &out[start..])
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                transport_checksum_v6(s, d, crate::IPPROTO_TCP, &out[start..])
            }
            _ => panic!("mixed address families in TCP checksum"),
        };
        out[start + 16..start + 18].copy_from_slice(&checksum.to_be_bytes());
    }
}

/// Validates the option region and returns how many leading bytes hold real
/// options (everything before an end-of-list marker or padding).
///
/// Shared by [`TcpSegment::parse`] and the zero-copy
/// [`crate::view::TcpSegmentView`], so both reject exactly the same inputs.
pub(crate) fn validate_options(region: &[u8]) -> Result<usize> {
    let mut data = region;
    while let Some((&kind, rest)) = data.split_first() {
        match kind {
            0 => break, // End of option list.
            1 => data = rest,
            _ => {
                let (&len, _) = rest.split_first().ok_or(PacketError::Truncated {
                    what: "TCP option length",
                    needed: 2,
                    available: 1,
                })?;
                let len = usize::from(len);
                if len < 2 || len > data.len() {
                    return Err(PacketError::BadHeaderLength(len));
                }
                data = &data[len..];
            }
        }
    }
    Ok(region.len() - data.len())
}


#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn syn() -> TcpSegment {
        let mut s = TcpSegment::new(40000, 443, 1000, 0, TcpFlags::SYN);
        s.options = vec![
            TcpOption::MaximumSegmentSize(MOPEYE_MSS),
            TcpOption::SackPermitted,
            TcpOption::Nop,
            TcpOption::WindowScale(7),
        ].into();
        s
    }

    #[test]
    fn roundtrip_syn_with_options() {
        let s = syn();
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.src_port, 40000);
        assert_eq!(parsed.mss(), Some(1460));
        assert_eq!(parsed.window_scale(), Some(7));
        assert!(parsed.is_syn());
        assert!(!parsed.is_syn_ack());
        assert_eq!(parsed.options, s.options);
    }

    #[test]
    fn roundtrip_data_segment() {
        let mut s = TcpSegment::new(40000, 80, 5, 99, TcpFlags::ACK | TcpFlags::PSH);
        s.payload = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.payload, s.payload);
        assert!(!parsed.is_pure_ack());
        assert_eq!(parsed.sequence_len(), s.payload.len() as u32);
    }

    #[test]
    fn pure_ack_detection() {
        let s = TcpSegment::new(1, 2, 10, 20, TcpFlags::ACK);
        assert!(s.is_pure_ack());
        let s = TcpSegment::new(1, 2, 10, 20, TcpFlags::ACK | TcpFlags::FIN);
        assert!(!s.is_pure_ack());
    }

    #[test]
    fn sequence_len_counts_syn_and_fin() {
        assert_eq!(TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN).sequence_len(), 1);
        assert_eq!(TcpSegment::new(1, 2, 0, 0, TcpFlags::FIN | TcpFlags::ACK).sequence_len(), 1);
        let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        s.payload = vec![0; 10];
        assert_eq!(s.sequence_len(), 11);
    }

    #[test]
    fn checksum_is_filled_in() {
        let s = syn();
        let bytes = s.to_bytes_with_checksum(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            IpAddr::V4(Ipv4Addr::new(31, 13, 79, 251)),
        );
        assert_ne!(&bytes[16..18], &[0, 0]);
        // Verifying: checksum over pseudo-header + segment must fold to zero.
        let mut c = crate::checksum::Checksum::new();
        c.add_bytes(&Ipv4Addr::new(10, 0, 0, 2).octets());
        c.add_bytes(&Ipv4Addr::new(31, 13, 79, 251).octets());
        c.add_u16(6);
        c.add_u16(bytes.len() as u16);
        c.add_bytes(&bytes);
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn truncated_and_bad_offset_are_rejected() {
        assert!(TcpSegment::parse(&[0; 10]).is_err());
        let mut bytes = syn().to_bytes();
        bytes[12] = 0x30; // Data offset 12 bytes < 20.
        assert!(matches!(TcpSegment::parse(&bytes), Err(PacketError::BadHeaderLength(12))));
    }

    #[test]
    fn unknown_options_are_preserved() {
        let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        s.options = vec![
            TcpOption::Unknown(254, [1, 2, 3].into()),
            TcpOption::Nop,
            TcpOption::Nop,
            TcpOption::Nop,
        ].into();
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.options.get(0), Some(TcpOption::Unknown(254, [1, 2, 3].into())));
    }

    #[test]
    fn sack_option_roundtrips_and_is_accessible() {
        // A dup-ACK the way the app side emits it: pure ACK carrying the
        // received-but-not-contiguous ranges.
        let mut s = TcpSegment::new(40000, 443, 10, 5000, TcpFlags::ACK);
        let blocks = SackBlocks::from([(6460, 7920), (9380, 10840)]);
        s.options = vec![TcpOption::Nop, TcpOption::Nop, TcpOption::Sack(blocks)].into();
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.sack_blocks(), Some(blocks));
        assert_eq!(parsed.options, s.options);
        assert!(parsed.is_pure_ack(), "SACK blocks do not stop a segment being a pure ACK");
    }

    #[test]
    fn sack_option_wire_format_is_rfc_2018() {
        let mut opts = TcpOptions::new();
        opts.push(TcpOption::Sack([(1, 2)].into()));
        assert_eq!(opts.as_bytes(), &[5, 10, 0, 0, 0, 1, 0, 0, 0, 2]);
        // Four blocks is the cap and still fits the 40-byte budget.
        let full = TcpOption::Sack([(1, 2), (3, 4), (5, 6), (7, 8)].into());
        assert_eq!(full.wire_len(), 34);
        let mut opts = TcpOptions::new();
        opts.push(full);
        assert_eq!(opts.byte_len(), 34);
        assert_eq!(opts.get(0), Some(full));
    }

    #[test]
    #[should_panic(expected = "SACK option exceeds 4 blocks")]
    fn more_than_four_sack_blocks_is_a_construction_bug() {
        let _ = SackBlocks::new(&[(0, 1); 5]);
    }

    #[test]
    fn malformed_sack_bodies_fall_back_to_unknown() {
        // Kind 5 with a body that is not a positive multiple of 8 decodes as
        // Unknown (preserved raw), exactly like any other exotic option.
        let wire = [5u8, 5, 1, 2, 3, 1, 1, 1]; // Length 5 → 3-byte body + NOPs.
        let parsed = TcpSegment::parse(
            &{
                let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::ACK);
                s.options = TcpOptions::from_wire(&wire);
                s
            }
            .to_bytes(),
        )
        .unwrap();
        assert_eq!(parsed.options.get(0), Some(TcpOption::Unknown(5, [1, 2, 3].into())));
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::empty().to_string(), "<none>");
    }

    #[test]
    fn header_len_is_padded_to_words() {
        let mut s = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        s.options = vec![TcpOption::WindowScale(2)].into(); // Three bytes of options.
        assert_eq!(s.header_len(), 24);
        let parsed = TcpSegment::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed.window_scale(), Some(2));
    }
}
