//! Error types shared by the packet parsers.

/// Result alias used throughout `mop-packet`.
pub type Result<T> = std::result::Result<T, PacketError>;

/// Errors produced while parsing or serialising packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is shorter than the minimum size for the claimed format.
    Truncated {
        /// What was being parsed when the buffer ran out.
        what: &'static str,
        /// How many bytes were required.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The IP version nibble is not 4 or 6, or does not match the parser used.
    BadVersion(u8),
    /// The header length field describes a header smaller than the fixed part
    /// or larger than the buffer.
    BadHeaderLength(usize),
    /// A checksum did not verify.
    BadChecksum {
        /// Which header failed.
        what: &'static str,
        /// The checksum found in the packet.
        found: u16,
        /// The checksum computed over the packet.
        expected: u16,
    },
    /// The transport protocol is not one the relay supports.
    UnsupportedProtocol(u8),
    /// A DNS message was malformed (bad label, bad pointer, truncated record).
    MalformedDns(&'static str),
    /// A field value is out of the representable range for the wire format.
    FieldOverflow(&'static str),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated { what, needed, available } => {
                write!(f, "truncated {what}: need {needed} bytes, have {available}")
            }
            PacketError::BadVersion(v) => write!(f, "unexpected IP version {v}"),
            PacketError::BadHeaderLength(l) => write!(f, "invalid header length {l}"),
            PacketError::BadChecksum { what, found, expected } => {
                write!(f, "bad {what} checksum: found {found:#06x}, expected {expected:#06x}")
            }
            PacketError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            PacketError::MalformedDns(why) => write!(f, "malformed DNS message: {why}"),
            PacketError::FieldOverflow(what) => write!(f, "field overflow: {what}"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PacketError::Truncated { what: "TCP header", needed: 20, available: 3 };
        assert!(e.to_string().contains("TCP header"));
        assert!(e.to_string().contains("20"));
        let e = PacketError::BadChecksum { what: "IPv4", found: 1, expected: 2 };
        assert!(e.to_string().contains("IPv4"));
        let e = PacketError::MalformedDns("label too long");
        assert!(e.to_string().contains("label too long"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(PacketError::BadVersion(9));
    }
}
