//! IPv4 header parsing and serialisation.

use std::net::Ipv4Addr;

use crate::checksum::ipv4_header_checksum;
use crate::error::Result;

/// Minimum IPv4 header length in bytes (no options).
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// A parsed IPv4 packet: header fields plus the transport payload.
///
/// Options are preserved verbatim so that a parse → serialise round trip is
/// byte-identical, which the relay depends on when forwarding packets it does
/// not need to rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Differentiated services / TOS byte.
    pub dscp_ecn: u8,
    /// Identification field used for fragmentation.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits) packed as on the wire.
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw IPv4 options (may be empty); length must be a multiple of 4.
    pub options: Vec<u8>,
    /// Transport-layer payload (TCP segment or UDP datagram bytes).
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Creates a packet with common defaults (TTL 64, DF set, no options).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: Vec<u8>) -> Self {
        Self {
            dscp_ecn: 0,
            identification: 0,
            flags_fragment: 0x4000, // Don't Fragment.
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
            payload,
        }
    }

    /// Header length in bytes, including options.
    pub fn header_len(&self) -> usize {
        IPV4_MIN_HEADER_LEN + self.options.len()
    }

    /// Total packet length (header plus payload) in bytes.
    pub fn total_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// Returns true if the Don't Fragment flag is set.
    pub fn dont_fragment(&self) -> bool {
        self.flags_fragment & 0x4000 != 0
    }

    /// Returns true if the More Fragments flag is set.
    pub fn more_fragments(&self) -> bool {
        self.flags_fragment & 0x2000 != 0
    }

    /// Parses an IPv4 packet from `data`, verifying the header checksum.
    ///
    /// The payload length is taken from the total-length field; trailing
    /// bytes beyond it (link-layer padding) are ignored. A thin wrapper over
    /// the zero-copy [`crate::view::Ipv4View`], which owns the validation
    /// logic.
    pub fn parse(data: &[u8]) -> Result<Self> {
        Ok(crate::view::Ipv4View::new(data)?.to_owned())
    }

    /// Serialises the packet, computing the header checksum.
    ///
    /// # Panics
    ///
    /// Panics if the options length is not a multiple of four or the total
    /// length exceeds 65,535 bytes; both indicate construction bugs rather
    /// than recoverable runtime conditions.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        self.encode_header_into(&mut out, self.payload.len());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Appends the IPv4 header (with checksum) to `out`, declaring a payload
    /// of `payload_len` bytes that the caller will write after it.
    ///
    /// This is the zero-copy building block: a composed packet writes the
    /// header first and serialises the transport layer straight after it in
    /// the same buffer, so no intermediate payload vector exists.
    ///
    /// # Panics
    ///
    /// Panics if the options length is not a multiple of four or the total
    /// length exceeds 65,535 bytes; both indicate construction bugs rather
    /// than recoverable runtime conditions.
    pub fn encode_header_into(&self, out: &mut Vec<u8>, payload_len: usize) {
        assert!(self.options.len() % 4 == 0, "IPv4 options must be 32-bit aligned");
        let ihl = self.header_len();
        let total_len = ihl + payload_len;
        assert!(total_len <= usize::from(u16::MAX), "IPv4 packet too large");
        out.reserve(total_len);
        let start = out.len();
        out.push(0x40 | ((ihl / 4) as u8));
        out.push(self.dscp_ecn);
        out.extend_from_slice(&(total_len as u16).to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        out.extend_from_slice(&self.flags_fragment.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // Checksum placeholder.
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.options);
        let checksum = ipv4_header_checksum(&out[start..start + ihl]);
        out[start + 10..start + 12].copy_from_slice(&checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IPPROTO_TCP;
    use crate::error::PacketError;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(216, 58, 221, 132),
            IPPROTO_TCP,
            vec![1, 2, 3, 4, 5],
        )
    }

    #[test]
    fn roundtrip_without_options() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 25);
        let q = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_options() {
        let mut p = sample();
        p.options = vec![0x01, 0x01, 0x01, 0x01]; // Four NOPs.
        let q = Ipv4Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.header_len(), 24);
    }

    #[test]
    fn trailing_padding_is_ignored() {
        let p = sample();
        let mut bytes = p.to_bytes();
        bytes.extend_from_slice(&[0xaa; 6]);
        let q = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[10] ^= 0xff;
        assert!(matches!(
            Ipv4Packet::parse(&bytes),
            Err(PacketError::BadChecksum { what: "IPv4 header", .. })
        ));
    }

    #[test]
    fn short_buffer_is_rejected() {
        assert!(matches!(
            Ipv4Packet::parse(&[0x45; 10]),
            Err(PacketError::Truncated { what: "IPv4 header", .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x65;
        assert!(matches!(Ipv4Packet::parse(&bytes), Err(PacketError::BadVersion(6))));
    }

    #[test]
    fn bad_ihl_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x44; // IHL of 16 bytes, below the minimum of 20.
        assert!(matches!(Ipv4Packet::parse(&bytes), Err(PacketError::BadHeaderLength(16))));
    }

    #[test]
    fn total_length_larger_than_buffer_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[2..4].copy_from_slice(&1000u16.to_be_bytes());
        // Fix up the checksum so the failure is attributed to the length.
        let ihl = 20;
        let cks = ipv4_header_checksum(&bytes[..ihl]);
        bytes[10..12].copy_from_slice(&cks.to_be_bytes());
        assert!(matches!(Ipv4Packet::parse(&bytes), Err(PacketError::Truncated { .. })));
    }

    #[test]
    fn default_flags() {
        let p = sample();
        assert!(p.dont_fragment());
        assert!(!p.more_fragments());
        assert_eq!(p.ttl, 64);
    }
}
