//! Packet parsing and construction for the MopEye reproduction.
//!
//! MopEye intercepts raw IP packets from a TUN interface, parses them to find
//! the transport endpoints, terminates TCP against a user-space state machine
//! and relays the payload over regular sockets. This crate provides the wire
//! formats that the whole pipeline operates on:
//!
//! * [`Ipv4Packet`] / [`Ipv6Packet`] — network-layer headers and payloads,
//! * [`TcpSegment`] — TCP header, options (MSS, window scale) and payload,
//! * [`UdpDatagram`] — UDP header and payload,
//! * [`dns`] — just enough of the DNS wire format for query/response
//!   measurement,
//! * [`Packet`] — a fully parsed packet as captured from the tunnel,
//! * [`builder`] — convenience constructors for the packet sequences the
//!   simulated apps and the TCP state machine emit.
//!
//! Everything round-trips: `parse(bytes).to_bytes() == bytes` for well-formed
//! input, which is enforced by property tests.
//!
//! # Examples
//!
//! Parse a packet an app wrote into the tunnel without copying its payload:
//!
//! ```
//! use mop_packet::{Endpoint, PacketBuilder, PacketView, TransportView};
//!
//! let app = PacketBuilder::new(
//!     Endpoint::v4(10, 0, 0, 2, 40_000),
//!     Endpoint::v4(216, 58, 221, 132, 443),
//! );
//! let bytes = app.tcp_syn(1000).to_bytes();
//! let view = PacketView::parse(&bytes).unwrap();
//! let flow = view.four_tuple().unwrap();
//! assert_eq!(flow.dst.port, 443);
//! assert!(matches!(view.transport(), TransportView::Tcp(_)));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod dns;
pub mod error;
pub mod hash;
pub mod ipv4;
pub mod ipv6;
pub mod packet;
pub mod tcp;
pub mod udp;
pub mod view;

pub use builder::PacketBuilder;
pub use dns::{DnsFlags, DnsMessage, DnsQuestion, DnsRecord, DnsRecordData, DnsType};
pub use error::{PacketError, Result};
pub use hash::StableHasher;
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use packet::{IpPacket, Packet, Transport};
pub use tcp::{OptBytes, SackBlocks, TcpFlags, TcpOption, TcpSegment};
pub use udp::UdpDatagram;
pub use view::{
    IpView, Ipv4View, Ipv6View, PacketView, TcpOptionIter, TcpOptionRef, TcpSegmentView,
    TransportView, UdpView,
};

/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// A transport-layer endpoint: an IP address plus a port.
///
/// MopEye keys its TCP clients and its packet-to-app mapping on
/// (source endpoint, destination endpoint) pairs, so this type is used
/// pervasively across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// The IP address of the endpoint.
    pub addr: std::net::IpAddr,
    /// The transport port of the endpoint.
    pub port: u16,
}

impl Endpoint {
    /// Creates a new endpoint from an address and a port.
    pub fn new(addr: impl Into<std::net::IpAddr>, port: u16) -> Self {
        Self { addr: addr.into(), port }
    }

    /// Creates an IPv4 endpoint from four octets and a port.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        Self { addr: std::net::IpAddr::V4(std::net::Ipv4Addr::new(a, b, c, d)), port }
    }

    /// Returns true if the endpoint uses an IPv4 address.
    pub fn is_ipv4(&self) -> bool {
        self.addr.is_ipv4()
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// A connection four-tuple (source endpoint, destination endpoint).
///
/// This is the key MopEye uses both for splicing tunnel connections onto
/// socket connections and for looking up the owning app in `/proc/net`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourTuple {
    /// The local (app-side) endpoint.
    pub src: Endpoint,
    /// The remote (server-side) endpoint.
    pub dst: Endpoint,
}

impl FourTuple {
    /// Creates a new four-tuple.
    pub fn new(src: Endpoint, dst: Endpoint) -> Self {
        Self { src, dst }
    }

    /// Returns the tuple with source and destination swapped.
    ///
    /// Useful for matching the return direction of a flow.
    pub fn reversed(&self) -> Self {
        Self { src: self.dst, dst: self.src }
    }

    /// The direction-normalised form of the tuple: the same value for a flow
    /// and its reverse, so both directions of a connection key the same
    /// per-connection state.
    ///
    /// ```
    /// use mop_packet::{Endpoint, FourTuple};
    /// let t = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40_000), Endpoint::v4(8, 8, 8, 8, 53));
    /// assert_eq!(t.canonical(), t.reversed().canonical());
    /// ```
    pub fn canonical(&self) -> Self {
        if (self.src, self.dst) <= (self.dst, self.src) {
            *self
        } else {
            self.reversed()
        }
    }

    /// A platform- and process-stable 64-bit hash of the tuple (FNV-1a over
    /// the address bytes and ports, finished with an avalanche mix so the
    /// low bits are usable as a modulo shard index).
    ///
    /// Unlike [`std::hash::Hash`] (whose `HashMap` hasher is seeded per
    /// process on some configurations), this value is reproducible across
    /// runs, machines and toolchains, which is what makes it usable as a
    /// *shard key*: a fleet engine hashes every connection four-tuple with
    /// `stable_hash() % shards` and the assignment never changes between
    /// runs.
    ///
    /// ```
    /// use mop_packet::{Endpoint, FourTuple};
    /// let t = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40_000), Endpoint::v4(8, 8, 8, 8, 53));
    /// assert_eq!(t.stable_hash(), t.stable_hash());
    /// assert_ne!(t.stable_hash(), t.reversed().stable_hash());
    /// ```
    pub fn stable_hash(&self) -> u64 {
        let mut hasher = StableHasher::new();
        for endpoint in [&self.src, &self.dst] {
            match endpoint.addr {
                std::net::IpAddr::V4(v4) => {
                    hasher.write_u8(4);
                    hasher.write_bytes(&v4.octets());
                }
                std::net::IpAddr::V6(v6) => {
                    hasher.write_u8(6);
                    hasher.write_bytes(&v6.octets());
                }
            }
            hasher.write_bytes(&endpoint.port.to_be_bytes());
        }
        hasher.finish_mixed()
    }
}

impl std::fmt::Display for FourTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn endpoint_display_and_helpers() {
        let e = Endpoint::v4(10, 0, 0, 2, 443);
        assert_eq!(e.to_string(), "10.0.0.2:443");
        assert!(e.is_ipv4());
        let e6 = Endpoint::new(std::net::Ipv6Addr::LOCALHOST, 53);
        assert!(!e6.is_ipv4());
    }

    #[test]
    fn four_tuple_reverse_roundtrip() {
        let t = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(8, 8, 8, 8, 53));
        assert_eq!(t.reversed().reversed(), t);
        assert_eq!(t.reversed().src.port, 53);
    }

    #[test]
    fn endpoint_from_ipaddr() {
        let e = Endpoint::new(Ipv4Addr::new(1, 2, 3, 4), 80);
        assert_eq!(e.port, 80);
        assert_eq!(e.to_string(), "1.2.3.4:80");
    }

    #[test]
    fn four_tuple_ordering_is_total() {
        let a = FourTuple::new(Endpoint::v4(1, 1, 1, 1, 1), Endpoint::v4(2, 2, 2, 2, 2));
        let b = FourTuple::new(Endpoint::v4(1, 1, 1, 1, 2), Endpoint::v4(2, 2, 2, 2, 2));
        assert!(a < b);
    }
}
