//! A compact DNS wire-format codec.
//!
//! MopEye measures DNS RTT by timing the gap between a UDP query and its
//! response (§2.4). The relay therefore needs to parse queries well enough to
//! extract the queried name (for the per-domain analysis in §4.2) and to match
//! responses to queries by transaction id. This module implements the subset
//! of RFC 1035 required for that: headers, questions, and A/AAAA/CNAME answer
//! records, including name compression on the parse path.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::{PacketError, Result};

/// Maximum length of a single DNS label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full domain name on the wire.
pub const MAX_NAME_LEN: usize = 255;

/// DNS record/query types the measurement pipeline cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsType {
    /// IPv4 host address.
    A,
    /// IPv6 host address.
    Aaaa,
    /// Canonical name.
    Cname,
    /// Any other type, preserved numerically.
    Other(u16),
}

impl DnsType {
    /// Returns the wire value of the type.
    pub fn to_u16(self) -> u16 {
        match self {
            DnsType::A => 1,
            DnsType::Cname => 5,
            DnsType::Aaaa => 28,
            DnsType::Other(v) => v,
        }
    }

    /// Builds a type from its wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => DnsType::A,
            5 => DnsType::Cname,
            28 => DnsType::Aaaa,
            other => DnsType::Other(other),
        }
    }
}

/// Header flags of a DNS message (a simplified view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsFlags {
    /// True for responses, false for queries.
    pub response: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available (responses only).
    pub recursion_available: bool,
    /// Response code (0 = NOERROR, 3 = NXDOMAIN, ...).
    pub rcode: u8,
}

impl Default for DnsFlags {
    fn default() -> Self {
        Self { response: false, recursion_desired: true, recursion_available: false, rcode: 0 }
    }
}

impl DnsFlags {
    fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.response {
            v |= 0x8000;
        }
        if self.recursion_desired {
            v |= 0x0100;
        }
        if self.recursion_available {
            v |= 0x0080;
        }
        v |= u16::from(self.rcode & 0x0f);
        v
    }

    fn from_u16(v: u16) -> Self {
        Self {
            response: v & 0x8000 != 0,
            recursion_desired: v & 0x0100 != 0,
            recursion_available: v & 0x0080 != 0,
            rcode: (v & 0x000f) as u8,
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// The queried domain name, lower-case, without a trailing dot.
    pub name: String,
    /// The query type.
    pub qtype: DnsType,
}

/// The data carried by an answer record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsRecordData {
    /// An IPv4 address (A record).
    A(Ipv4Addr),
    /// An IPv6 address (AAAA record).
    Aaaa(Ipv6Addr),
    /// A canonical name.
    Cname(String),
    /// Raw bytes of any other record type.
    Raw(Vec<u8>),
}

/// An answer-section resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// The record owner name.
    pub name: String,
    /// The record type.
    pub rtype: DnsType,
    /// Time to live in seconds.
    pub ttl: u32,
    /// The record data.
    pub data: DnsRecordData,
}

/// A DNS message (query or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id used to match responses to queries.
    pub id: u16,
    /// Header flags.
    pub flags: DnsFlags,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Builds an A-record query for `name`.
    pub fn query(id: u16, name: &str) -> Self {
        Self {
            id,
            flags: DnsFlags::default(),
            questions: vec![DnsQuestion { name: name.to_ascii_lowercase(), qtype: DnsType::A }],
            answers: Vec::new(),
        }
    }

    /// Builds a response to `query` answering with `addrs`.
    pub fn answer(query: &DnsMessage, addrs: &[Ipv4Addr], ttl: u32) -> Self {
        let name = query.questions.first().map(|q| q.name.clone()).unwrap_or_default();
        Self {
            id: query.id,
            flags: DnsFlags {
                response: true,
                recursion_desired: query.flags.recursion_desired,
                recursion_available: true,
                rcode: 0,
            },
            questions: query.questions.clone(),
            answers: addrs
                .iter()
                .map(|a| DnsRecord {
                    name: name.clone(),
                    rtype: DnsType::A,
                    ttl,
                    data: DnsRecordData::A(*a),
                })
                .collect(),
        }
    }

    /// Builds an NXDOMAIN response to `query`.
    pub fn nxdomain(query: &DnsMessage) -> Self {
        Self {
            id: query.id,
            flags: DnsFlags { response: true, recursion_desired: true, recursion_available: true, rcode: 3 },
            questions: query.questions.clone(),
            answers: Vec::new(),
        }
    }

    /// Returns the first queried name, if any.
    pub fn queried_name(&self) -> Option<&str> {
        self.questions.first().map(|q| q.name.as_str())
    }

    /// Returns all IPv4 addresses present in the answer section.
    pub fn a_records(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.data {
                DnsRecordData::A(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// Parses a DNS message from a UDP payload.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < 12 {
            return Err(PacketError::Truncated { what: "DNS header", needed: 12, available: data.len() });
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = DnsFlags::from_u16(u16::from_be_bytes([data[2], data[3]]));
        let qdcount = u16::from_be_bytes([data[4], data[5]]);
        let ancount = u16::from_be_bytes([data[6], data[7]]);
        let mut offset = 12;
        let mut questions = Vec::with_capacity(usize::from(qdcount));
        for _ in 0..qdcount {
            let (name, next) = read_name(data, offset)?;
            if next + 4 > data.len() {
                return Err(PacketError::MalformedDns("question truncated"));
            }
            let qtype = DnsType::from_u16(u16::from_be_bytes([data[next], data[next + 1]]));
            offset = next + 4; // Skip type and class.
            questions.push(DnsQuestion { name, qtype });
        }
        let mut answers = Vec::with_capacity(usize::from(ancount));
        for _ in 0..ancount {
            let (name, next) = read_name(data, offset)?;
            if next + 10 > data.len() {
                return Err(PacketError::MalformedDns("record header truncated"));
            }
            let rtype = DnsType::from_u16(u16::from_be_bytes([data[next], data[next + 1]]));
            let ttl = u32::from_be_bytes([data[next + 4], data[next + 5], data[next + 6], data[next + 7]]);
            let rdlen = usize::from(u16::from_be_bytes([data[next + 8], data[next + 9]]));
            let rdata_start = next + 10;
            if rdata_start + rdlen > data.len() {
                return Err(PacketError::MalformedDns("record data truncated"));
            }
            let rdata = &data[rdata_start..rdata_start + rdlen];
            let record_data = match rtype {
                DnsType::A if rdlen == 4 => {
                    DnsRecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
                }
                DnsType::Aaaa if rdlen == 16 => {
                    let mut o = [0u8; 16];
                    o.copy_from_slice(rdata);
                    DnsRecordData::Aaaa(Ipv6Addr::from(o))
                }
                DnsType::Cname => {
                    let (cname, _) = read_name(data, rdata_start)?;
                    DnsRecordData::Cname(cname)
                }
                _ => DnsRecordData::Raw(rdata.to_vec()),
            };
            answers.push(DnsRecord { name, rtype, ttl, data: record_data });
            offset = rdata_start + rdlen;
        }
        Ok(Self { id, flags, questions, answers })
    }

    /// Serialises the message (no name compression on output).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.to_u16().to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // NSCOUNT, ARCOUNT.
        for q in &self.questions {
            write_name(&q.name, &mut out);
            out.extend_from_slice(&q.qtype.to_u16().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // Class IN.
        }
        for r in &self.answers {
            write_name(&r.name, &mut out);
            out.extend_from_slice(&r.rtype.to_u16().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes());
            out.extend_from_slice(&r.ttl.to_be_bytes());
            let rdata = match &r.data {
                DnsRecordData::A(a) => a.octets().to_vec(),
                DnsRecordData::Aaaa(a) => a.octets().to_vec(),
                DnsRecordData::Cname(name) => {
                    let mut buf = Vec::new();
                    write_name(name, &mut buf);
                    buf
                }
                DnsRecordData::Raw(raw) => raw.clone(),
            };
            out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
            out.extend_from_slice(&rdata);
        }
        out
    }
}

/// Reads a (possibly compressed) name starting at `offset`, returning the name
/// and the offset just past it in the *uncompressed* stream.
fn read_name(data: &[u8], mut offset: usize) -> Result<(String, usize)> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumped = false;
    let mut end_offset = offset;
    let mut hops = 0;
    loop {
        let len = *data.get(offset).ok_or(PacketError::MalformedDns("name runs past buffer"))?;
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            let next = *data.get(offset + 1).ok_or(PacketError::MalformedDns("bad pointer"))?;
            let target = (usize::from(len & 0x3f) << 8) | usize::from(next);
            if !jumped {
                end_offset = offset + 2;
                jumped = true;
            }
            if target >= offset {
                return Err(PacketError::MalformedDns("forward compression pointer"));
            }
            offset = target;
            hops += 1;
            if hops > 16 {
                return Err(PacketError::MalformedDns("compression pointer loop"));
            }
            continue;
        }
        let len = usize::from(len);
        if len == 0 {
            if !jumped {
                end_offset = offset + 1;
            }
            break;
        }
        if len > MAX_LABEL_LEN {
            return Err(PacketError::MalformedDns("label too long"));
        }
        let start = offset + 1;
        let label = data
            .get(start..start + len)
            .ok_or(PacketError::MalformedDns("label runs past buffer"))?;
        labels.push(String::from_utf8_lossy(label).to_ascii_lowercase());
        offset = start + len;
    }
    let name = labels.join(".");
    if name.len() > MAX_NAME_LEN {
        return Err(PacketError::MalformedDns("name too long"));
    }
    Ok((name, end_offset))
}

fn write_name(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let label = &label.as_bytes()[..label.len().min(MAX_LABEL_LEN)];
        out.push(label.len() as u8);
        out.extend_from_slice(label);
    }
    out.push(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0x1234, "graph.facebook.com");
        let parsed = DnsMessage::parse(&q.to_bytes()).unwrap();
        assert_eq!(parsed.id, 0x1234);
        assert!(!parsed.flags.response);
        assert_eq!(parsed.queried_name(), Some("graph.facebook.com"));
        assert_eq!(parsed.questions[0].qtype, DnsType::A);
    }

    #[test]
    fn answer_roundtrip() {
        let q = DnsMessage::query(7, "www.google.com");
        let a = DnsMessage::answer(&q, &[Ipv4Addr::new(216, 58, 221, 132)], 300);
        let parsed = DnsMessage::parse(&a.to_bytes()).unwrap();
        assert!(parsed.flags.response);
        assert_eq!(parsed.id, 7);
        assert_eq!(parsed.a_records(), vec![Ipv4Addr::new(216, 58, 221, 132)]);
        assert_eq!(parsed.answers[0].ttl, 300);
    }

    #[test]
    fn nxdomain_has_rcode_3() {
        let q = DnsMessage::query(9, "does-not-exist.example");
        let n = DnsMessage::nxdomain(&q);
        let parsed = DnsMessage::parse(&n.to_bytes()).unwrap();
        assert_eq!(parsed.flags.rcode, 3);
        assert!(parsed.answers.is_empty());
    }

    #[test]
    fn name_compression_is_understood() {
        // Hand-craft a response where the answer name is a pointer to the
        // question name at offset 12.
        let q = DnsMessage::query(1, "a.example.com");
        let mut bytes = q.to_bytes();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes()); // ANCOUNT = 1.
        bytes.extend_from_slice(&[0xc0, 0x0c]); // Pointer to offset 12.
        bytes.extend_from_slice(&1u16.to_be_bytes()); // TYPE A.
        bytes.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN.
        bytes.extend_from_slice(&60u32.to_be_bytes()); // TTL.
        bytes.extend_from_slice(&4u16.to_be_bytes()); // RDLENGTH.
        bytes.extend_from_slice(&[93, 184, 216, 34]);
        let parsed = DnsMessage::parse(&bytes).unwrap();
        assert_eq!(parsed.answers[0].name, "a.example.com");
        assert_eq!(parsed.a_records(), vec![Ipv4Addr::new(93, 184, 216, 34)]);
    }

    #[test]
    fn compression_loop_is_rejected() {
        let q = DnsMessage::query(1, "x.example.com");
        let mut bytes = q.to_bytes();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes());
        // A pointer that points at itself (offset = current position).
        let self_offset = bytes.len();
        bytes.extend_from_slice(&[0xc0 | ((self_offset >> 8) as u8), self_offset as u8]);
        bytes.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4]);
        assert!(DnsMessage::parse(&bytes).is_err());
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert!(DnsMessage::parse(&[0; 5]).is_err());
    }

    #[test]
    fn uppercase_names_are_normalised() {
        let q = DnsMessage::query(3, "E3.WhatsApp.NET");
        assert_eq!(q.queried_name(), Some("e3.whatsapp.net"));
        let parsed = DnsMessage::parse(&q.to_bytes()).unwrap();
        assert_eq!(parsed.queried_name(), Some("e3.whatsapp.net"));
    }

    #[test]
    fn cname_answers_parse() {
        let q = DnsMessage::query(5, "cdn.example.com");
        let mut a = DnsMessage::answer(&q, &[], 60);
        a.answers.push(DnsRecord {
            name: "cdn.example.com".into(),
            rtype: DnsType::Cname,
            ttl: 60,
            data: DnsRecordData::Cname("edge.fbcdn.net".into()),
        });
        let parsed = DnsMessage::parse(&a.to_bytes()).unwrap();
        assert_eq!(
            parsed.answers[0].data,
            DnsRecordData::Cname("edge.fbcdn.net".into())
        );
    }

    #[test]
    fn aaaa_answers_roundtrip() {
        let q = DnsMessage::query(5, "v6.example.com");
        let mut a = DnsMessage::answer(&q, &[], 60);
        a.answers.push(DnsRecord {
            name: "v6.example.com".into(),
            rtype: DnsType::Aaaa,
            ttl: 60,
            data: DnsRecordData::Aaaa("2001:db8::1".parse().unwrap()),
        });
        let parsed = DnsMessage::parse(&a.to_bytes()).unwrap();
        assert_eq!(parsed.answers[0].data, DnsRecordData::Aaaa("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn dns_type_wire_values_roundtrip() {
        for t in [DnsType::A, DnsType::Aaaa, DnsType::Cname, DnsType::Other(16)] {
            assert_eq!(DnsType::from_u16(t.to_u16()), t);
        }
    }
}
