//! Convenience constructors for the packet sequences exchanged across the
//! tunnel.
//!
//! Both the simulated apps (which emit SYN / data / FIN sequences into the
//! TUN device) and MopEye's user-space TCP state machine (which emits
//! SYN-ACKs, ACKs and relayed data back to the apps) build packets with the
//! same handful of shapes. [`PacketBuilder`] captures a direction
//! (`src -> dst`) and stamps out those shapes.

use std::net::IpAddr;

use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;
use crate::packet::{IpPacket, Packet, Transport};
use crate::tcp::{SackBlocks, TcpFlags, TcpOption, TcpSegment, MOPEYE_MSS, MOPEYE_RECEIVE_WINDOW};
use crate::udp::UdpDatagram;
use crate::{DnsMessage, Endpoint, IPPROTO_TCP, IPPROTO_UDP};

/// Builds packets flowing from `src` to `dst`.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src: Endpoint,
    dst: Endpoint,
    /// Receive window advertised in TCP segments.
    pub window: u16,
    /// MSS advertised in SYN / SYN-ACK segments.
    pub mss: u16,
}

impl PacketBuilder {
    /// Creates a builder for the `src -> dst` direction.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are not the same IP version.
    pub fn new(src: Endpoint, dst: Endpoint) -> Self {
        assert_eq!(src.addr.is_ipv4(), dst.addr.is_ipv4(), "mixed address families");
        Self { src, dst, window: MOPEYE_RECEIVE_WINDOW, mss: MOPEYE_MSS }
    }

    /// Returns a builder for the reverse direction.
    pub fn reversed(&self) -> Self {
        Self { src: self.dst, dst: self.src, window: self.window, mss: self.mss }
    }

    /// The source endpoint.
    pub fn src(&self) -> Endpoint {
        self.src
    }

    /// The destination endpoint.
    pub fn dst(&self) -> Endpoint {
        self.dst
    }

    fn wrap_ip(&self, protocol: u8, payload: Vec<u8>) -> IpPacket {
        match (self.src.addr, self.dst.addr) {
            (IpAddr::V4(s), IpAddr::V4(d)) => IpPacket::V4(Ipv4Packet::new(s, d, protocol, payload)),
            (IpAddr::V6(s), IpAddr::V6(d)) => IpPacket::V6(Ipv6Packet::new(s, d, protocol, payload)),
            _ => unreachable!("constructor enforces matching families"),
        }
    }

    fn wrap_tcp(&self, segment: TcpSegment) -> Packet {
        let ip = self.wrap_ip(IPPROTO_TCP, Vec::new());
        Packet::from_parts(ip, Transport::Tcp(segment))
    }

    /// A SYN segment opening a connection with initial sequence number `seq`.
    ///
    /// Carries the MSS option so the peer learns our segment size, matching
    /// what both real apps and MopEye's state machine advertise.
    pub fn tcp_syn(&self, seq: u32) -> Packet {
        let mut seg = TcpSegment::new(self.src.port, self.dst.port, seq, 0, TcpFlags::SYN);
        seg.window = self.window;
        seg.options = [TcpOption::MaximumSegmentSize(self.mss)].into();
        self.wrap_tcp(seg)
    }

    /// A SYN/ACK answering a SYN whose sequence number was `peer_seq`.
    pub fn tcp_syn_ack(&self, seq: u32, peer_seq: u32) -> Packet {
        let mut seg = TcpSegment::new(
            self.src.port,
            self.dst.port,
            seq,
            peer_seq.wrapping_add(1),
            TcpFlags::SYN | TcpFlags::ACK,
        );
        seg.window = self.window;
        seg.options = [TcpOption::MaximumSegmentSize(self.mss)].into();
        self.wrap_tcp(seg)
    }

    /// A pure ACK segment.
    pub fn tcp_ack(&self, seq: u32, ack: u32) -> Packet {
        let mut seg = TcpSegment::new(self.src.port, self.dst.port, seq, ack, TcpFlags::ACK);
        seg.window = self.window;
        self.wrap_tcp(seg)
    }

    /// A duplicate ACK carrying SACK blocks: a pure ACK whose option list
    /// reports the received-but-not-contiguous ranges, the way a receiver
    /// answers a sequence hole (RFC 2018).
    pub fn tcp_sack_ack(&self, seq: u32, ack: u32, blocks: SackBlocks) -> Packet {
        let mut seg = TcpSegment::new(self.src.port, self.dst.port, seq, ack, TcpFlags::ACK);
        seg.window = self.window;
        if !blocks.is_empty() {
            seg.options = [TcpOption::Sack(blocks)].into();
        }
        self.wrap_tcp(seg)
    }

    /// A data segment carrying `payload` (PSH|ACK).
    pub fn tcp_data(&self, seq: u32, ack: u32, payload: Vec<u8>) -> Packet {
        let mut seg =
            TcpSegment::new(self.src.port, self.dst.port, seq, ack, TcpFlags::ACK | TcpFlags::PSH);
        seg.window = self.window;
        seg.payload = payload;
        self.wrap_tcp(seg)
    }

    /// A FIN|ACK segment closing our direction of the connection.
    pub fn tcp_fin(&self, seq: u32, ack: u32) -> Packet {
        let mut seg =
            TcpSegment::new(self.src.port, self.dst.port, seq, ack, TcpFlags::FIN | TcpFlags::ACK);
        seg.window = self.window;
        self.wrap_tcp(seg)
    }

    /// An RST segment aborting the connection.
    pub fn tcp_rst(&self, seq: u32) -> Packet {
        let seg = TcpSegment::new(self.src.port, self.dst.port, seq, 0, TcpFlags::RST);
        self.wrap_tcp(seg)
    }

    /// An RST|ACK segment aborting the connection in response to `ack`.
    pub fn tcp_rst_ack(&self, seq: u32, ack: u32) -> Packet {
        let seg =
            TcpSegment::new(self.src.port, self.dst.port, seq, ack, TcpFlags::RST | TcpFlags::ACK);
        self.wrap_tcp(seg)
    }

    /// A UDP datagram carrying `payload`.
    pub fn udp(&self, payload: Vec<u8>) -> Packet {
        let ip = self.wrap_ip(IPPROTO_UDP, Vec::new());
        Packet::from_parts(
            ip,
            Transport::Udp(UdpDatagram::new(self.src.port, self.dst.port, payload)),
        )
    }

    /// A UDP datagram carrying a DNS message.
    pub fn dns(&self, message: &DnsMessage) -> Packet {
        self.udp(message.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
    }

    #[test]
    fn syn_carries_mss_option() {
        let p = builder().tcp_syn(1000);
        let tcp = p.tcp().unwrap();
        assert!(tcp.is_syn());
        assert_eq!(tcp.mss(), Some(MOPEYE_MSS));
        assert_eq!(tcp.window, MOPEYE_RECEIVE_WINDOW);
    }

    #[test]
    fn syn_ack_acknowledges_peer_isn_plus_one() {
        let p = builder().reversed().tcp_syn_ack(777, 1000);
        let tcp = p.tcp().unwrap();
        assert!(tcp.is_syn_ack());
        assert_eq!(tcp.ack, 1001);
        assert_eq!(tcp.src_port, 443);
        assert_eq!(tcp.dst_port, 40000);
    }

    #[test]
    fn data_and_fin_and_rst_shapes() {
        let b = builder();
        let d = b.tcp_data(5, 6, vec![1, 2, 3]);
        assert_eq!(d.tcp().unwrap().payload, vec![1, 2, 3]);
        assert!(d.tcp().unwrap().flags.contains(TcpFlags::PSH));
        let f = b.tcp_fin(8, 9);
        assert!(f.tcp().unwrap().flags.contains(TcpFlags::FIN));
        let r = b.tcp_rst(10);
        assert!(r.tcp().unwrap().flags.contains(TcpFlags::RST));
        let ra = b.tcp_rst_ack(10, 11);
        assert!(ra.tcp().unwrap().flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn sack_ack_is_a_pure_ack_with_blocks() {
        let b = builder();
        let p = b.tcp_sack_ack(5, 1000, [(2460, 3920)].into());
        let tcp = p.tcp().unwrap();
        assert!(tcp.is_pure_ack());
        assert_eq!(tcp.sack_blocks(), Some([(2460, 3920)].into()));
        // No blocks degenerates to a plain ACK, byte for byte.
        let plain = b.tcp_sack_ack(5, 1000, SackBlocks::new(&[]));
        assert_eq!(plain.to_bytes(), b.tcp_ack(5, 1000).to_bytes());
    }

    #[test]
    fn dns_packet_carries_query() {
        let q = DnsMessage::query(42, "api.whatsapp.net");
        let b = PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 40123), Endpoint::v4(8, 8, 8, 8, 53));
        let p = b.dns(&q);
        let parsed = DnsMessage::parse(&p.udp().unwrap().payload).unwrap();
        assert_eq!(parsed.queried_name(), Some("api.whatsapp.net"));
        assert!(p.udp().unwrap().is_dns());
    }

    #[test]
    fn ipv6_builder_works() {
        let b = PacketBuilder::new(
            Endpoint::new("fe80::2".parse::<std::net::Ipv6Addr>().unwrap(), 40000),
            Endpoint::new("2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap(), 443),
        );
        let p = b.tcp_syn(1);
        let reparsed = Packet::parse(&p.to_bytes()).unwrap();
        assert!(reparsed.tcp().unwrap().is_syn());
        assert!(!reparsed.src_endpoint().unwrap().is_ipv4());
    }

    #[test]
    #[should_panic(expected = "mixed address families")]
    fn mixed_families_panic() {
        PacketBuilder::new(
            Endpoint::v4(10, 0, 0, 2, 1),
            Endpoint::new("::1".parse::<std::net::Ipv6Addr>().unwrap(), 2),
        );
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let b = builder();
        let r = b.reversed();
        assert_eq!(r.src(), b.dst());
        assert_eq!(r.dst(), b.src());
    }
}
