//! IPv6 header parsing and serialisation.
//!
//! MopEye reads `/proc/net/tcp6` as well as `/proc/net/tcp`, and modern
//! handsets carry a growing share of IPv6 traffic, so the relay understands
//! both network layers. Extension headers are not interpreted: a packet whose
//! next-header is not TCP or UDP is still parsed and can be forwarded opaquely.

use std::net::Ipv6Addr;

use crate::error::{PacketError, Result};

/// Fixed IPv6 header length in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// A parsed IPv6 packet: the fixed header plus the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Packet {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Next header (transport protocol for packets without extension headers).
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Payload following the fixed header.
    pub payload: Vec<u8>,
}

impl Ipv6Packet {
    /// Creates a packet with common defaults (hop limit 64, zero flow label).
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: Vec<u8>) -> Self {
        Self { traffic_class: 0, flow_label: 0, next_header, hop_limit: 64, src, dst, payload }
    }

    /// Parses an IPv6 packet from `data`.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < IPV6_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "IPv6 header",
                needed: IPV6_HEADER_LEN,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 6 {
            return Err(PacketError::BadVersion(version));
        }
        let traffic_class = ((data[0] & 0x0f) << 4) | (data[1] >> 4);
        let flow_label =
            (u32::from(data[1] & 0x0f) << 16) | (u32::from(data[2]) << 8) | u32::from(data[3]);
        let payload_len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if IPV6_HEADER_LEN + payload_len > data.len() {
            return Err(PacketError::Truncated {
                what: "IPv6 payload",
                needed: IPV6_HEADER_LEN + payload_len,
                available: data.len(),
            });
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&data[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&data[24..40]);
        Ok(Self {
            traffic_class,
            flow_label,
            next_header: data[6],
            hop_limit: data[7],
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            payload: data[IPV6_HEADER_LEN..IPV6_HEADER_LEN + payload_len].to_vec(),
        })
    }

    /// Serialises the packet.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 65,535 bytes (jumbograms are not
    /// supported) or the flow label exceeds 20 bits.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.payload.len() <= usize::from(u16::MAX), "IPv6 payload too large");
        assert!(self.flow_label <= 0x000f_ffff, "flow label exceeds 20 bits");
        let mut out = Vec::with_capacity(IPV6_HEADER_LEN + self.payload.len());
        out.push(0x60 | (self.traffic_class >> 4));
        out.push(((self.traffic_class & 0x0f) << 4) | ((self.flow_label >> 16) as u8));
        out.push((self.flow_label >> 8) as u8);
        out.push(self.flow_label as u8);
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IPPROTO_UDP;

    fn sample() -> Ipv6Packet {
        Ipv6Packet::new(
            "fe80::1".parse().unwrap(),
            "2001:4860:4860::8888".parse().unwrap(),
            IPPROTO_UDP,
            vec![9, 8, 7],
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let q = Ipv6Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_traffic_class_and_flow_label() {
        let mut p = sample();
        p.traffic_class = 0xb8;
        p.flow_label = 0xabcde;
        let q = Ipv6Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(q.traffic_class, 0xb8);
        assert_eq!(q.flow_label, 0xabcde);
    }

    #[test]
    fn short_buffer_is_rejected() {
        assert!(matches!(Ipv6Packet::parse(&[0x60; 20]), Err(PacketError::Truncated { .. })));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x45;
        assert!(matches!(Ipv6Packet::parse(&bytes), Err(PacketError::BadVersion(4))));
    }

    #[test]
    fn payload_length_beyond_buffer_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4..6].copy_from_slice(&500u16.to_be_bytes());
        assert!(matches!(Ipv6Packet::parse(&bytes), Err(PacketError::Truncated { .. })));
    }

    #[test]
    fn trailing_padding_is_ignored() {
        let p = sample();
        let mut bytes = p.to_bytes();
        bytes.extend_from_slice(&[0u8; 13]);
        assert_eq!(Ipv6Packet::parse(&bytes).unwrap().payload, p.payload);
    }
}
