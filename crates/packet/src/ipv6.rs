//! IPv6 header parsing and serialisation.
//!
//! MopEye reads `/proc/net/tcp6` as well as `/proc/net/tcp`, and modern
//! handsets carry a growing share of IPv6 traffic, so the relay understands
//! both network layers. Extension headers are not interpreted: a packet whose
//! next-header is not TCP or UDP is still parsed and can be forwarded opaquely.

use std::net::Ipv6Addr;

use crate::error::Result;

/// Fixed IPv6 header length in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// A parsed IPv6 packet: the fixed header plus the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Packet {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Next header (transport protocol for packets without extension headers).
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Payload following the fixed header.
    pub payload: Vec<u8>,
}

impl Ipv6Packet {
    /// Creates a packet with common defaults (hop limit 64, zero flow label).
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: Vec<u8>) -> Self {
        Self { traffic_class: 0, flow_label: 0, next_header, hop_limit: 64, src, dst, payload }
    }

    /// Parses an IPv6 packet from `data`.
    ///
    /// A thin wrapper over the zero-copy [`crate::view::Ipv6View`], which
    /// owns the validation logic.
    pub fn parse(data: &[u8]) -> Result<Self> {
        Ok(crate::view::Ipv6View::new(data)?.to_owned())
    }

    /// Serialises the packet.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 65,535 bytes (jumbograms are not
    /// supported) or the flow label exceeds 20 bits.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IPV6_HEADER_LEN + self.payload.len());
        self.encode_header_into(&mut out, self.payload.len());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Appends the IPv6 fixed header to `out`, declaring a payload of
    /// `payload_len` bytes that the caller will write after it.
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` exceeds 65,535 bytes (jumbograms are not
    /// supported) or the flow label exceeds 20 bits.
    pub fn encode_header_into(&self, out: &mut Vec<u8>, payload_len: usize) {
        assert!(payload_len <= usize::from(u16::MAX), "IPv6 payload too large");
        assert!(self.flow_label <= 0x000f_ffff, "flow label exceeds 20 bits");
        out.reserve(IPV6_HEADER_LEN + payload_len);
        out.push(0x60 | (self.traffic_class >> 4));
        out.push(((self.traffic_class & 0x0f) << 4) | ((self.flow_label >> 16) as u8));
        out.push((self.flow_label >> 8) as u8);
        out.push(self.flow_label as u8);
        out.extend_from_slice(&(payload_len as u16).to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IPPROTO_UDP;
    use crate::error::PacketError;

    fn sample() -> Ipv6Packet {
        Ipv6Packet::new(
            "fe80::1".parse().unwrap(),
            "2001:4860:4860::8888".parse().unwrap(),
            IPPROTO_UDP,
            vec![9, 8, 7],
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let q = Ipv6Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_traffic_class_and_flow_label() {
        let mut p = sample();
        p.traffic_class = 0xb8;
        p.flow_label = 0xabcde;
        let q = Ipv6Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(q.traffic_class, 0xb8);
        assert_eq!(q.flow_label, 0xabcde);
    }

    #[test]
    fn short_buffer_is_rejected() {
        assert!(matches!(Ipv6Packet::parse(&[0x60; 20]), Err(PacketError::Truncated { .. })));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x45;
        assert!(matches!(Ipv6Packet::parse(&bytes), Err(PacketError::BadVersion(4))));
    }

    #[test]
    fn payload_length_beyond_buffer_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4..6].copy_from_slice(&500u16.to_be_bytes());
        assert!(matches!(Ipv6Packet::parse(&bytes), Err(PacketError::Truncated { .. })));
    }

    #[test]
    fn trailing_padding_is_ignored() {
        let p = sample();
        let mut bytes = p.to_bytes();
        bytes.extend_from_slice(&[0u8; 13]);
        assert_eq!(Ipv6Packet::parse(&bytes).unwrap().payload, p.payload);
    }
}
