//! Internet checksum (RFC 1071) helpers used by the IPv4, TCP and UDP codecs.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Accumulates 16-bit one's-complement sums incrementally.
///
/// The TUN relay recomputes checksums for every packet it rewrites, so this is
/// kept allocation-free and branch-light.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte slice to the running sum.
    ///
    /// Odd-length slices are padded with a trailing zero byte, matching the
    /// RFC 1071 treatment of the final odd octet. Eight bytes are folded per
    /// iteration — this sits on the per-packet encode/verify path, so the
    /// inner loop matters.
    #[inline]
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut wide = data.chunks_exact(8);
        for c in &mut wide {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]))
                + u32::from(u16::from_be_bytes([c[2], c[3]]))
                + u32::from(u16::from_be_bytes([c[4], c[5]]))
                + u32::from(u16::from_be_bytes([c[6], c[7]]));
        }
        let mut chunks = wide.remainder().chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Adds a single big-endian 16-bit word.
    #[inline]
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Adds a 32-bit value as two 16-bit words.
    #[inline]
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16((word & 0xffff) as u16);
    }

    /// Folds the accumulator and returns the one's-complement checksum.
    #[inline]
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the IPv4 header checksum over `header` with the checksum field
/// (bytes 10..12) treated as zero.
#[inline]
pub fn ipv4_header_checksum(header: &[u8]) -> u16 {
    let mut c = Checksum::new();
    if header.len() >= 12 {
        // Two straight runs around the checksum field — no per-word branch.
        c.add_bytes(&header[..10]);
        c.add_bytes(&header[12..]);
    } else {
        // Degenerate short input (only reachable from tests): skip word 5.
        for (i, chunk) in header.chunks(2).enumerate() {
            if i != 5 {
                c.add_bytes(chunk);
            }
        }
    }
    c.finish()
}

/// Computes a TCP/UDP checksum with the IPv4 pseudo-header.
#[inline]
pub fn transport_checksum_v4(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(u16::from(protocol));
    c.add_u16(segment.len() as u16);
    c.add_bytes(segment);
    match c.finish() {
        // An all-zero UDP checksum means "no checksum"; RFC 768 maps it to 0xffff.
        0 => 0xffff,
        other => other,
    }
}

/// Computes a TCP/UDP checksum with the IPv6 pseudo-header.
#[inline]
pub fn transport_checksum_v6(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(segment.len() as u32);
    c.add_u32(u32::from(protocol));
    c.add_bytes(segment);
    match c.finish() {
        0 => 0xffff,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Example from RFC 1071 §3: the header 45 00 00 73 00 00 40 00 40 11
    // b8 61 c0 a8 00 01 c0 a8 00 c7 checksums to 0xb861.
    #[test]
    fn rfc1071_reference_header() {
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_header_checksum(&header), 0xb861);
    }

    #[test]
    fn verifying_a_correct_header_gives_zero_fold() {
        let mut header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        // Recomputing over a header whose checksum field already holds the
        // correct value (and is skipped) yields the same value back.
        assert_eq!(ipv4_header_checksum(&header), 0xb861);
        // Summing the full header including the checksum folds to zero.
        let mut c = Checksum::new();
        c.add_bytes(&header);
        assert_eq!(c.finish(), 0);
        header[11] = 0x62;
        let mut c = Checksum::new();
        c.add_bytes(&header);
        assert_ne!(c.finish(), 0);
    }

    #[test]
    fn odd_length_payload_is_padded() {
        let mut a = Checksum::new();
        a.add_bytes(&[0x01, 0x02, 0x03]);
        let mut b = Checksum::new();
        b.add_bytes(&[0x01, 0x02, 0x03, 0x00]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn udp_zero_checksum_is_mapped() {
        // Craft a segment whose sum folds to 0xffff so finish() returns 0
        // before mapping; the pseudo-header helper must return 0xffff.
        let src = Ipv4Addr::new(0, 0, 0, 0);
        let dst = Ipv4Addr::new(0, 0, 0, 0);
        // Any segment works for exercising the mapping branch indirectly; just
        // assert the function never returns zero.
        for len in 0..8 {
            let seg = vec![0u8; len];
            assert_ne!(transport_checksum_v4(src, dst, 17, &seg), 0);
        }
    }

    #[test]
    fn v6_checksum_differs_from_v4() {
        let seg = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let v4 = transport_checksum_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            &seg,
        );
        let v6 = transport_checksum_v6(
            Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 2),
            6,
            &seg,
        );
        assert_ne!(v4, v6);
    }

    #[test]
    fn add_u32_equals_two_u16() {
        let mut a = Checksum::new();
        a.add_u32(0x1234_5678);
        let mut b = Checksum::new();
        b.add_u16(0x1234);
        b.add_u16(0x5678);
        assert_eq!(a.finish(), b.finish());
    }
}
