//! Zero-copy packet views borrowing from the raw TUN buffer.
//!
//! The relay parses every packet an app writes into the tunnel, and the owned
//! types in [`crate::ipv4`] / [`crate::tcp`] copy the payload (and every
//! option body) out of the input buffer on each parse. On the hot path that
//! is pure waste: the MainWorker only needs to *classify* the segment and
//! borrow its payload long enough to hand the bytes to the socket channel.
//!
//! The `*View` types here validate exactly as strictly as their owned
//! counterparts but keep borrowing from the input slice; `to_owned()` bridges
//! back to the owned structs when a packet must outlive the buffer. Every
//! accessor is allocation-free, which is what makes the relay's steady-state
//! loop zero-alloc per packet (see the `zero_alloc` regression test in
//! `mop_bench`).

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use crate::checksum::ipv4_header_checksum;
use crate::error::{PacketError, Result};
use crate::ipv4::{Ipv4Packet, IPV4_MIN_HEADER_LEN};
use crate::ipv6::{Ipv6Packet, IPV6_HEADER_LEN};
use crate::packet::{IpPacket, Packet, Transport};
use crate::tcp::{TcpFlags, TcpOption, TcpSegment, TCP_MIN_HEADER_LEN};
use crate::udp::{UdpDatagram, UDP_HEADER_LEN};
use crate::{Endpoint, FourTuple, IPPROTO_TCP, IPPROTO_UDP};

/// A borrowed, validated IPv4 packet.
///
/// Construction performs the same checks as [`Ipv4Packet::parse`] (version,
/// IHL, total length, header checksum) so accessors cannot fail.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    data: &'a [u8],
    header_len: usize,
    total_len: usize,
}

impl<'a> Ipv4View<'a> {
    /// Validates `data` as an IPv4 packet and borrows it.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self> {
        if data.len() < IPV4_MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                needed: IPV4_MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion(version));
        }
        let header_len = usize::from(data[0] & 0x0f) * 4;
        if header_len < IPV4_MIN_HEADER_LEN || header_len > data.len() {
            return Err(PacketError::BadHeaderLength(header_len));
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < header_len || total_len > data.len() {
            return Err(PacketError::Truncated {
                what: "IPv4 total length",
                needed: total_len.max(header_len),
                available: data.len(),
            });
        }
        // A header whose stored checksum is correct folds to zero when summed
        // whole — one pass, no field skipping. The strict expected value is
        // only recomputed on the (cold) error path for the report.
        let mut c = crate::checksum::Checksum::new();
        c.add_bytes(&data[..header_len]);
        if c.finish() != 0 {
            let expected = ipv4_header_checksum(&data[..header_len]);
            let found = u16::from_be_bytes([data[10], data[11]]);
            return Err(PacketError::BadChecksum { what: "IPv4 header", found, expected });
        }
        Ok(Self { data, header_len, total_len })
    }

    /// Differentiated services / TOS byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.data[1]
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// Flags and fragment offset, packed as on the wire.
    pub fn flags_fragment(&self) -> u16 {
        u16::from_be_bytes([self.data[6], self.data[7]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.data[8]
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        self.data[9]
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.data[12], self.data[13], self.data[14], self.data[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.data[16], self.data[17], self.data[18], self.data[19])
    }

    /// Header length in bytes, including options.
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Total packet length from the length field (trailing padding excluded).
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Raw IPv4 options.
    pub fn options(&self) -> &'a [u8] {
        &self.data[IPV4_MIN_HEADER_LEN..self.header_len]
    }

    /// Transport payload (bounded by the total-length field).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[self.header_len..self.total_len]
    }

    /// Copies the view into an owned [`Ipv4Packet`], payload included.
    #[inline]
    pub fn to_owned(&self) -> Ipv4Packet {
        Ipv4Packet {
            dscp_ecn: self.dscp_ecn(),
            identification: self.identification(),
            flags_fragment: self.flags_fragment(),
            ttl: self.ttl(),
            protocol: self.protocol(),
            src: self.src(),
            dst: self.dst(),
            options: self.options().to_vec(),
            payload: self.payload().to_vec(),
        }
    }
}

/// A borrowed, validated IPv6 packet.
#[derive(Debug, Clone, Copy)]
pub struct Ipv6View<'a> {
    data: &'a [u8],
    payload_len: usize,
}

impl<'a> Ipv6View<'a> {
    /// Validates `data` as an IPv6 packet and borrows it.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self> {
        if data.len() < IPV6_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "IPv6 header",
                needed: IPV6_HEADER_LEN,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 6 {
            return Err(PacketError::BadVersion(version));
        }
        let payload_len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if IPV6_HEADER_LEN + payload_len > data.len() {
            return Err(PacketError::Truncated {
                what: "IPv6 payload",
                needed: IPV6_HEADER_LEN + payload_len,
                available: data.len(),
            });
        }
        Ok(Self { data, payload_len })
    }

    /// Traffic class byte.
    pub fn traffic_class(&self) -> u8 {
        ((self.data[0] & 0x0f) << 4) | (self.data[1] >> 4)
    }

    /// 20-bit flow label.
    pub fn flow_label(&self) -> u32 {
        (u32::from(self.data[1] & 0x0f) << 16)
            | (u32::from(self.data[2]) << 8)
            | u32::from(self.data[3])
    }

    /// Next header (transport protocol).
    pub fn next_header(&self) -> u8 {
        self.data[6]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.data[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        let mut octets = [0u8; 16];
        octets.copy_from_slice(&self.data[8..24]);
        Ipv6Addr::from(octets)
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        let mut octets = [0u8; 16];
        octets.copy_from_slice(&self.data[24..40]);
        Ipv6Addr::from(octets)
    }

    /// Transport payload (bounded by the payload-length field).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[IPV6_HEADER_LEN..IPV6_HEADER_LEN + self.payload_len]
    }

    /// Copies the view into an owned [`Ipv6Packet`], payload included.
    #[inline]
    pub fn to_owned(&self) -> Ipv6Packet {
        Ipv6Packet {
            traffic_class: self.traffic_class(),
            flow_label: self.flow_label(),
            next_header: self.next_header(),
            hop_limit: self.hop_limit(),
            src: self.src(),
            dst: self.dst(),
            payload: self.payload().to_vec(),
        }
    }
}

/// A TCP option borrowed from the segment's option region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOptionRef<'a> {
    /// Maximum segment size (kind 2).
    MaximumSegmentSize(u16),
    /// Window scale shift count (kind 3).
    WindowScale(u8),
    /// Selective acknowledgement permitted (kind 4).
    SackPermitted,
    /// Selective acknowledgement blocks (kind 5). Decoded inline — the
    /// blocks are plain integers, so even the "borrowed" view owns them.
    Sack(crate::tcp::SackBlocks),
    /// Timestamps (kind 8): TSval and TSecr.
    Timestamps(u32, u32),
    /// No-operation padding (kind 1).
    Nop,
    /// Any other option as (kind, borrowed payload).
    Unknown(u8, &'a [u8]),
}

impl TcpOptionRef<'_> {
    /// Copies the borrowed option into an owned [`TcpOption`].
    #[inline]
    pub fn to_owned(&self) -> TcpOption {
        match *self {
            TcpOptionRef::MaximumSegmentSize(v) => TcpOption::MaximumSegmentSize(v),
            TcpOptionRef::WindowScale(v) => TcpOption::WindowScale(v),
            TcpOptionRef::SackPermitted => TcpOption::SackPermitted,
            TcpOptionRef::Sack(blocks) => TcpOption::Sack(blocks),
            TcpOptionRef::Timestamps(a, b) => TcpOption::Timestamps(a, b),
            TcpOptionRef::Nop => TcpOption::Nop,
            TcpOptionRef::Unknown(kind, data) => TcpOption::Unknown(kind, data.into()),
        }
    }
}

/// Iterator over the options of a [`TcpSegmentView`].
///
/// The option region is validated when the view is constructed, so iteration
/// is infallible and allocation-free.
#[derive(Debug, Clone)]
pub struct TcpOptionIter<'a> {
    rest: &'a [u8],
}

impl<'a> TcpOptionIter<'a> {
    /// Iterates over an already-validated option region (crate-internal:
    /// [`crate::tcp::TcpOptions`] reuses this decoder for its owned bytes).
    pub(crate) fn over(rest: &'a [u8]) -> Self {
        Self { rest }
    }
}

impl<'a> Iterator for TcpOptionIter<'a> {
    type Item = TcpOptionRef<'a>;

    fn next(&mut self) -> Option<TcpOptionRef<'a>> {
        let (&kind, rest) = self.rest.split_first()?;
        match kind {
            0 => {
                self.rest = &[];
                None
            }
            1 => {
                self.rest = rest;
                Some(TcpOptionRef::Nop)
            }
            _ => {
                // Lengths were validated up front by `TcpSegmentView::new`.
                let len = usize::from(self.rest[1]);
                let body = &self.rest[2..len];
                self.rest = &self.rest[len..];
                Some(match kind {
                    2 if body.len() == 2 => {
                        TcpOptionRef::MaximumSegmentSize(u16::from_be_bytes([body[0], body[1]]))
                    }
                    3 if body.len() == 1 => TcpOptionRef::WindowScale(body[0]),
                    4 if body.is_empty() => TcpOptionRef::SackPermitted,
                    5 if !body.is_empty() && body.len() % 8 == 0 && body.len() <= 32 => {
                        let mut blocks = [(0u32, 0u32); crate::tcp::SackBlocks::MAX];
                        for (i, pair) in body.chunks_exact(8).enumerate() {
                            blocks[i] = (
                                u32::from_be_bytes([pair[0], pair[1], pair[2], pair[3]]),
                                u32::from_be_bytes([pair[4], pair[5], pair[6], pair[7]]),
                            );
                        }
                        TcpOptionRef::Sack(crate::tcp::SackBlocks::new(&blocks[..body.len() / 8]))
                    }
                    8 if body.len() == 8 => TcpOptionRef::Timestamps(
                        u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    ),
                    _ => TcpOptionRef::Unknown(kind, body),
                })
            }
        }
    }
}

/// A borrowed, validated TCP segment.
///
/// Construction performs the same checks as [`TcpSegment::parse`], including
/// a full walk of the option list, so every accessor (and option iteration)
/// is infallible.
#[derive(Debug, Clone, Copy)]
pub struct TcpSegmentView<'a> {
    data: &'a [u8],
    header_len: usize,
    /// Bytes of the option region holding real options (before any
    /// end-of-list marker or padding).
    opts_len: usize,
}

impl<'a> TcpSegmentView<'a> {
    /// Validates `data` as a TCP segment and borrows it.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self> {
        if data.len() < TCP_MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "TCP header",
                needed: TCP_MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let header_len = usize::from(data[12] >> 4) * 4;
        if header_len < TCP_MIN_HEADER_LEN || header_len > data.len() {
            return Err(PacketError::BadHeaderLength(header_len));
        }
        // Validate the option region once so iteration never has to; the
        // validator is shared with `TcpSegment::parse`.
        let opts_len = crate::tcp::validate_options(&data[TCP_MIN_HEADER_LEN..header_len])?;
        Ok(Self { data, header_len, opts_len })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data[0], self.data[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.data[4], self.data[5], self.data[6], self.data[7]])
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.data[8], self.data[9], self.data[10], self.data[11]])
    }

    /// Header flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_bits(self.data[13] & 0x3f)
    }

    /// Receive window (unscaled).
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.data[14], self.data[15]])
    }

    /// Urgent pointer.
    pub fn urgent(&self) -> u16 {
        u16::from_be_bytes([self.data[18], self.data[19]])
    }

    /// Header length in bytes, including options and padding.
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// The raw (validated) option region, padding included.
    pub fn options_bytes(&self) -> &'a [u8] {
        &self.data[TCP_MIN_HEADER_LEN..self.header_len]
    }

    /// Iterates over the parsed options without allocating.
    pub fn options(&self) -> TcpOptionIter<'a> {
        TcpOptionIter { rest: self.options_bytes() }
    }

    /// Application payload.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[self.header_len..]
    }

    /// Returns the MSS option value if present.
    pub fn mss(&self) -> Option<u16> {
        self.options().find_map(|o| match o {
            TcpOptionRef::MaximumSegmentSize(v) => Some(v),
            _ => None,
        })
    }

    /// Returns the window-scale option value if present.
    pub fn window_scale(&self) -> Option<u8> {
        self.options().find_map(|o| match o {
            TcpOptionRef::WindowScale(v) => Some(v),
            _ => None,
        })
    }

    /// Returns the selective-acknowledgement blocks if a SACK option (kind 5)
    /// is present.
    pub fn sack_blocks(&self) -> Option<crate::tcp::SackBlocks> {
        self.options().find_map(|o| match o {
            TcpOptionRef::Sack(blocks) => Some(blocks),
            _ => None,
        })
    }

    /// Returns true if this is a bare SYN (no ACK).
    pub fn is_syn(&self) -> bool {
        let flags = self.flags();
        flags.contains(TcpFlags::SYN) && !flags.contains(TcpFlags::ACK)
    }

    /// Returns true if this is a SYN/ACK.
    pub fn is_syn_ack(&self) -> bool {
        let flags = self.flags();
        flags.contains(TcpFlags::SYN) && flags.contains(TcpFlags::ACK)
    }

    /// Returns true if this is a pure ACK: ACK set, no payload, no SYN/FIN/RST.
    pub fn is_pure_ack(&self) -> bool {
        let flags = self.flags();
        flags.contains(TcpFlags::ACK)
            && self.payload().is_empty()
            && !flags.intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
    }

    /// The number of sequence numbers this segment consumes.
    pub fn sequence_len(&self) -> u32 {
        let flags = self.flags();
        self.payload().len() as u32
            + u32::from(flags.contains(TcpFlags::SYN))
            + u32::from(flags.contains(TcpFlags::FIN))
    }

    /// Copies the view into an owned [`TcpSegment`].
    ///
    /// Allocation-wise this costs exactly one payload copy: the validated
    /// option bytes land in [`crate::tcp::TcpOptions`] inline storage.
    #[inline]
    pub fn to_owned(&self) -> TcpSegment {
        let options = crate::tcp::TcpOptions::from_wire(
            &self.data[TCP_MIN_HEADER_LEN..TCP_MIN_HEADER_LEN + self.opts_len],
        );
        TcpSegment {
            src_port: self.src_port(),
            dst_port: self.dst_port(),
            seq: self.seq(),
            ack: self.ack(),
            flags: self.flags(),
            window: self.window(),
            urgent: self.urgent(),
            options,
            payload: self.payload().to_vec(),
        }
    }
}

/// A borrowed, validated UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    data: &'a [u8],
    length: usize,
}

impl<'a> UdpView<'a> {
    /// Validates `data` as a UDP datagram and borrows it.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self> {
        if data.len() < UDP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "UDP header",
                needed: UDP_HEADER_LEN,
                available: data.len(),
            });
        }
        let length = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if length < UDP_HEADER_LEN || length > data.len() {
            return Err(PacketError::Truncated {
                what: "UDP length",
                needed: length.max(UDP_HEADER_LEN),
                available: data.len(),
            });
        }
        Ok(Self { data, length })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data[0], self.data[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Returns true if either port is the DNS port (53).
    pub fn is_dns(&self) -> bool {
        self.src_port() == 53 || self.dst_port() == 53
    }

    /// Application payload (bounded by the length field).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[UDP_HEADER_LEN..self.length]
    }

    /// Copies the view into an owned [`UdpDatagram`].
    #[inline]
    pub fn to_owned(&self) -> UdpDatagram {
        UdpDatagram {
            src_port: self.src_port(),
            dst_port: self.dst_port(),
            payload: self.payload().to_vec(),
        }
    }
}

/// The network layer of a borrowed packet.
#[derive(Debug, Clone, Copy)]
pub enum IpView<'a> {
    /// A borrowed IPv4 packet.
    V4(Ipv4View<'a>),
    /// A borrowed IPv6 packet.
    V6(Ipv6View<'a>),
}

impl<'a> IpView<'a> {
    /// Source IP address.
    pub fn src(&self) -> IpAddr {
        match self {
            IpView::V4(v) => IpAddr::V4(v.src()),
            IpView::V6(v) => IpAddr::V6(v.src()),
        }
    }

    /// Destination IP address.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpView::V4(v) => IpAddr::V4(v.dst()),
            IpView::V6(v) => IpAddr::V6(v.dst()),
        }
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        match self {
            IpView::V4(v) => v.protocol(),
            IpView::V6(v) => v.next_header(),
        }
    }

    /// Transport payload bytes.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        match self {
            IpView::V4(v) => v.payload(),
            IpView::V6(v) => v.payload(),
        }
    }
}

/// The transport layer of a borrowed packet.
#[derive(Debug, Clone, Copy)]
pub enum TransportView<'a> {
    /// A borrowed TCP segment.
    Tcp(TcpSegmentView<'a>),
    /// A borrowed UDP datagram.
    Udp(UdpView<'a>),
    /// An unsupported transport, borrowed raw.
    Other(u8, &'a [u8]),
}

/// A fully validated, borrowed packet — the zero-copy counterpart of
/// [`Packet`]. This is what the relay's MainWorker parses for every tunnel
/// packet.
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    ip: IpView<'a>,
    transport: TransportView<'a>,
}

impl<'a> PacketView<'a> {
    /// Parses a raw IP packet without copying.
    ///
    /// Validation matches [`Packet::parse`]: the IP version is sniffed from
    /// the first nibble, TCP/UDP transports are fully validated, unknown
    /// transports are kept raw.
    #[inline]
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let first = *data.first().ok_or(PacketError::Truncated {
            what: "IP packet",
            needed: 1,
            available: 0,
        })?;
        let ip = match first >> 4 {
            4 => IpView::V4(Ipv4View::new(data)?),
            6 => IpView::V6(Ipv6View::new(data)?),
            v => return Err(PacketError::BadVersion(v)),
        };
        let payload = ip.payload();
        let transport = match ip.protocol() {
            IPPROTO_TCP => TransportView::Tcp(TcpSegmentView::new(payload)?),
            IPPROTO_UDP => TransportView::Udp(UdpView::new(payload)?),
            other => TransportView::Other(other, payload),
        };
        Ok(Self { ip, transport })
    }

    /// The network layer.
    pub fn ip(&self) -> &IpView<'a> {
        &self.ip
    }

    /// The transport layer.
    pub fn transport(&self) -> &TransportView<'a> {
        &self.transport
    }

    /// Returns the TCP segment view if this is a TCP packet.
    pub fn tcp(&self) -> Option<&TcpSegmentView<'a>> {
        match &self.transport {
            TransportView::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the UDP datagram view if this is a UDP packet.
    pub fn udp(&self) -> Option<&UdpView<'a>> {
        match &self.transport {
            TransportView::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// The source endpoint, if the transport has ports.
    #[inline]
    pub fn src_endpoint(&self) -> Option<Endpoint> {
        let port = match &self.transport {
            TransportView::Tcp(t) => t.src_port(),
            TransportView::Udp(u) => u.src_port(),
            TransportView::Other(..) => return None,
        };
        Some(Endpoint::new(self.ip.src(), port))
    }

    /// The destination endpoint, if the transport has ports.
    #[inline]
    pub fn dst_endpoint(&self) -> Option<Endpoint> {
        let port = match &self.transport {
            TransportView::Tcp(t) => t.dst_port(),
            TransportView::Udp(u) => u.dst_port(),
            TransportView::Other(..) => return None,
        };
        Some(Endpoint::new(self.ip.dst(), port))
    }

    /// The connection four-tuple, if the transport has ports.
    #[inline]
    pub fn four_tuple(&self) -> Option<FourTuple> {
        Some(FourTuple::new(self.src_endpoint()?, self.dst_endpoint()?))
    }

    /// Copies the view into an owned [`Packet`].
    ///
    /// The owned packet's transport layer carries the payload; the IP layer's
    /// `payload` field is left empty, exactly like packets produced by
    /// [`crate::PacketBuilder`] (serialisation regenerates it on demand).
    #[inline]
    pub fn to_owned(&self) -> Packet {
        let ip = match &self.ip {
            IpView::V4(v) => IpPacket::V4(Ipv4Packet {
                dscp_ecn: v.dscp_ecn(),
                identification: v.identification(),
                flags_fragment: v.flags_fragment(),
                ttl: v.ttl(),
                protocol: v.protocol(),
                src: v.src(),
                dst: v.dst(),
                options: v.options().to_vec(),
                payload: Vec::new(),
            }),
            IpView::V6(v) => IpPacket::V6(Ipv6Packet {
                traffic_class: v.traffic_class(),
                flow_label: v.flow_label(),
                next_header: v.next_header(),
                hop_limit: v.hop_limit(),
                src: v.src(),
                dst: v.dst(),
                payload: Vec::new(),
            }),
        };
        let transport = match &self.transport {
            TransportView::Tcp(t) => Transport::Tcp(t.to_owned()),
            TransportView::Udp(u) => Transport::Udp(u.to_owned()),
            TransportView::Other(proto, raw) => Transport::Other(*proto, raw.to_vec()),
        };
        Packet { ip, transport }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(
            Endpoint::v4(10, 0, 0, 2, 40000),
            Endpoint::v4(216, 58, 221, 132, 443),
        )
    }

    #[test]
    fn tcp_view_agrees_with_owned_parse() {
        let bytes = builder().tcp_syn(12345).to_bytes();
        let view = PacketView::parse(&bytes).unwrap();
        let owned = Packet::parse(&bytes).unwrap();
        assert_eq!(view.four_tuple(), owned.four_tuple());
        let tv = view.tcp().unwrap();
        let to = owned.tcp().unwrap();
        assert_eq!(tv.seq(), to.seq);
        assert_eq!(tv.mss(), to.mss());
        assert!(tv.is_syn());
        assert_eq!(tv.sequence_len(), to.sequence_len());
        assert_eq!(tv.to_owned(), *to);
    }

    #[test]
    fn udp_view_borrows_payload() {
        let bytes = builder().udp(b"hello".to_vec()).to_bytes();
        let view = PacketView::parse(&bytes).unwrap();
        let udp = view.udp().unwrap();
        assert_eq!(udp.payload(), b"hello");
        assert!(!udp.is_dns());
        assert_eq!(udp.to_owned().payload, b"hello");
    }

    #[test]
    fn other_transport_is_borrowed_raw() {
        let ip = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            47,
            vec![1, 2, 3, 4],
        );
        let bytes = ip.to_bytes();
        let view = PacketView::parse(&bytes).unwrap();
        assert!(matches!(view.transport(), TransportView::Other(47, raw) if *raw == [1, 2, 3, 4]));
        assert!(view.four_tuple().is_none());
    }

    #[test]
    fn view_rejects_what_owned_parse_rejects() {
        assert!(PacketView::parse(&[]).is_err());
        let mut bytes = builder().tcp_syn(1).to_bytes();
        bytes[10] ^= 0xff; // Corrupt the IPv4 header checksum.
        assert!(matches!(
            PacketView::parse(&bytes),
            Err(PacketError::BadChecksum { what: "IPv4 header", .. })
        ));
    }

    #[test]
    fn option_iterator_stops_at_end_of_list() {
        // Hand-build an options region: MSS, then EOL, then junk padding.
        let mut seg = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        seg.options = [TcpOption::MaximumSegmentSize(1400)].into();
        let bytes = seg.to_bytes();
        let view = TcpSegmentView::new(&bytes).unwrap();
        let opts: Vec<_> = view.options().collect();
        assert_eq!(opts, vec![TcpOptionRef::MaximumSegmentSize(1400)]);
    }

    use std::net::Ipv4Addr;
}
