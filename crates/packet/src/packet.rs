//! A unified view of a packet captured from the TUN interface.
//!
//! The tunnel hands MopEye raw IP packets (§2.2); the first thing the engine
//! does is parse them into network + transport layers so that it can find the
//! four-tuple, classify the segment (SYN, data, pure ACK, FIN, RST, UDP) and
//! route it to the right TCP/UDP client.

use std::net::IpAddr;

use crate::error::Result;
use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::view::PacketView;
use crate::{Endpoint, FourTuple};

/// The network layer of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpPacket {
    /// An IPv4 packet.
    V4(Ipv4Packet),
    /// An IPv6 packet.
    V6(Ipv6Packet),
}

impl IpPacket {
    /// Source IP address.
    pub fn src(&self) -> IpAddr {
        match self {
            IpPacket::V4(p) => IpAddr::V4(p.src),
            IpPacket::V6(p) => IpAddr::V6(p.src),
        }
    }

    /// Destination IP address.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpPacket::V4(p) => IpAddr::V4(p.dst),
            IpPacket::V6(p) => IpAddr::V6(p.dst),
        }
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        match self {
            IpPacket::V4(p) => p.protocol,
            IpPacket::V6(p) => p.next_header,
        }
    }

    /// Transport payload bytes stored at the network layer.
    ///
    /// Packets built from parts or parsed via [`Packet::parse`] keep their
    /// payload in the transport layer and leave this empty; call
    /// [`Packet::sync_payload`] first if the raw bytes are needed here.
    pub fn payload(&self) -> &[u8] {
        match self {
            IpPacket::V4(p) => &p.payload,
            IpPacket::V6(p) => &p.payload,
        }
    }

    /// Network header length in bytes.
    pub fn header_len(&self) -> usize {
        match self {
            IpPacket::V4(p) => p.header_len(),
            IpPacket::V6(_) => crate::ipv6::IPV6_HEADER_LEN,
        }
    }

    /// Serialises the network-layer packet.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            IpPacket::V4(p) => p.to_bytes(),
            IpPacket::V6(p) => p.to_bytes(),
        }
    }
}

/// The transport layer of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An unsupported transport, preserved raw so it can still be forwarded.
    Other(u8, Vec<u8>),
}

/// A fully parsed packet as read from the tunnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The network layer.
    pub ip: IpPacket,
    /// The transport layer.
    pub transport: Transport,
}

impl Packet {
    /// Parses a raw IP packet captured from the tunnel.
    ///
    /// The IP version is sniffed from the first nibble. Transport parsing
    /// failures for TCP/UDP are propagated; unknown transports are preserved.
    /// This is a thin wrapper over the zero-copy [`PacketView`]: the payload
    /// is copied exactly once, into the transport layer (the IP layer's
    /// `payload` field stays empty).
    #[inline]
    pub fn parse(data: &[u8]) -> Result<Self> {
        Ok(PacketView::parse(data)?.to_owned())
    }

    /// Builds a packet from a network header template and a transport layer.
    ///
    /// Construction is lazy: lengths and checksums are computed when the
    /// packet is serialised, so building a packet that is never written to
    /// the wire costs no encoding work and no checksum pass.
    pub fn from_parts(ip: IpPacket, transport: Transport) -> Self {
        Self { ip, transport }
    }

    /// Re-serialises the transport layer into the IP payload, fixing lengths
    /// and checksums.
    ///
    /// Serialisation no longer requires this — [`Packet::to_bytes`] encodes
    /// the transport directly — but callers that inspect the raw network
    /// payload can still materialise it explicitly.
    pub fn sync_payload(&mut self) {
        let (src, dst) = (self.ip.src(), self.ip.dst());
        let payload = match &self.transport {
            Transport::Tcp(t) => t.to_bytes_with_checksum(src, dst),
            Transport::Udp(u) => u.to_bytes_with_checksum(src, dst),
            Transport::Other(_, raw) => raw.clone(),
        };
        match &mut self.ip {
            IpPacket::V4(p) => p.payload = payload,
            IpPacket::V6(p) => p.payload = payload,
        }
    }

    /// The source endpoint (IP + transport port), if the transport has ports.
    pub fn src_endpoint(&self) -> Option<Endpoint> {
        let port = match &self.transport {
            Transport::Tcp(t) => t.src_port,
            Transport::Udp(u) => u.src_port,
            Transport::Other(..) => return None,
        };
        Some(Endpoint::new(self.ip.src(), port))
    }

    /// The destination endpoint (IP + transport port), if the transport has ports.
    pub fn dst_endpoint(&self) -> Option<Endpoint> {
        let port = match &self.transport {
            Transport::Tcp(t) => t.dst_port,
            Transport::Udp(u) => u.dst_port,
            Transport::Other(..) => return None,
        };
        Some(Endpoint::new(self.ip.dst(), port))
    }

    /// The connection four-tuple, if the transport has ports.
    pub fn four_tuple(&self) -> Option<FourTuple> {
        Some(FourTuple::new(self.src_endpoint()?, self.dst_endpoint()?))
    }

    /// Returns the TCP segment if this is a TCP packet.
    pub fn tcp(&self) -> Option<&TcpSegment> {
        match &self.transport {
            Transport::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the UDP datagram if this is a UDP packet.
    pub fn udp(&self) -> Option<&UdpDatagram> {
        match &self.transport {
            Transport::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// Serialises the full packet (IP header plus transport), recomputing
    /// checksums and length fields.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends the full serialised packet to `out`.
    ///
    /// The network header and the transport layer are written directly into
    /// the output buffer — no intermediate payload vector, no packet clone —
    /// and both checksums are patched in place. With a warmed, reused buffer
    /// this is the allocation-free encode path of the relay datapath.
    #[inline]
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let (src, dst) = (self.ip.src(), self.ip.dst());
        let payload_len = self.transport_wire_len();
        match &self.ip {
            IpPacket::V4(p) => p.encode_header_into(out, payload_len),
            IpPacket::V6(p) => p.encode_header_into(out, payload_len),
        }
        match &self.transport {
            Transport::Tcp(t) => t.encode_with_checksum_into(src, dst, out),
            Transport::Udp(u) => u.encode_with_checksum_into(src, dst, out),
            Transport::Other(_, raw) => out.extend_from_slice(raw),
        }
    }

    /// Serialised length of the transport layer in bytes.
    pub fn transport_wire_len(&self) -> usize {
        match &self.transport {
            Transport::Tcp(t) => t.wire_len(),
            Transport::Udp(u) => u.len(),
            Transport::Other(_, raw) => raw.len(),
        }
    }

    /// Total serialised length in bytes, computed without serialising.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.ip.header_len() + self.transport_wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(
            Endpoint::v4(10, 0, 0, 2, 40000),
            Endpoint::v4(216, 58, 221, 132, 443),
        )
    }

    #[test]
    fn tcp_packet_roundtrip_through_bytes() {
        let p = builder().tcp_syn(12345);
        let bytes = p.to_bytes();
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.four_tuple(), p.four_tuple());
        assert!(parsed.tcp().unwrap().is_syn());
        assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn udp_packet_roundtrip_through_bytes() {
        let p = builder().udp(b"hello".to_vec());
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(parsed.udp().unwrap().payload, b"hello");
        assert_eq!(parsed.src_endpoint().unwrap().port, 40000);
    }

    #[test]
    fn unknown_transport_is_preserved() {
        let ip = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            47, // GRE.
            vec![1, 2, 3, 4],
        );
        let parsed = Packet::parse(&ip.to_bytes()).unwrap();
        assert!(matches!(parsed.transport, Transport::Other(47, _)));
        assert!(parsed.four_tuple().is_none());
        assert_eq!(parsed.to_bytes(), ip.to_bytes());
    }

    #[test]
    fn empty_buffer_is_rejected() {
        assert!(Packet::parse(&[]).is_err());
        assert!(Packet::parse(&[0x00]).is_err());
    }

    #[test]
    fn sync_payload_updates_after_mutation() {
        let mut p = builder().tcp_syn(1);
        if let Transport::Tcp(t) = &mut p.transport {
            t.flags |= TcpFlags::ACK;
            t.ack = 100;
        }
        p.sync_payload();
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert!(parsed.tcp().unwrap().is_syn_ack());
    }

    #[test]
    fn wire_len_matches_serialisation() {
        let p = builder().tcp_data(10, 20, vec![0u8; 100]);
        assert_eq!(p.wire_len(), p.to_bytes().len());
        assert_eq!(p.wire_len(), 20 + 20 + 100);
    }
}
