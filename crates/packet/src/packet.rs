//! A unified view of a packet captured from the TUN interface.
//!
//! The tunnel hands MopEye raw IP packets (§2.2); the first thing the engine
//! does is parse them into network + transport layers so that it can find the
//! four-tuple, classify the segment (SYN, data, pure ACK, FIN, RST, UDP) and
//! route it to the right TCP/UDP client.

use std::net::IpAddr;

use crate::error::{PacketError, Result};
use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::{Endpoint, FourTuple, IPPROTO_TCP, IPPROTO_UDP};

/// The network layer of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpPacket {
    /// An IPv4 packet.
    V4(Ipv4Packet),
    /// An IPv6 packet.
    V6(Ipv6Packet),
}

impl IpPacket {
    /// Source IP address.
    pub fn src(&self) -> IpAddr {
        match self {
            IpPacket::V4(p) => IpAddr::V4(p.src),
            IpPacket::V6(p) => IpAddr::V6(p.src),
        }
    }

    /// Destination IP address.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpPacket::V4(p) => IpAddr::V4(p.dst),
            IpPacket::V6(p) => IpAddr::V6(p.dst),
        }
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        match self {
            IpPacket::V4(p) => p.protocol,
            IpPacket::V6(p) => p.next_header,
        }
    }

    /// Transport payload bytes.
    pub fn payload(&self) -> &[u8] {
        match self {
            IpPacket::V4(p) => &p.payload,
            IpPacket::V6(p) => &p.payload,
        }
    }

    /// Serialises the network-layer packet.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            IpPacket::V4(p) => p.to_bytes(),
            IpPacket::V6(p) => p.to_bytes(),
        }
    }
}

/// The transport layer of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An unsupported transport, preserved raw so it can still be forwarded.
    Other(u8, Vec<u8>),
}

/// A fully parsed packet as read from the tunnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The network layer.
    pub ip: IpPacket,
    /// The transport layer.
    pub transport: Transport,
}

impl Packet {
    /// Parses a raw IP packet captured from the tunnel.
    ///
    /// The IP version is sniffed from the first nibble. Transport parsing
    /// failures for TCP/UDP are propagated; unknown transports are preserved.
    pub fn parse(data: &[u8]) -> Result<Self> {
        let first = *data.first().ok_or(PacketError::Truncated {
            what: "IP packet",
            needed: 1,
            available: 0,
        })?;
        let ip = match first >> 4 {
            4 => IpPacket::V4(Ipv4Packet::parse(data)?),
            6 => IpPacket::V6(Ipv6Packet::parse(data)?),
            v => return Err(PacketError::BadVersion(v)),
        };
        let transport = match ip.protocol() {
            IPPROTO_TCP => Transport::Tcp(TcpSegment::parse(ip.payload())?),
            IPPROTO_UDP => Transport::Udp(UdpDatagram::parse(ip.payload())?),
            other => Transport::Other(other, ip.payload().to_vec()),
        };
        Ok(Self { ip, transport })
    }

    /// Builds a packet from a network header template and a transport layer,
    /// regenerating the payload bytes and checksums.
    pub fn from_parts(ip: IpPacket, transport: Transport) -> Self {
        let mut packet = Self { ip, transport };
        packet.sync_payload();
        packet
    }

    /// Re-serialises the transport layer into the IP payload, fixing lengths
    /// and checksums. Must be called after mutating the transport layer.
    pub fn sync_payload(&mut self) {
        let (src, dst) = (self.ip.src(), self.ip.dst());
        let payload = match &self.transport {
            Transport::Tcp(t) => t.to_bytes_with_checksum(src, dst),
            Transport::Udp(u) => u.to_bytes_with_checksum(src, dst),
            Transport::Other(_, raw) => raw.clone(),
        };
        match &mut self.ip {
            IpPacket::V4(p) => p.payload = payload,
            IpPacket::V6(p) => p.payload = payload,
        }
    }

    /// The source endpoint (IP + transport port), if the transport has ports.
    pub fn src_endpoint(&self) -> Option<Endpoint> {
        let port = match &self.transport {
            Transport::Tcp(t) => t.src_port,
            Transport::Udp(u) => u.src_port,
            Transport::Other(..) => return None,
        };
        Some(Endpoint::new(self.ip.src(), port))
    }

    /// The destination endpoint (IP + transport port), if the transport has ports.
    pub fn dst_endpoint(&self) -> Option<Endpoint> {
        let port = match &self.transport {
            Transport::Tcp(t) => t.dst_port,
            Transport::Udp(u) => u.dst_port,
            Transport::Other(..) => return None,
        };
        Some(Endpoint::new(self.ip.dst(), port))
    }

    /// The connection four-tuple, if the transport has ports.
    pub fn four_tuple(&self) -> Option<FourTuple> {
        Some(FourTuple::new(self.src_endpoint()?, self.dst_endpoint()?))
    }

    /// Returns the TCP segment if this is a TCP packet.
    pub fn tcp(&self) -> Option<&TcpSegment> {
        match &self.transport {
            Transport::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the UDP datagram if this is a UDP packet.
    pub fn udp(&self) -> Option<&UdpDatagram> {
        match &self.transport {
            Transport::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// Serialises the full packet (IP header plus transport), recomputing
    /// checksums and length fields.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut copy = self.clone();
        copy.sync_payload();
        copy.ip.to_bytes()
    }

    /// Total serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(
            Endpoint::v4(10, 0, 0, 2, 40000),
            Endpoint::v4(216, 58, 221, 132, 443),
        )
    }

    #[test]
    fn tcp_packet_roundtrip_through_bytes() {
        let p = builder().tcp_syn(12345);
        let bytes = p.to_bytes();
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.four_tuple(), p.four_tuple());
        assert!(parsed.tcp().unwrap().is_syn());
        assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn udp_packet_roundtrip_through_bytes() {
        let p = builder().udp(b"hello".to_vec());
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(parsed.udp().unwrap().payload, b"hello");
        assert_eq!(parsed.src_endpoint().unwrap().port, 40000);
    }

    #[test]
    fn unknown_transport_is_preserved() {
        let ip = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            47, // GRE.
            vec![1, 2, 3, 4],
        );
        let parsed = Packet::parse(&ip.to_bytes()).unwrap();
        assert!(matches!(parsed.transport, Transport::Other(47, _)));
        assert!(parsed.four_tuple().is_none());
        assert_eq!(parsed.to_bytes(), ip.to_bytes());
    }

    #[test]
    fn empty_buffer_is_rejected() {
        assert!(Packet::parse(&[]).is_err());
        assert!(Packet::parse(&[0x00]).is_err());
    }

    #[test]
    fn sync_payload_updates_after_mutation() {
        let mut p = builder().tcp_syn(1);
        if let Transport::Tcp(t) = &mut p.transport {
            t.flags |= TcpFlags::ACK;
            t.ack = 100;
        }
        p.sync_payload();
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert!(parsed.tcp().unwrap().is_syn_ack());
    }

    #[test]
    fn wire_len_matches_serialisation() {
        let p = builder().tcp_data(10, 20, vec![0u8; 100]);
        assert_eq!(p.wire_len(), p.to_bytes().len());
        assert_eq!(p.wire_len(), 20 + 20 + 100);
    }
}
