//! UDP datagram parsing and serialisation.
//!
//! MopEye relays all UDP traffic but only *measures* DNS (§2.2); the datagram
//! layer here carries both.

use std::net::IpAddr;

use crate::checksum::{transport_checksum_v4, transport_checksum_v6};
use crate::error::Result;

/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        Self { src_port, dst_port, payload }
    }

    /// Returns true if either port is the DNS port (53).
    pub fn is_dns(&self) -> bool {
        self.src_port == 53 || self.dst_port == 53
    }

    /// Total datagram length (header plus payload).
    pub fn len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// Returns true if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Parses a UDP datagram from `data`.
    ///
    /// A thin wrapper over the zero-copy [`crate::view::UdpView`], which owns
    /// the validation logic.
    pub fn parse(data: &[u8]) -> Result<Self> {
        Ok(crate::view::UdpView::new(data)?.to_owned())
    }

    /// Serialises the datagram with a zero checksum (legal for IPv4).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        self.encode_into(&mut out);
        out
    }

    /// Serialises the datagram with the pseudo-header checksum filled in.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are not the same IP version.
    pub fn to_bytes_with_checksum(&self, src: IpAddr, dst: IpAddr) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        self.encode_with_checksum_into(src, dst, &mut out);
        out
    }

    /// Appends the serialised datagram (zero checksum) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(self.len() as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // Checksum placeholder.
        out.extend_from_slice(&self.payload);
    }

    /// Appends the serialised datagram to `out` and patches in the
    /// pseudo-header checksum.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are not the same IP version.
    pub fn encode_with_checksum_into(&self, src: IpAddr, dst: IpAddr, out: &mut Vec<u8>) {
        let start = out.len();
        self.encode_into(out);
        let checksum = match (src, dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                transport_checksum_v4(s, d, crate::IPPROTO_UDP, &out[start..])
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                transport_checksum_v6(s, d, crate::IPPROTO_UDP, &out[start..])
            }
            _ => panic!("mixed address families in UDP checksum"),
        };
        out[start + 6..start + 8].copy_from_slice(&checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(40001, 53, vec![0xde, 0xad, 0xbe, 0xef]);
        let parsed = UdpDatagram::parse(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
        assert!(parsed.is_dns());
        assert_eq!(parsed.len(), 12);
    }

    #[test]
    fn non_dns_ports() {
        let d = UdpDatagram::new(40001, 4500, vec![]);
        assert!(!d.is_dns());
        assert!(d.is_empty());
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let d = UdpDatagram::new(1, 2, vec![1, 2, 3]);
        let mut bytes = d.to_bytes();
        bytes.extend_from_slice(&[0xff; 4]);
        assert_eq!(UdpDatagram::parse(&bytes).unwrap().payload, vec![1, 2, 3]);
    }

    #[test]
    fn truncated_is_rejected() {
        assert!(UdpDatagram::parse(&[0; 4]).is_err());
        let d = UdpDatagram::new(1, 2, vec![1, 2, 3]);
        let mut bytes = d.to_bytes();
        bytes[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(UdpDatagram::parse(&bytes).is_err());
    }

    #[test]
    fn checksum_is_nonzero() {
        let d = UdpDatagram::new(40001, 53, vec![1, 2, 3]);
        let bytes = d.to_bytes_with_checksum(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            IpAddr::V4(Ipv4Addr::new(8, 8, 8, 8)),
        );
        assert_ne!(&bytes[6..8], &[0, 0]);
    }
}
