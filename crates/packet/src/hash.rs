//! The workspace's stable hashing primitive.
//!
//! [`StableHasher`] is an incremental FNV-1a over bytes, with an optional
//! splitmix64-style avalanche finish. Unlike [`std::hash::Hash`] (whose
//! `HashMap` hasher may be seeded per process), its output is reproducible
//! across runs, machines and toolchains — which is what makes it usable for
//! shard keys and for run digests that are persisted (e.g. in
//! `BENCH_pr3.json`) and compared across versions. Every stable hash in the
//! workspace goes through this one implementation so the constants cannot
//! drift apart.

/// Incremental FNV-1a with a platform-stable output.
///
/// ```
/// use mop_packet::StableHasher;
/// let mut a = StableHasher::new();
/// a.write_str("example");
/// let mut b = StableHasher::new();
/// b.write_str("example");
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.write_u8(*b);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::FNV_PRIME);
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The raw FNV-1a state. Right for equality digests; for modulo
    /// bucketing use [`StableHasher::finish_mixed`].
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// The state passed through an avalanche mix (splitmix64's finaliser).
    /// FNV alone diffuses poorly into the low bits; the mix makes
    /// `hash % buckets` spread evenly, which is what shard keys need.
    pub fn finish_mixed(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_values_are_stable() {
        // The empty input is the offset basis, and one pinned non-trivial
        // value guards against the constants drifting: digests derived from
        // this hasher are persisted (BENCH_pr3.json) and compared across
        // versions. (The multiplier is the workspace's long-standing
        // variant, shared with SimRng::fork — not the textbook FNV prime.)
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 12_642_967_877_113_212_044);
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mixed_output_spreads_low_bits() {
        // Near-identical structured inputs must not cluster mod 8.
        let mut counts = [0usize; 8];
        for i in 0..4096u32 {
            let mut h = StableHasher::new();
            h.write_bytes(&[10, 0, (i >> 8) as u8, i as u8]);
            h.write_u64(443);
            counts[(h.finish_mixed() % 8) as usize] += 1;
        }
        assert!(counts.iter().all(|c| *c > 256), "clustered: {counts:?}");
    }
}
