//! Property-based tests for the packet codecs: every well-formed value must
//! survive a serialise → parse round trip, and parsers must never panic on
//! arbitrary bytes.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use mop_packet::{
    DnsMessage, Endpoint, Ipv4Packet, Ipv6Packet, Packet, PacketBuilder, SackBlocks, TcpFlags,
    TcpOption, TcpSegment, UdpDatagram, IPPROTO_TCP,
};

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..=0x3f).prop_map(TcpFlags::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ipv4_roundtrips(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        protocol in 0u8..=255,
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..1600),
    ) {
        let mut packet = Ipv4Packet::new(src, dst, protocol, payload);
        packet.ttl = ttl;
        let parsed = Ipv4Packet::parse(&packet.to_bytes()).unwrap();
        prop_assert_eq!(parsed, packet);
    }

    #[test]
    fn ipv6_roundtrips(
        src in any::<[u8; 16]>(),
        dst in any::<[u8; 16]>(),
        next_header in 0u8..=255,
        flow_label in 0u32..=0x000f_ffff,
        payload in proptest::collection::vec(any::<u8>(), 0..1600),
    ) {
        let mut packet = Ipv6Packet::new(src.into(), dst.into(), next_header, payload);
        packet.flow_label = flow_label;
        let parsed = Ipv6Packet::parse(&packet.to_bytes()).unwrap();
        prop_assert_eq!(parsed, packet);
    }

    #[test]
    fn tcp_segments_roundtrip(
        src_port in 1u16..=65535,
        dst_port in 1u16..=65535,
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        window in any::<u16>(),
        mss in 536u16..=1460,
        payload in proptest::collection::vec(any::<u8>(), 0..1460),
    ) {
        let mut seg = TcpSegment::new(src_port, dst_port, seq, ack, flags);
        seg.window = window;
        seg.options = vec![TcpOption::MaximumSegmentSize(mss), TcpOption::SackPermitted].into();
        seg.payload = payload;
        let parsed = TcpSegment::parse(&seg.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &seg);
        // Sequence space accounting is consistent with the flags.
        let expected = seg.payload.len() as u32
            + u32::from(flags.contains(TcpFlags::SYN))
            + u32::from(flags.contains(TcpFlags::FIN));
        prop_assert_eq!(seg.sequence_len(), expected);
    }

    /// SACK options round-trip through the owned codec and the zero-copy
    /// view for every block count the option can carry (RFC 2018: 1–4).
    #[test]
    fn sack_options_roundtrip_at_every_block_count(
        src_port in 1u16..=65535,
        seq in any::<u32>(),
        ack in any::<u32>(),
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..5),
    ) {
        let blocks = SackBlocks::new(&edges);
        let mut seg = TcpSegment::new(src_port, 443, seq, ack, TcpFlags::ACK);
        seg.options = vec![TcpOption::Sack(blocks)].into();
        let bytes = seg.to_bytes();
        let parsed = TcpSegment::parse(&bytes).unwrap();
        prop_assert_eq!(&parsed, &seg);
        prop_assert_eq!(parsed.sack_blocks(), Some(blocks));
        // The zero-copy view decodes the identical blocks.
        let view = mop_packet::TcpSegmentView::new(&bytes).unwrap();
        prop_assert_eq!(view.sack_blocks(), Some(blocks));
        prop_assert_eq!(view.to_owned(), seg);
    }

    /// SACK mixed with the other options the relay manipulates survives a
    /// round trip with ordering intact.
    #[test]
    fn sack_coexists_with_other_options(
        mss in 536u16..=1460,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..4),
    ) {
        let blocks = SackBlocks::new(&edges);
        let mut seg = TcpSegment::new(40000, 443, 7, 9, TcpFlags::ACK);
        seg.options = vec![
            TcpOption::MaximumSegmentSize(mss),
            TcpOption::Nop,
            TcpOption::Sack(blocks),
        ].into();
        let parsed = TcpSegment::parse(&seg.to_bytes()).unwrap();
        prop_assert_eq!(&parsed.options, &seg.options);
        prop_assert_eq!(parsed.mss(), Some(mss));
        prop_assert_eq!(parsed.sack_blocks(), Some(blocks));
    }

    #[test]
    fn udp_datagrams_roundtrip(
        src_port in 1u16..=65535,
        dst_port in 1u16..=65535,
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let datagram = UdpDatagram::new(src_port, dst_port, payload);
        let parsed = UdpDatagram::parse(&datagram.to_bytes()).unwrap();
        prop_assert_eq!(parsed, datagram);
    }

    #[test]
    fn dns_queries_roundtrip(
        id in any::<u16>(),
        labels in proptest::collection::vec("[a-z0-9]{1,12}", 1..5),
        addrs in proptest::collection::vec(arb_ipv4(), 0..4),
        ttl in 1u32..86_400,
    ) {
        let name = labels.join(".");
        let query = DnsMessage::query(id, &name);
        let parsed_query = DnsMessage::parse(&query.to_bytes()).unwrap();
        prop_assert_eq!(parsed_query.queried_name(), Some(name.as_str()));
        let answer = DnsMessage::answer(&query, &addrs, ttl);
        let parsed_answer = DnsMessage::parse(&answer.to_bytes()).unwrap();
        prop_assert_eq!(parsed_answer.a_records(), addrs);
        prop_assert!(parsed_answer.flags.response);
        prop_assert_eq!(parsed_answer.id, id);
    }

    #[test]
    fn full_packets_roundtrip_and_checksum_verifies(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        src_port in 1u16..=65535,
        dst_port in 1u16..=65535,
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let builder = PacketBuilder::new(Endpoint::new(src, src_port), Endpoint::new(dst, dst_port));
        let packet = builder.tcp_data(seq, 0, payload);
        let bytes = packet.to_bytes();
        // The IPv4 checksum is valid (parse verifies it) and the packet
        // reparses identically.
        let parsed = Packet::parse(&bytes).unwrap();
        prop_assert_eq!(parsed.to_bytes(), bytes);
        prop_assert_eq!(parsed.ip.protocol(), IPPROTO_TCP);
        prop_assert_eq!(parsed.four_tuple(), packet.four_tuple());
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::parse(&bytes);
        let _ = Ipv4Packet::parse(&bytes);
        let _ = Ipv6Packet::parse(&bytes);
        let _ = TcpSegment::parse(&bytes);
        let _ = UdpDatagram::parse(&bytes);
        let _ = DnsMessage::parse(&bytes);
        let _ = mop_packet::PacketView::parse(&bytes);
        let _ = mop_packet::TcpSegmentView::new(&bytes);
        let _ = mop_packet::UdpView::new(&bytes);
    }

    /// The zero-copy views and the owned parsers must accept/reject the same
    /// inputs and agree on every parsed field.
    #[test]
    fn views_agree_with_owned_parsers_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        match (Packet::parse(&bytes), mop_packet::PacketView::parse(&bytes)) {
            (Ok(owned), Ok(view)) => {
                prop_assert_eq!(&view.to_owned(), &owned);
                prop_assert_eq!(view.four_tuple(), owned.four_tuple());
            }
            (Err(_), Err(_)) => {}
            (owned, view) => panic!("owned {owned:?} disagrees with view {view:?}"),
        }
        match (TcpSegment::parse(&bytes), mop_packet::TcpSegmentView::new(&bytes)) {
            (Ok(owned), Ok(view)) => prop_assert_eq!(view.to_owned(), owned),
            (Err(_), Err(_)) => {}
            (owned, view) => panic!("owned segment {owned:?} disagrees with view {view:?}"),
        }
    }

    /// Well-formed segments agree between the owned codec and the views at
    /// every payload size from empty to beyond the MSS.
    #[test]
    fn tcp_views_agree_with_owned_across_payload_sizes(
        seq in any::<u32>(),
        flags in arb_flags(),
        len in 0usize..=1461,
    ) {
        let mut seg = TcpSegment::new(40000, 443, seq, 0, flags);
        seg.payload = vec![0x5a; len];
        let bytes = seg.to_bytes();
        let view = mop_packet::TcpSegmentView::new(&bytes).unwrap();
        prop_assert_eq!(view.to_owned(), TcpSegment::parse(&bytes).unwrap());
        prop_assert_eq!(view.payload().len(), len);
        prop_assert_eq!(view.sequence_len(), seg.sequence_len());
        prop_assert_eq!(view.is_pure_ack(), seg.is_pure_ack());
    }

    #[test]
    fn corrupting_one_header_byte_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        corrupt_index in 0usize..20,
        corrupt_value in any::<u8>(),
    ) {
        let builder = PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 1), Endpoint::v4(8, 8, 8, 8, 53));
        let mut bytes = builder.udp(payload).to_bytes();
        let idx = corrupt_index % bytes.len();
        bytes[idx] = corrupt_value;
        let _ = Packet::parse(&bytes);
    }
}
