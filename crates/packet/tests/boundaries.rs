//! Boundary tests for the packet codec round trips.
//!
//! The zero-copy views must agree byte-for-byte with the owned types at the
//! edges the relay actually hits: empty payloads, full-MSS payloads,
//! odd-length checksum inputs, and malformed or truncated option lists.

use std::net::IpAddr;

use mop_packet::checksum::Checksum;
use mop_packet::tcp::MOPEYE_MSS;
use mop_packet::{
    Endpoint, Ipv4Packet, Ipv4View, Packet, PacketBuilder, PacketError, PacketView, TcpFlags,
    TcpOption, TcpSegment, TcpSegmentView, UdpDatagram, UdpView,
};

fn builder() -> PacketBuilder {
    PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
}

/// Owned parse and view parse of the same bytes must agree on every field,
/// and both must re-encode to the identical byte string.
fn assert_codec_agreement(bytes: &[u8]) {
    let owned = Packet::parse(bytes).expect("owned parse");
    let view = PacketView::parse(bytes).expect("view parse");
    assert_eq!(owned.four_tuple(), view.four_tuple());
    assert_eq!(owned.src_endpoint(), view.src_endpoint());
    assert_eq!(owned.dst_endpoint(), view.dst_endpoint());
    let reowned = view.to_owned();
    assert_eq!(owned, reowned, "view.to_owned() must equal Packet::parse");
    assert_eq!(owned.to_bytes(), bytes, "owned re-encode must round trip");
    assert_eq!(reowned.to_bytes(), bytes, "view re-encode must round trip");
    assert_eq!(owned.wire_len(), bytes.len(), "wire_len is computed, must match");
    if let (Some(to), Some(tv)) = (owned.tcp(), view.tcp()) {
        assert_eq!(to.seq, tv.seq());
        assert_eq!(to.ack, tv.ack());
        assert_eq!(to.flags, tv.flags());
        assert_eq!(to.window, tv.window());
        assert_eq!(to.urgent, tv.urgent());
        assert_eq!(to.payload, tv.payload());
        assert_eq!(to.mss(), tv.mss());
        assert_eq!(to.window_scale(), tv.window_scale());
        assert_eq!(to.is_pure_ack(), tv.is_pure_ack());
        assert_eq!(to.sequence_len(), tv.sequence_len());
        assert_eq!(to.header_len(), tv.header_len());
    }
}

#[test]
fn zero_length_payload_round_trips_in_both_codecs() {
    for packet in [
        builder().tcp_ack(1, 1),
        builder().tcp_data(1, 1, Vec::new()),
        builder().udp(Vec::new()),
    ] {
        assert_codec_agreement(&packet.to_bytes());
    }
}

#[test]
fn maximum_mss_payload_round_trips_in_both_codecs() {
    let payload = vec![0xab; usize::from(MOPEYE_MSS)];
    let bytes = builder().tcp_data(1001, 500, payload.clone()).to_bytes();
    assert_codec_agreement(&bytes);
    let view = PacketView::parse(&bytes).unwrap();
    assert_eq!(view.tcp().unwrap().payload(), &payload[..]);
    // One byte beyond the MSS still encodes/parses (the MSS is advisory).
    let bytes = builder().tcp_data(1001, 500, vec![0xcd; usize::from(MOPEYE_MSS) + 1]).to_bytes();
    assert_codec_agreement(&bytes);
}

#[test]
fn odd_length_payloads_checksum_identically_in_both_codecs() {
    // Odd-length segments exercise the RFC 1071 trailing-byte padding in the
    // checksum; the encoded checksum must verify for every parity.
    for len in [0usize, 1, 2, 3, 1399, 1400] {
        let packet = builder().tcp_data(7, 9, vec![0x55; len]);
        let bytes = packet.to_bytes();
        assert_codec_agreement(&bytes);
        // Verify the transport checksum folds to zero over the pseudo-header.
        let view = Ipv4View::new(&bytes).unwrap();
        let mut c = Checksum::new();
        c.add_bytes(&view.src().octets());
        c.add_bytes(&view.dst().octets());
        c.add_u16(u16::from(view.protocol()));
        c.add_u16(view.payload().len() as u16);
        c.add_bytes(view.payload());
        assert_eq!(c.finish(), 0, "checksum must verify for payload len {len}");
    }
}

#[test]
fn segment_level_views_agree_with_owned_parse_on_option_shapes() {
    let mut seg = TcpSegment::new(40000, 443, 1000, 0, TcpFlags::SYN);
    seg.options = vec![
        TcpOption::MaximumSegmentSize(MOPEYE_MSS),
        TcpOption::SackPermitted,
        TcpOption::Nop,
        TcpOption::WindowScale(7),
        TcpOption::Timestamps(123456, 654321),
        TcpOption::Unknown(254, [9, 8, 7].into()),
    ].into();
    let bytes = seg.to_bytes();
    let owned = TcpSegment::parse(&bytes).unwrap();
    let view = TcpSegmentView::new(&bytes).unwrap();
    assert_eq!(view.to_owned(), owned);
    let from_view: Vec<TcpOption> = view.options().map(|o| o.to_owned()).collect();
    let from_owned: Vec<TcpOption> = owned.options.iter().collect();
    assert_eq!(from_view, from_owned);
    // And the re-encode round trips through encode_into on a reused buffer.
    let mut out = Vec::new();
    owned.encode_into(&mut out);
    assert_eq!(out, bytes);
}

#[test]
fn malformed_option_lists_are_rejected_identically() {
    // A SYN whose option region claims a length that overruns the header.
    let mut seg = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
    seg.options = vec![TcpOption::MaximumSegmentSize(1460)].into();
    let mut bytes = seg.to_bytes();
    // data offset 24 → option region is bytes 20..24 = [2, 4, mss_hi, mss_lo].
    bytes[21] = 40; // Option length 40 > remaining region.
    let owned = TcpSegment::parse(&bytes);
    let view = TcpSegmentView::new(&bytes);
    assert!(matches!(owned, Err(PacketError::BadHeaderLength(40))), "{owned:?}");
    assert!(matches!(view, Err(PacketError::BadHeaderLength(40))), "{view:?}");

    // Option length below the minimum of two.
    bytes[21] = 1;
    assert!(matches!(TcpSegment::parse(&bytes), Err(PacketError::BadHeaderLength(1))));
    assert!(matches!(TcpSegmentView::new(&bytes), Err(PacketError::BadHeaderLength(1))));

    // A kind byte with no length byte at the very end of the option region.
    bytes[20] = 1; // NOP
    bytes[21] = 1; // NOP
    bytes[22] = 1; // NOP
    bytes[23] = 253; // Kind with its length byte truncated by the header end.
    assert!(matches!(
        TcpSegment::parse(&bytes),
        Err(PacketError::Truncated { what: "TCP option length", .. })
    ));
    assert!(matches!(
        TcpSegmentView::new(&bytes),
        Err(PacketError::Truncated { what: "TCP option length", .. })
    ));

    // An end-of-options marker stops both parsers without error.
    bytes[20] = 0;
    let owned = TcpSegment::parse(&bytes).unwrap();
    let view = TcpSegmentView::new(&bytes).unwrap();
    assert!(owned.options.is_empty());
    assert_eq!(view.options().count(), 0);
}

#[test]
fn truncated_transport_layers_are_rejected_identically() {
    // A valid IPv4 header whose payload is too short for a TCP header.
    let ip = Ipv4Packet::new(
        "10.0.0.2".parse().unwrap(),
        "10.0.0.1".parse().unwrap(),
        6,
        vec![0u8; 10],
    );
    let bytes = ip.to_bytes();
    assert!(matches!(
        Packet::parse(&bytes),
        Err(PacketError::Truncated { what: "TCP header", .. })
    ));
    assert!(matches!(
        PacketView::parse(&bytes),
        Err(PacketError::Truncated { what: "TCP header", .. })
    ));
    // Same for UDP.
    let ip = Ipv4Packet::new(
        "10.0.0.2".parse().unwrap(),
        "10.0.0.1".parse().unwrap(),
        17,
        vec![0u8; 4],
    );
    let bytes = ip.to_bytes();
    assert!(matches!(
        Packet::parse(&bytes),
        Err(PacketError::Truncated { what: "UDP header", .. })
    ));
    assert!(matches!(
        PacketView::parse(&bytes),
        Err(PacketError::Truncated { what: "UDP header", .. })
    ));
}

#[test]
fn udp_views_honour_the_length_field_boundary() {
    let datagram = UdpDatagram::new(40001, 53, vec![1, 2, 3]);
    let mut bytes = datagram.to_bytes();
    bytes.extend_from_slice(&[0xff; 5]); // Trailing junk beyond the UDP length.
    let owned = UdpDatagram::parse(&bytes).unwrap();
    let view = UdpView::new(&bytes).unwrap();
    assert_eq!(owned.payload, view.payload());
    assert_eq!(view.to_owned(), owned);
    // A length field larger than the buffer is rejected by both.
    bytes[4..6].copy_from_slice(&100u16.to_be_bytes());
    assert!(UdpDatagram::parse(&bytes).is_err());
    assert!(UdpView::new(&bytes).is_err());
}

#[test]
fn encode_into_composes_with_checksums_on_reused_buffers() {
    // The engine encodes every outbound packet into a pooled buffer; the
    // result must be identical to the one-shot to_bytes() output, for both
    // address families and for empty and full payloads.
    let v6 = PacketBuilder::new(
        Endpoint::new("fe80::2".parse::<std::net::Ipv6Addr>().unwrap(), 40000),
        Endpoint::new("2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap(), 443),
    );
    let mut out = Vec::new();
    for packet in [
        builder().tcp_syn(1),
        builder().tcp_data(1, 1, vec![0x5a; 1460]),
        builder().udp(b"dns-ish".to_vec()),
        v6.tcp_syn(7),
        v6.tcp_data(8, 9, vec![1; 333]),
    ] {
        out.clear();
        packet.encode_into(&mut out);
        assert_eq!(out, packet.to_bytes());
        assert_eq!(out.len(), packet.wire_len());
        // Both encodings reparse to the same packet.
        assert_eq!(Packet::parse(&out).unwrap(), packet.clone());
    }
}

#[test]
fn checksum_helpers_agree_between_slice_parities() {
    // add_bytes on an odd slice equals the even slice padded with zero — the
    // invariant the in-place encoders rely on when patching checksums.
    let mut odd = Checksum::new();
    odd.add_bytes(&[0xde, 0xad, 0xbe]);
    let mut even = Checksum::new();
    even.add_bytes(&[0xde, 0xad, 0xbe, 0x00]);
    assert_eq!(odd.finish(), even.finish());
}

#[test]
fn ipv4_view_and_owned_agree_including_options() {
    let mut p = Ipv4Packet::new(
        "10.0.0.2".parse().unwrap(),
        "8.8.8.8".parse().unwrap(),
        17,
        UdpDatagram::new(1000, 53, vec![5; 7]).to_bytes_with_checksum(
            IpAddr::V4("10.0.0.2".parse().unwrap()),
            IpAddr::V4("8.8.8.8".parse().unwrap()),
        ),
    );
    p.options = vec![1, 1, 1, 1];
    let bytes = p.to_bytes();
    let owned = Ipv4Packet::parse(&bytes).unwrap();
    let view = Ipv4View::new(&bytes).unwrap();
    assert_eq!(view.to_owned(), owned);
    assert_eq!(view.options(), &[1, 1, 1, 1]);
    assert_eq!(view.header_len(), 24);
}
