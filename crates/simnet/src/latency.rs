//! Latency models used for path RTTs, first-hop delays and system costs.


use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over delays, sampled in milliseconds.
///
/// Path latencies in the crowdsourced dataset are long-tailed, which is why
/// the paper reports medians rather than means (§4.2.2); the log-normal
/// variants here are parameterised by their median for that reason.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// A constant delay.
    Constant {
        /// The delay in milliseconds.
        ms: f64,
    },
    /// Uniformly distributed delay in `[lo_ms, hi_ms)`.
    Uniform {
        /// Lower bound in milliseconds.
        lo_ms: f64,
        /// Upper bound in milliseconds.
        hi_ms: f64,
    },
    /// Normally distributed delay, truncated at `min_ms`.
    Normal {
        /// Mean in milliseconds.
        mean_ms: f64,
        /// Standard deviation in milliseconds.
        std_ms: f64,
        /// Lower truncation bound in milliseconds.
        min_ms: f64,
    },
    /// Log-normal delay parameterised by its median, shifted by a floor.
    ///
    /// `floor_ms` models the propagation component that no amount of luck can
    /// beat (e.g., the ~43 ms minimum the paper observes for Cricket and U.S.
    /// Cellular DNS, §4.2.3).
    LogNormal {
        /// Median of the variable part in milliseconds.
        median_ms: f64,
        /// Sigma of the underlying normal distribution.
        sigma: f64,
        /// Additive floor in milliseconds.
        floor_ms: f64,
    },
    /// A two-component mixture: with probability `p_second`, sample the
    /// second model instead of the first. Used for ISPs whose devices split
    /// between LTE and non-LTE attachments (Figure 11).
    Mixture {
        /// The primary model.
        primary: Box<LatencyModel>,
        /// The secondary model.
        secondary: Box<LatencyModel>,
        /// Probability of sampling the secondary model.
        p_second: f64,
    },
}

impl LatencyModel {
    /// A constant delay of `ms` milliseconds.
    pub fn constant(ms: f64) -> Self {
        LatencyModel::Constant { ms }
    }

    /// A uniform delay between `lo_ms` and `hi_ms`.
    pub fn uniform(lo_ms: f64, hi_ms: f64) -> Self {
        LatencyModel::Uniform { lo_ms, hi_ms }
    }

    /// A truncated normal delay.
    pub fn normal(mean_ms: f64, std_ms: f64) -> Self {
        LatencyModel::Normal { mean_ms, std_ms, min_ms: 0.0 }
    }

    /// A log-normal delay with the given median and a moderate tail.
    pub fn lognormal(median_ms: f64) -> Self {
        LatencyModel::LogNormal { median_ms, sigma: 0.45, floor_ms: 0.0 }
    }

    /// A log-normal delay with explicit tail weight and floor.
    pub fn lognormal_with(median_ms: f64, sigma: f64, floor_ms: f64) -> Self {
        LatencyModel::LogNormal { median_ms, sigma, floor_ms }
    }

    /// A mixture of two models.
    pub fn mixture(primary: LatencyModel, secondary: LatencyModel, p_second: f64) -> Self {
        LatencyModel::Mixture {
            primary: Box::new(primary),
            secondary: Box::new(secondary),
            p_second,
        }
    }

    /// Samples a delay in milliseconds.
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        match self {
            LatencyModel::Constant { ms } => *ms,
            LatencyModel::Uniform { lo_ms, hi_ms } => rng.uniform(*lo_ms, *hi_ms),
            LatencyModel::Normal { mean_ms, std_ms, min_ms } => {
                rng.normal(*mean_ms, *std_ms).max(*min_ms)
            }
            LatencyModel::LogNormal { median_ms, sigma, floor_ms } => {
                floor_ms + rng.lognormal_median(*median_ms, *sigma)
            }
            LatencyModel::Mixture { primary, secondary, p_second } => {
                if rng.chance(*p_second) {
                    secondary.sample_ms(rng)
                } else {
                    primary.sample_ms(rng)
                }
            }
        }
        .max(0.0)
    }

    /// Samples a delay as a [`SimDuration`].
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_millis_f64(self.sample_ms(rng))
    }

    /// The nominal (median-ish) value of the model in milliseconds, used when
    /// a deterministic summary is needed without sampling.
    pub fn nominal_ms(&self) -> f64 {
        match self {
            LatencyModel::Constant { ms } => *ms,
            LatencyModel::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            LatencyModel::Normal { mean_ms, min_ms, .. } => mean_ms.max(*min_ms),
            LatencyModel::LogNormal { median_ms, floor_ms, .. } => floor_ms + median_ms,
            LatencyModel::Mixture { primary, secondary, p_second } => {
                primary.nominal_ms() * (1.0 - p_second) + secondary.nominal_ms() * p_second
            }
        }
    }

    /// Scales the model's delays by `factor` (used to derive upload paths
    /// from download paths, or degraded variants of a base profile).
    pub fn scaled(&self, factor: f64) -> Self {
        match self {
            LatencyModel::Constant { ms } => LatencyModel::Constant { ms: ms * factor },
            LatencyModel::Uniform { lo_ms, hi_ms } => {
                LatencyModel::Uniform { lo_ms: lo_ms * factor, hi_ms: hi_ms * factor }
            }
            LatencyModel::Normal { mean_ms, std_ms, min_ms } => LatencyModel::Normal {
                mean_ms: mean_ms * factor,
                std_ms: std_ms * factor,
                min_ms: min_ms * factor,
            },
            LatencyModel::LogNormal { median_ms, sigma, floor_ms } => LatencyModel::LogNormal {
                median_ms: median_ms * factor,
                sigma: *sigma,
                floor_ms: floor_ms * factor,
            },
            LatencyModel::Mixture { primary, secondary, p_second } => LatencyModel::Mixture {
                primary: Box::new(primary.scaled(factor)),
                secondary: Box::new(secondary.scaled(factor)),
                p_second: *p_second,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_of(model: &LatencyModel, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n).map(|_| model.sample_ms(&mut rng)).collect();
        v.sort_by(f64::total_cmp);
        v[n / 2]
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant(76.0);
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.sample_ms(&mut rng), 76.0);
        }
        assert_eq!(m.nominal_ms(), 76.0);
    }

    #[test]
    fn lognormal_median_tracks_parameter() {
        for target in [33.0, 58.0, 281.0] {
            let m = LatencyModel::lognormal(target);
            let med = median_of(&m, 4001, 9);
            assert!((med - target).abs() / target < 0.12, "median {med} vs target {target}");
        }
    }

    #[test]
    fn floor_bounds_minimum() {
        let m = LatencyModel::lognormal_with(20.0, 0.6, 43.0);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..2000 {
            assert!(m.sample_ms(&mut rng) >= 43.0);
        }
    }

    #[test]
    fn mixture_blends_components() {
        let m = LatencyModel::mixture(LatencyModel::constant(10.0), LatencyModel::constant(100.0), 0.5);
        let mut rng = SimRng::seed_from_u64(2);
        let n = 4000;
        let high = (0..n).filter(|_| m.sample_ms(&mut rng) > 50.0).count();
        let frac = high as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "mixture fraction {frac}");
        assert!((m.nominal_ms() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn samples_never_negative() {
        let m = LatencyModel::normal(1.0, 10.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..2000 {
            assert!(m.sample_ms(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn scaling_scales_nominal() {
        let m = LatencyModel::lognormal_with(50.0, 0.4, 10.0).scaled(2.0);
        assert!((m.nominal_ms() - 120.0).abs() < 1e-9);
        let u = LatencyModel::uniform(1.0, 3.0).scaled(3.0);
        assert!((u.nominal_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn sample_duration_roundtrip() {
        let m = LatencyModel::constant(2.5);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng).as_micros(), 2500);
    }

    #[test]
    fn clone_and_eq_derive_work() {
        let m = LatencyModel::mixture(LatencyModel::lognormal(46.0), LatencyModel::constant(755.0), 0.1);
        assert_eq!(m.clone(), m);
    }
}
