//! A free-list buffer pool for the packet datapath.
//!
//! The relay handles one buffer per tunnel packet: the TunReader fills it,
//! the MainWorker parses it (by reference, via the zero-copy views in
//! `mop_packet`), and then the buffer is dead. Allocating a fresh `Vec<u8>`
//! for every packet puts the allocator on the per-packet critical path;
//! [`BufferPool`] recycles buffers instead, so the steady-state relay loop
//! performs no allocations at all (enforced by the `zero_alloc` regression
//! test in `mop_bench`).

/// Counters describing how a [`BufferPool`] behaved over a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created because the free list was empty.
    pub allocations: u64,
    /// Buffers handed out from the free list (no allocation).
    pub reuses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
}

impl PoolStats {
    /// Adds another pool's counters into this one (cross-shard aggregation).
    pub fn merge(&mut self, other: &PoolStats) {
        self.allocations += other.allocations;
        self.reuses += other.reuses;
        self.recycled += other.recycled;
    }

    /// Fraction of `get` calls served without allocating.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.allocations + self.reuses;
        if total == 0 {
            return 0.0;
        }
        self.reuses as f64 / total as f64
    }
}

/// A free list of `Vec<u8>` buffers.
///
/// `get` pops a cleared buffer (or allocates one with the default capacity on
/// a cold start); `put` returns it. The free list is bounded so a burst of
/// in-flight packets cannot pin memory forever.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    default_capacity: usize,
    max_pooled: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A capacity that fits a full-MTU tunnel packet with headroom.
    pub const PACKET_CAPACITY: usize = 2048;

    /// Creates a pool handing out buffers with at least `default_capacity`.
    pub fn new(default_capacity: usize) -> Self {
        Self { free: Vec::new(), default_capacity, max_pooled: 1024, stats: PoolStats::default() }
    }

    /// Creates a pool sized for tunnel packets.
    pub fn for_packets() -> Self {
        Self::new(Self::PACKET_CAPACITY)
    }

    /// Hands out an empty buffer, reusing a recycled one when possible.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.reuses += 1;
                buf
            }
            None => {
                self.stats.allocations += 1;
                Vec::with_capacity(self.default_capacity)
            }
        }
    }

    /// Returns a buffer to the pool. The contents are cleared; the capacity
    /// is what makes recycling worthwhile.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_pooled {
            buf.clear();
            self.stats.recycled += 1;
            self.free.push(buf);
        }
    }

    /// Number of buffers currently sitting in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::for_packets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_allocates_cold_and_reuses_warm() {
        let mut pool = BufferPool::new(64);
        let a = pool.get();
        assert_eq!(a.capacity(), 64);
        assert_eq!(pool.stats().allocations, 1);
        pool.put(a);
        assert_eq!(pool.free_len(), 1);
        let b = pool.get();
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(pool.free_len(), 0);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), 64, "capacity survives recycling");
    }

    #[test]
    fn recycled_buffers_keep_grown_capacity() {
        let mut pool = BufferPool::new(16);
        let mut a = pool.get();
        a.extend_from_slice(&[0u8; 4000]);
        pool.put(a);
        let b = pool.get();
        assert!(b.capacity() >= 4000);
        assert!(b.is_empty());
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new(8);
        pool.max_pooled = 2;
        for _ in 0..5 {
            let buf = pool.get();
            // Get them all out first so puts exceed the bound.
            pool.free.clear();
            pool.put(buf);
        }
        assert!(pool.free_len() <= 2);
    }

    #[test]
    fn reuse_rate_reflects_steady_state() {
        let mut pool = BufferPool::for_packets();
        assert_eq!(pool.stats().reuse_rate(), 0.0);
        let buf = pool.get();
        pool.put(buf);
        for _ in 0..99 {
            let buf = pool.get();
            pool.put(buf);
        }
        assert!(pool.stats().reuse_rate() > 0.98);
        assert_eq!(pool.stats().allocations, 1);
        assert_eq!(pool.stats().recycled, 100);
    }
}
