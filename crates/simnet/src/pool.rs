//! Buffer pools for the packet datapath: a free-list of single-packet
//! buffers and a slab-batch pool for the vectored datapath.
//!
//! The relay handles one buffer per tunnel packet: the TunReader fills it,
//! the MainWorker parses it (by reference, via the zero-copy views in
//! `mop_packet`), and then the buffer is dead. Allocating a fresh `Vec<u8>`
//! for every packet puts the allocator on the per-packet critical path;
//! [`BufferPool`] recycles buffers instead, so the steady-state relay loop
//! performs no allocations at all (enforced by the `zero_alloc` regression
//! tests in `mop_bench`).
//!
//! The batched engine loop works on [`SlabBatch`]es instead of loose
//! buffers: one contiguous byte slab carrying many packets, each described
//! by an inline [`PacketSlot`] (offset, length, due time). A batch is the
//! unit of work between pipeline stages — it amortises dispatch and cache
//! costs over a burst — and [`BatchPool`] recycles whole slabs the same way
//! [`BufferPool`] recycles buffers.

use crate::time::SimTime;

/// Counters describing how a pool behaved over a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created because the free list was empty.
    pub allocations: u64,
    /// Buffers handed out from the free list (no allocation).
    pub reuses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
    /// Bytes of capacity currently resident in the free lists — a gauge, not
    /// a counter: it rises on `put` and falls on `get`, so a report shows
    /// how much memory the pool was holding when the run ended.
    pub resident_bytes: u64,
}

impl PoolStats {
    /// Adds another pool's counters into this one (cross-shard aggregation).
    /// The resident gauge sums too: the fleet total is the memory all shard
    /// pools were holding.
    pub fn merge(&mut self, other: &PoolStats) {
        self.allocations += other.allocations;
        self.reuses += other.reuses;
        self.recycled += other.recycled;
        self.resident_bytes += other.resident_bytes;
    }

    /// Fraction of `get` calls served without allocating.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.allocations + self.reuses;
        if total == 0 {
            return 0.0;
        }
        self.reuses as f64 / total as f64
    }
}

/// A free list of `Vec<u8>` buffers.
///
/// `get` pops a cleared buffer (or allocates one with the default capacity on
/// a cold start); `put` returns it. The free list is bounded so a burst of
/// in-flight packets cannot pin memory forever, and buffers that grew far
/// beyond the default capacity are quarantined in a small *jumbo* class
/// instead of circulating in the main list — a single oversized packet must
/// not permanently inflate every pooled buffer the datapath touches.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    jumbo: Vec<Vec<u8>>,
    default_capacity: usize,
    max_pooled: usize,
    max_jumbo: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A capacity that fits a full-MTU tunnel packet with headroom.
    pub const PACKET_CAPACITY: usize = 2048;

    /// A recycled buffer whose capacity exceeds the default by this factor is
    /// routed to the capped jumbo class instead of the main free list.
    pub const JUMBO_FACTOR: usize = 4;

    /// How many jumbo buffers the pool keeps before dropping the excess.
    pub const MAX_JUMBO: usize = 32;

    /// Creates a pool handing out buffers with at least `default_capacity`.
    pub fn new(default_capacity: usize) -> Self {
        Self {
            free: Vec::new(),
            jumbo: Vec::new(),
            default_capacity,
            max_pooled: 1024,
            max_jumbo: Self::MAX_JUMBO,
            stats: PoolStats::default(),
        }
    }

    /// Creates a pool sized for tunnel packets.
    pub fn for_packets() -> Self {
        Self::new(Self::PACKET_CAPACITY)
    }

    /// Hands out an empty buffer, reusing a recycled one when possible.
    /// Regular buffers are preferred; the jumbo class is drawn down only
    /// when the main list is empty (a jumbo consumer gets extra headroom, a
    /// regular consumer just wastes a bit until the buffer retires).
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop().or_else(|| self.jumbo.pop()) {
            Some(buf) => {
                self.stats.reuses += 1;
                self.stats.resident_bytes -= buf.capacity() as u64;
                buf
            }
            None => {
                self.stats.allocations += 1;
                Vec::with_capacity(self.default_capacity)
            }
        }
    }

    /// Returns a buffer to the pool. The contents are cleared; the capacity
    /// is what makes recycling worthwhile. Oversized buffers go to the capped
    /// jumbo class; beyond either cap the buffer is simply dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        let oversized = buf.capacity() > self.default_capacity.saturating_mul(Self::JUMBO_FACTOR);
        let list = if oversized { &mut self.jumbo } else { &mut self.free };
        let cap = if oversized { self.max_jumbo } else { self.max_pooled };
        if list.len() < cap {
            buf.clear();
            self.stats.recycled += 1;
            self.stats.resident_bytes += buf.capacity() as u64;
            list.push(buf);
        }
    }

    /// Number of buffers currently sitting in the free lists.
    pub fn free_len(&self) -> usize {
        self.free.len() + self.jumbo.len()
    }

    /// Number of buffers currently sitting in the jumbo class.
    pub fn jumbo_len(&self) -> usize {
        self.jumbo.len()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Restarts the per-run counters (allocations, reuses, recycled) while
    /// keeping the resident-bytes *gauge*, which describes the free list the
    /// pool still holds. Called between a resident engine's runs so a warm
    /// run's report shows what *that run* did — in steady state,
    /// `allocations == 0` with `reuses > 0`.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats { resident_bytes: self.stats.resident_bytes, ..Default::default() };
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::for_packets()
    }
}

/// One packet inside a [`SlabBatch`]: where its bytes live in the slab and
/// when the event loop owes it processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketSlot {
    /// Byte offset of the packet within the slab.
    pub offset: usize,
    /// Length of the packet in bytes.
    pub len: usize,
    /// Virtual time at which the packet is due at the MainWorker.
    pub due: SimTime,
}

/// A batch of packets in one contiguous byte slab, with inline per-packet
/// offsets, lengths and due times.
///
/// The batched datapath makes this the unit of work: ingress seals packets
/// into slabs, the engine loop coalesces same-timestamp slabs into bursts,
/// and the stages consume a whole slab per dispatch. Keeping the bytes
/// contiguous keeps a burst cache-resident; keeping the slot metadata inline
/// keeps iteration branch-free.
#[derive(Debug, Default)]
pub struct SlabBatch {
    data: Vec<u8>,
    slots: Vec<PacketSlot>,
}

impl SlabBatch {
    /// Creates an empty slab with room for `data_capacity` bytes and
    /// `slot_capacity` packets before reallocating.
    pub fn with_capacity(data_capacity: usize, slot_capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(data_capacity),
            slots: Vec::with_capacity(slot_capacity),
        }
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the batch carries no packets.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total packet bytes in the batch.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Appends one packet whose bytes are produced by `fill` (e.g. a wire
    /// encoder) appending to the slab, and returns the encoded length. The
    /// slot's due time starts at zero; stamp it with [`SlabBatch::stamp_due`]
    /// once the delivery time is known.
    pub fn push_with<F: FnOnce(&mut Vec<u8>)>(&mut self, fill: F) -> usize {
        let offset = self.data.len();
        fill(&mut self.data);
        let len = self.data.len() - offset;
        self.slots.push(PacketSlot { offset, len, due: SimTime::ZERO });
        len
    }

    /// Appends one packet by copying `bytes` into the slab.
    pub fn push_bytes(&mut self, bytes: &[u8], due: SimTime) {
        let offset = self.data.len();
        self.data.extend_from_slice(bytes);
        self.slots.push(PacketSlot { offset, len: bytes.len(), due });
    }

    /// Stamps the most recently pushed packet's due time.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty.
    pub fn stamp_due(&mut self, due: SimTime) {
        self.slots.last_mut().expect("stamp_due on an empty batch").due = due;
    }

    /// The bytes of packet `i`.
    pub fn packet(&self, i: usize) -> &[u8] {
        let slot = &self.slots[i];
        &self.data[slot.offset..slot.offset + slot.len]
    }

    /// The due time of packet `i`.
    pub fn due(&self, i: usize) -> SimTime {
        self.slots[i].due
    }

    /// Iterates the packets in batch order as `(due, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &[u8])> {
        self.slots.iter().map(|s| (s.due, &self.data[s.offset..s.offset + s.len]))
    }

    /// Moves every packet of `other` to the end of this batch (rebasing the
    /// slot offsets), leaving `other` empty — the coalescing step that merges
    /// same-timestamp bursts into one slab.
    pub fn absorb(&mut self, other: &mut SlabBatch) {
        let base = self.data.len();
        self.data.extend_from_slice(&other.data);
        self.slots.extend(
            other.slots.iter().map(|s| PacketSlot { offset: base + s.offset, ..*s }),
        );
        other.clear();
    }

    /// Keeps only the first `n` packets (and their bytes, when `n` cuts at a
    /// packet boundary the byte tail is dropped too).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.slots.len() {
            return;
        }
        let data_end = self.slots.get(n).map_or(self.data.len(), |s| s.offset);
        self.slots.truncate(n);
        self.data.truncate(data_end);
    }

    /// Empties the batch, keeping the allocations.
    pub fn clear(&mut self) {
        self.data.clear();
        self.slots.clear();
    }

    /// Bytes of memory the batch's allocations hold (data plus slot table).
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() + self.slots.capacity() * std::mem::size_of::<PacketSlot>()
    }
}

/// A free list of [`SlabBatch`]es for the batched datapath: `get` hands out
/// an empty slab (pre-sized for a burst), `put` recycles it. Bounded like
/// [`BufferPool`], and slabs that ballooned past
/// [`BatchPool::MAX_SLAB_BYTES`] are dropped instead of kept, so one giant
/// burst cannot pin memory for the rest of the run.
#[derive(Debug)]
pub struct BatchPool {
    free: Vec<SlabBatch>,
    data_capacity: usize,
    slot_capacity: usize,
    max_pooled: usize,
    stats: PoolStats,
}

impl BatchPool {
    /// Slabs whose allocations exceed this are dropped on `put`.
    pub const MAX_SLAB_BYTES: usize = 256 * 1024;

    /// Creates a pool of slabs pre-sized for `data_capacity` bytes and
    /// `slot_capacity` packets.
    pub fn new(data_capacity: usize, slot_capacity: usize) -> Self {
        Self {
            free: Vec::new(),
            data_capacity,
            slot_capacity,
            max_pooled: 1024,
            stats: PoolStats::default(),
        }
    }

    /// A pool of slabs sized for `burst` full-MTU tunnel packets.
    pub fn for_packets(burst: usize) -> Self {
        Self::new(BufferPool::PACKET_CAPACITY, burst.max(1))
    }

    /// Hands out an empty slab, reusing a recycled one when possible.
    pub fn get(&mut self) -> SlabBatch {
        match self.free.pop() {
            Some(slab) => {
                self.stats.reuses += 1;
                self.stats.resident_bytes -= slab.capacity_bytes() as u64;
                slab
            }
            None => {
                self.stats.allocations += 1;
                SlabBatch::with_capacity(self.data_capacity, self.slot_capacity)
            }
        }
    }

    /// Recycles a slab (cleared; allocations kept unless it outgrew
    /// [`BatchPool::MAX_SLAB_BYTES`] or the free list is full).
    pub fn put(&mut self, mut slab: SlabBatch) {
        if self.free.len() < self.max_pooled && slab.capacity_bytes() <= Self::MAX_SLAB_BYTES {
            slab.clear();
            self.stats.recycled += 1;
            self.stats.resident_bytes += slab.capacity_bytes() as u64;
            self.free.push(slab);
        }
    }

    /// Number of slabs currently sitting in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Restarts the per-run counters while keeping the resident-bytes gauge
    /// and the pooled slabs themselves (see [`BufferPool::reset_stats`]).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats { resident_bytes: self.stats.resident_bytes, ..Default::default() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_allocates_cold_and_reuses_warm() {
        let mut pool = BufferPool::new(64);
        let a = pool.get();
        assert_eq!(a.capacity(), 64);
        assert_eq!(pool.stats().allocations, 1);
        pool.put(a);
        assert_eq!(pool.free_len(), 1);
        assert_eq!(pool.stats().resident_bytes, 64);
        let b = pool.get();
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(pool.free_len(), 0);
        assert_eq!(pool.stats().resident_bytes, 0);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), 64, "capacity survives recycling");
    }

    #[test]
    fn recycled_buffers_keep_grown_capacity() {
        let mut pool = BufferPool::new(16);
        let mut a = pool.get();
        a.extend_from_slice(&[0u8; 4000]);
        pool.put(a);
        let b = pool.get();
        assert!(b.capacity() >= 4000);
        assert!(b.is_empty());
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new(8);
        pool.max_pooled = 2;
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn oversized_buffers_go_to_the_capped_jumbo_class() {
        let mut pool = BufferPool::new(64);
        pool.max_jumbo = 2;
        for _ in 0..4 {
            let mut buf = Vec::new();
            buf.reserve_exact(64 * BufferPool::JUMBO_FACTOR + 1);
            pool.put(buf);
        }
        // The jumbo class absorbed two and dropped the rest; the main free
        // list never saw them.
        assert_eq!(pool.jumbo_len(), 2);
        assert_eq!(pool.free.len(), 0);
        let resident = pool.stats().resident_bytes;
        assert!(resident >= 2 * (64 * BufferPool::JUMBO_FACTOR as u64 + 1));
        // Jumbo buffers are still served once the main list runs dry.
        let b = pool.get();
        assert!(b.capacity() > 64 * BufferPool::JUMBO_FACTOR);
        assert_eq!(pool.stats().reuses, 1);
        assert!(pool.stats().resident_bytes < resident);
    }

    #[test]
    fn reuse_rate_reflects_steady_state() {
        let mut pool = BufferPool::for_packets();
        assert_eq!(pool.stats().reuse_rate(), 0.0);
        let buf = pool.get();
        pool.put(buf);
        for _ in 0..99 {
            let buf = pool.get();
            pool.put(buf);
        }
        assert!(pool.stats().reuse_rate() > 0.98);
        assert_eq!(pool.stats().allocations, 1);
        assert_eq!(pool.stats().recycled, 100);
    }

    #[test]
    fn slab_batch_records_offsets_lengths_and_due_times() {
        let mut slab = SlabBatch::with_capacity(64, 4);
        let len = slab.push_with(|data| data.extend_from_slice(b"alpha"));
        assert_eq!(len, 5);
        slab.stamp_due(SimTime::from_millis(3));
        slab.push_bytes(b"be", SimTime::from_millis(7));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.byte_len(), 7);
        assert_eq!(slab.packet(0), b"alpha");
        assert_eq!(slab.packet(1), b"be");
        assert_eq!(slab.due(0), SimTime::from_millis(3));
        let collected: Vec<(SimTime, Vec<u8>)> =
            slab.iter().map(|(t, b)| (t, b.to_vec())).collect();
        assert_eq!(collected[1], (SimTime::from_millis(7), b"be".to_vec()));
    }

    #[test]
    fn absorb_rebases_offsets_and_empties_the_follower() {
        let mut a = SlabBatch::default();
        a.push_bytes(b"one", SimTime::from_millis(1));
        let mut b = SlabBatch::default();
        b.push_bytes(b"two", SimTime::from_millis(1));
        b.push_bytes(b"three", SimTime::from_millis(1));
        a.absorb(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.len(), 3);
        assert_eq!(a.packet(1), b"two");
        assert_eq!(a.packet(2), b"three");
    }

    #[test]
    fn truncate_drops_tail_packets_and_bytes() {
        let mut slab = SlabBatch::default();
        slab.push_bytes(b"aa", SimTime::ZERO);
        slab.push_bytes(b"bbb", SimTime::ZERO);
        slab.push_bytes(b"c", SimTime::ZERO);
        slab.truncate(1);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.byte_len(), 2);
        assert_eq!(slab.packet(0), b"aa");
        slab.truncate(5); // No-op beyond the end.
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn batch_pool_recycles_slabs_and_tracks_residency() {
        let mut pool = BatchPool::for_packets(16);
        let mut slab = pool.get();
        assert_eq!(pool.stats().allocations, 1);
        slab.push_bytes(&[0u8; 100], SimTime::ZERO);
        let cap = slab.capacity_bytes() as u64;
        pool.put(slab);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(pool.stats().resident_bytes, cap);
        let slab = pool.get();
        assert!(slab.is_empty(), "recycled slabs come back cleared");
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(pool.stats().resident_bytes, 0);
        pool.put(slab);
    }

    #[test]
    fn batch_pool_drops_ballooned_slabs() {
        let mut pool = BatchPool::new(64, 2);
        let mut slab = pool.get();
        slab.push_bytes(&vec![0u8; BatchPool::MAX_SLAB_BYTES + 1], SimTime::ZERO);
        pool.put(slab);
        assert_eq!(pool.free_len(), 0, "oversized slab must not be pooled");
        assert_eq!(pool.stats().recycled, 0);
        assert_eq!(pool.stats().resident_bytes, 0);
    }

    #[test]
    fn pool_stats_merge_sums_everything() {
        let mut a = PoolStats { allocations: 1, reuses: 2, recycled: 3, resident_bytes: 10 };
        let b = PoolStats { allocations: 4, reuses: 5, recycled: 6, resident_bytes: 20 };
        a.merge(&b);
        assert_eq!(a, PoolStats { allocations: 5, reuses: 7, recycled: 9, resident_bytes: 30 });
    }
}
