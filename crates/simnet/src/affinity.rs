//! Best-effort CPU core pinning behind a portable facade.
//!
//! The fleet engine can pin each shard worker to a core so a run does not
//! pay migration and cache-refill costs every time the OS rebalances
//! threads. Pinning is purely a wall-clock optimisation: virtual-time
//! results are identical pinned or not, so every function here is
//! *best-effort* — on unsupported platforms (or when the kernel refuses)
//! the calls report failure and the caller simply runs unpinned.
//!
//! The Linux implementation issues the `sched_setaffinity` /
//! `sched_getaffinity` syscalls directly (the workspace links no libc-style
//! crate), gated to the architectures whose syscall ABI is spelled out
//! below; everywhere else the stubs compile to no-ops.

/// Number of `u64` words in the affinity mask we pass to the kernel.
/// 16 words = 1024 CPUs, the kernel's conventional `CPU_SETSIZE`.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
const MASK_WORDS: usize = 16;

/// How many cores the scheduler will let this process use.
///
/// Falls back to 1 if the platform cannot say.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Pins the calling thread to `core`, returning `true` on success.
///
/// Returns `false` when the platform has no affinity support, the core index
/// is out of mask range, or the kernel rejects the request — callers treat
/// all three the same way: run unpinned.
pub fn pin_current_thread_to_core(core: usize) -> bool {
    imp::set_affinity_single(core)
}

/// Reads the calling thread's affinity mask as a list of allowed core
/// indices. `None` when the platform has no affinity support or the call
/// fails. Used by tests to round-trip a pin and restore the original mask.
pub fn current_thread_affinity() -> Option<Vec<usize>> {
    imp::get_affinity()
}

/// Restores the calling thread's affinity to `cores`, returning `true` on
/// success. The inverse of [`pin_current_thread_to_core`] for tests that
/// must not leave the thread pinned.
pub fn set_current_thread_affinity(cores: &[usize]) -> bool {
    imp::set_affinity(cores)
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::MASK_WORDS;

    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_SETAFFINITY: usize = 203;
    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_GETAFFINITY: usize = 204;

    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_SETAFFINITY: usize = 122;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_GETAFFINITY: usize = 123;

    /// Raw three-argument syscall. Returns the kernel's raw result
    /// (negative errno on failure).
    fn syscall3(nr: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the syscall numbers above take exactly these three
        // arguments; rcx/r11 are the registers the `syscall` instruction
        // itself clobbers.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above for the aarch64 `svc 0` convention (nr in x8,
        // args in x0..x2, result in x0).
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                options(nostack),
            );
        }
        ret
    }

    pub fn set_affinity_single(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        set_mask(&{
            let mut mask = [0u64; MASK_WORDS];
            mask[core / 64] = 1u64 << (core % 64);
            mask
        })
    }

    pub fn set_affinity(cores: &[usize]) -> bool {
        let mut mask = [0u64; MASK_WORDS];
        for &core in cores {
            if core >= MASK_WORDS * 64 {
                return false;
            }
            mask[core / 64] |= 1u64 << (core % 64);
        }
        if mask.iter().all(|&w| w == 0) {
            return false;
        }
        set_mask(&mask)
    }

    fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
        // pid 0 = the calling thread.
        let ret = syscall3(
            SYS_SCHED_SETAFFINITY,
            0,
            std::mem::size_of_val(mask),
            mask.as_ptr() as usize,
        );
        ret == 0
    }

    pub fn get_affinity() -> Option<Vec<usize>> {
        let mut mask = [0u64; MASK_WORDS];
        let ret = syscall3(
            SYS_SCHED_GETAFFINITY,
            0,
            std::mem::size_of_val(&mask),
            mask.as_mut_ptr() as usize,
        );
        if ret < 0 {
            return None;
        }
        let cores = mask
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| (0..64).filter(move |b| word & (1u64 << b) != 0).map(move |b| w * 64 + b))
            .collect();
        Some(cores)
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    pub fn set_affinity_single(_core: usize) -> bool {
        false
    }

    pub fn set_affinity(_cores: &[usize]) -> bool {
        false
    }

    pub fn get_affinity() -> Option<Vec<usize>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_at_least_one() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pin_round_trip_restores_the_original_mask() {
        // On platforms without affinity support every call reports failure
        // and there is nothing further to check.
        let Some(original) = current_thread_affinity() else {
            assert!(!pin_current_thread_to_core(0));
            return;
        };
        assert!(!original.is_empty());
        let target = original[0];
        assert!(pin_current_thread_to_core(target), "pin to an allowed core must succeed");
        let pinned = current_thread_affinity().expect("mask readable after pin");
        assert_eq!(pinned, vec![target]);
        // Restore so the test harness thread is not left pinned.
        assert!(set_current_thread_affinity(&original));
        assert_eq!(current_thread_affinity().expect("mask readable"), original);
    }

    #[test]
    fn out_of_range_core_is_rejected_not_undefined() {
        assert!(!pin_current_thread_to_core(1 << 20));
    }
}
