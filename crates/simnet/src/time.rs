//! Virtual time primitives.
//!
//! All timestamps in the simulation are nanoseconds since the start of the
//! run, mirroring the nanosecond-level timestamping MopEye uses on Android
//! (`System.nanoTime()`); the paper identifies coarse timestamps as one of
//! the reasons MobiPerf's RTTs are inaccurate (§4.1.1).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in virtual time, stored as nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of milliseconds.
    ///
    /// Negative and non-finite inputs are clamped to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return Self::ZERO;
        }
        Self((ms * 1_000_000.0).round() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        Self(self.0.saturating_mul(factor))
    }

    /// Multiplies the duration by a floating-point factor (clamped at zero).
    pub fn mul_f64(self, factor: f64) -> Self {
        Self::from_millis_f64(self.as_millis_f64() * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl Add for SimDuration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A point in virtual time: nanoseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: Self = Self(0);

    /// Creates a time from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a time from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = Self;
    fn add(self, rhs: SimDuration) -> Self {
        Self(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(1500).as_millis(), 1);
        assert!((SimDuration::from_millis(76).as_millis_f64() - 76.0).abs() < 1e-9);
    }

    #[test]
    fn float_millis_clamps_bad_input() {
        assert_eq!(SimDuration::from_millis_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1500);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_millis(100);
        let t1 = t0 + SimDuration::from_millis(76);
        assert_eq!((t1 - t0).as_millis(), 76);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.max(t0), t1);
        assert_eq!(t1.min(t0), t0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert!(SimTime::from_millis(5).to_string().starts_with("t+"));
    }

    #[test]
    fn sum_and_scaling() {
        let total: SimDuration =
            [SimDuration::from_millis(1), SimDuration::from_millis(2)].into_iter().sum();
        assert_eq!(total.as_millis(), 3);
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.5).as_millis(), 5);
        assert_eq!(SimDuration::from_millis(10).saturating_mul(3).as_millis(), 30);
        assert_eq!(
            SimDuration::from_millis(5).saturating_sub(SimDuration::from_millis(9)),
            SimDuration::ZERO
        );
    }
}
