//! A wire tap on the simulated access link.
//!
//! In the paper, tcpdump running with root privilege provides the reference
//! RTTs against which MopEye and MobiPerf are judged (Table 2). The tap plays
//! the same role here: it records every transport event at the interface,
//! below any measuring application, so its SYN→SYN/ACK gaps are ground truth.

use mop_packet::FourTuple;

use crate::time::{SimDuration, SimTime};

/// Direction of a tapped packet relative to the handset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDirection {
    /// Leaving the handset towards the network.
    Outbound,
    /// Arriving at the handset from the network.
    Inbound,
}

/// The kind of transport event observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapKind {
    /// A TCP SYN.
    Syn,
    /// A TCP SYN/ACK.
    SynAck,
    /// A TCP data segment of the given payload length.
    Data(usize),
    /// A TCP FIN.
    Fin,
    /// A TCP RST.
    Rst,
    /// A DNS query.
    DnsQuery,
    /// A DNS response.
    DnsResponse,
}

/// One tapped packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapRecord {
    /// When the packet crossed the interface.
    pub at: SimTime,
    /// Direction relative to the handset.
    pub direction: TapDirection,
    /// Event kind.
    pub kind: TapKind,
    /// Connection four-tuple, in the outbound orientation.
    pub flow: FourTuple,
}

/// An in-memory capture buffer.
#[derive(Debug, Default, Clone)]
pub struct WireTap {
    records: Vec<TapRecord>,
    enabled: bool,
}

impl WireTap {
    /// Creates an enabled tap.
    pub fn new() -> Self {
        Self { records: Vec::new(), enabled: true }
    }

    /// Creates a disabled tap that drops everything (zero overhead runs).
    pub fn disabled() -> Self {
        Self { records: Vec::new(), enabled: false }
    }

    /// Returns true if capturing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event.
    pub fn record(&mut self, at: SimTime, direction: TapDirection, kind: TapKind, flow: FourTuple) {
        if self.enabled {
            self.records.push(TapRecord { at, direction, kind, flow });
        }
    }

    /// All captured records in capture order.
    pub fn records(&self) -> &[TapRecord] {
        &self.records
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears the capture buffer.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// The tcpdump-style RTT of `flow`: the gap between the first outbound
    /// SYN and the first inbound SYN/ACK.
    pub fn handshake_rtt(&self, flow: FourTuple) -> Option<SimDuration> {
        let syn = self.records.iter().find(|r| {
            r.flow == flow && r.kind == TapKind::Syn && r.direction == TapDirection::Outbound
        })?;
        let syn_ack = self.records.iter().find(|r| {
            r.flow == flow
                && r.kind == TapKind::SynAck
                && r.direction == TapDirection::Inbound
                && r.at >= syn.at
        })?;
        Some(syn_ack.at - syn.at)
    }

    /// The tcpdump-style DNS RTT of `flow`: first query to first response.
    pub fn dns_rtt(&self, flow: FourTuple) -> Option<SimDuration> {
        let q = self.records.iter().find(|r| r.flow == flow && r.kind == TapKind::DnsQuery)?;
        let a = self
            .records
            .iter()
            .find(|r| r.flow == flow && r.kind == TapKind::DnsResponse && r.at >= q.at)?;
        Some(a.at - q.at)
    }

    /// All handshake RTTs in the capture, keyed by flow, in SYN order.
    pub fn all_handshake_rtts(&self) -> Vec<(FourTuple, SimDuration)> {
        let mut out = Vec::new();
        for r in &self.records {
            if r.kind == TapKind::Syn && r.direction == TapDirection::Outbound {
                if let Some(rtt) = self.handshake_rtt(r.flow) {
                    if !out.iter().any(|(f, _)| *f == r.flow) {
                        out.push((r.flow, rtt));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;

    fn flow(port: u16) -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, port), Endpoint::v4(216, 58, 221, 132, 443))
    }

    #[test]
    fn handshake_rtt_is_syn_to_synack_gap() {
        let mut tap = WireTap::new();
        let f = flow(40000);
        tap.record(SimTime::from_millis(100), TapDirection::Outbound, TapKind::Syn, f);
        tap.record(SimTime::from_millis(104), TapDirection::Inbound, TapKind::SynAck, f);
        tap.record(SimTime::from_millis(105), TapDirection::Outbound, TapKind::Data(100), f);
        assert_eq!(tap.handshake_rtt(f).unwrap().as_millis(), 4);
        assert_eq!(tap.len(), 3);
    }

    #[test]
    fn missing_synack_yields_none() {
        let mut tap = WireTap::new();
        let f = flow(40001);
        tap.record(SimTime::from_millis(10), TapDirection::Outbound, TapKind::Syn, f);
        assert!(tap.handshake_rtt(f).is_none());
        assert!(tap.handshake_rtt(flow(5)).is_none());
    }

    #[test]
    fn dns_rtt_pairs_query_with_response() {
        let mut tap = WireTap::new();
        let f = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 41000), Endpoint::v4(192, 168, 1, 1, 53));
        tap.record(SimTime::from_millis(50), TapDirection::Outbound, TapKind::DnsQuery, f);
        tap.record(SimTime::from_millis(92), TapDirection::Inbound, TapKind::DnsResponse, f);
        assert_eq!(tap.dns_rtt(f).unwrap().as_millis(), 42);
    }

    #[test]
    fn disabled_tap_records_nothing() {
        let mut tap = WireTap::disabled();
        tap.record(SimTime::ZERO, TapDirection::Outbound, TapKind::Syn, flow(1));
        assert!(tap.is_empty());
        assert!(!tap.is_enabled());
    }

    #[test]
    fn all_handshake_rtts_lists_each_flow_once() {
        let mut tap = WireTap::new();
        for (i, port) in [40000u16, 40001, 40002].iter().enumerate() {
            let f = flow(*port);
            let base = SimTime::from_millis(10 * i as u64);
            tap.record(base, TapDirection::Outbound, TapKind::Syn, f);
            tap.record(base + SimDuration::from_millis(5), TapDirection::Inbound, TapKind::SynAck, f);
        }
        // A retransmitted SYN for the first flow must not duplicate it.
        tap.record(SimTime::from_millis(100), TapDirection::Outbound, TapKind::Syn, flow(40000));
        let rtts = tap.all_handshake_rtts();
        assert_eq!(rtts.len(), 3);
        assert!(rtts.iter().all(|(_, rtt)| rtt.as_millis() == 5));
        tap.clear();
        assert!(tap.is_empty());
    }
}
