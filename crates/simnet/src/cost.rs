//! Cost models for the system calls and scheduler effects the paper's
//! optimisations target, plus resource-accounting ledgers.
//!
//! The performance engineering in §3 is entirely about where milliseconds
//! hide on an Android phone: tunnel writes that occasionally take tens of
//! milliseconds, `/proc/net` parses that usually take more than 5 ms,
//! wait/notify wake-ups that cost 1–5 ms, `protect()` calls that cost a few
//! milliseconds, and event-loop notification latency that pollutes
//! timestamps. Those costs are modelled here so the *algorithms* that avoid
//! them (lazy mapping, `queueWrite`/`newPut`, blocking connect threads,
//! `addDisallowedApplication`) can be evaluated quantitatively.

use std::collections::BTreeMap;

use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Calibrated costs of the host operations the relay performs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of one `read()` from the TUN fd when a packet is available.
    pub tun_read: LatencyModel,
    /// Base cost of one `write()` to the TUN fd, uncontended.
    pub tun_write_base: LatencyModel,
    /// Extra cost added to a tunnel write when more than one thread is
    /// writing to the single tunnel (thread competition, §3.5.1).
    pub tun_write_contended_extra: LatencyModel,
    /// Probability that an uncontended tunnel write hits a slow path (page
    /// faults, scheduler preemption) and pays the contended extra anyway.
    pub tun_write_slow_chance: f64,
    /// Cost of enqueueing a packet when the consumer is *not* parked in
    /// `wait()` (a plain queue push).
    pub enqueue_fast: LatencyModel,
    /// The wait/notify wake-up latency paid when the consumer is parked.
    pub wait_notify: LatencyModel,
    /// Cost of parsing `/proc/net/tcp6|tcp` per table entry.
    pub proc_parse_per_entry: LatencyModel,
    /// Fixed cost of opening and reading the proc files.
    pub proc_parse_base: LatencyModel,
    /// Cost of a `PackageManager` UID-to-name lookup (uncached).
    pub package_lookup: LatencyModel,
    /// Cost of `VpnService.protect(socket)` per call (§3.5.2).
    pub protect_call: LatencyModel,
    /// Cost of registering a channel with the selector (§3.4).
    pub selector_register: LatencyModel,
    /// Latency between an I/O event completing and a non-blocking selector
    /// loop actually observing it when other events are pending (§2.4, C2).
    pub selector_dispatch_delay: LatencyModel,
    /// Probability that the selector loop is busy with other events when a
    /// completion arrives (so the dispatch delay applies).
    pub selector_busy_chance: f64,
    /// Cost of spawning a temporary socket-connect thread.
    pub thread_spawn: LatencyModel,
    /// A context switch between engine threads.
    pub context_switch: LatencyModel,
    /// Granularity of the coarse (millisecond) clock used by naive
    /// measurement code; nanosecond timestamps have effectively zero error.
    pub coarse_clock_granularity: SimDuration,
    /// Per-packet CPU cost of deep content inspection (what Haystack pays and
    /// MopEye explicitly avoids, §5).
    pub content_inspection_per_kb: LatencyModel,
    /// When the saturating MainWorker is backlogged and processing a burst,
    /// per-packet charges after the first are divided by this factor — the
    /// amortisation a vectored datapath buys (one wake-up, one cache warm-up,
    /// one dispatch per burst instead of per packet).
    pub batch_hot_divisor: u32,
    /// Floor under an amortised per-packet charge, so batching never models
    /// literally free work.
    pub batch_floor: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::android_phone()
    }
}

impl CostModel {
    /// Costs calibrated to the Nexus-class devices used in the paper's
    /// evaluation (Nexus 4 / Nexus 6, Android 5.x–6.x).
    pub fn android_phone() -> Self {
        Self {
            tun_read: LatencyModel::uniform(0.01, 0.05),
            tun_write_base: LatencyModel::lognormal_with(0.09, 0.45, 0.02),
            tun_write_contended_extra: LatencyModel::lognormal_with(2.2, 0.8, 0.4),
            tun_write_slow_chance: 0.004,
            enqueue_fast: LatencyModel::uniform(0.001, 0.004),
            wait_notify: LatencyModel::lognormal_with(1.8, 0.5, 0.3),
            proc_parse_per_entry: LatencyModel::uniform(0.02, 0.10),
            proc_parse_base: LatencyModel::lognormal_with(4.5, 0.8, 0.5),
            package_lookup: LatencyModel::lognormal_with(1.0, 0.5, 0.2),
            protect_call: LatencyModel::lognormal_with(1.4, 0.7, 0.2),
            selector_register: LatencyModel::lognormal_with(0.35, 1.0, 0.02),
            selector_dispatch_delay: LatencyModel::lognormal_with(2.4, 0.7, 0.3),
            selector_busy_chance: 0.65,
            thread_spawn: LatencyModel::lognormal_with(0.45, 0.4, 0.1),
            context_switch: LatencyModel::uniform(0.01, 0.06),
            coarse_clock_granularity: SimDuration::from_millis(1),
            content_inspection_per_kb: LatencyModel::uniform(0.6, 1.0),
            batch_hot_divisor: 4,
            batch_floor: SimDuration::from_micros(1),
        }
    }

    /// Samples the cost of a tunnel write given how many other threads are
    /// currently writing to the tunnel.
    pub fn sample_tun_write(&self, concurrent_writers: usize, rng: &mut SimRng) -> SimDuration {
        let mut ms = self.tun_write_base.sample_ms(rng);
        let contended = concurrent_writers > 1;
        if contended || rng.chance(self.tun_write_slow_chance) {
            ms += self.tun_write_contended_extra.sample_ms(rng);
            if contended && concurrent_writers > 2 {
                ms += self.tun_write_contended_extra.sample_ms(rng)
                    * (concurrent_writers as f64 - 2.0).min(3.0)
                    * 0.5;
            }
        }
        SimDuration::from_millis_f64(ms)
    }

    /// Samples the cost of one full `/proc/net/tcp6` + `/proc/net/tcp` parse
    /// with `entries` connections in the tables.
    pub fn sample_proc_parse(&self, entries: usize, rng: &mut SimRng) -> SimDuration {
        let per_entry: f64 =
            (0..entries).map(|_| self.proc_parse_per_entry.sample_ms(rng)).sum();
        SimDuration::from_millis_f64(self.proc_parse_base.sample_ms(rng) + per_entry)
    }

    /// Samples the event-notification delay a non-blocking selector adds to a
    /// completion timestamp (zero when the loop happens to be idle).
    pub fn sample_dispatch_delay(&self, rng: &mut SimRng) -> SimDuration {
        if rng.chance(self.selector_busy_chance) {
            SimDuration::from_millis_f64(self.selector_dispatch_delay.sample_ms(rng))
        } else {
            SimDuration::from_micros(rng.int_inclusive(20, 180))
        }
    }

    /// Rounds a timestamp down to the coarse clock granularity, modelling
    /// millisecond-level timestamp APIs.
    pub fn coarse_timestamp(&self, t: SimTime) -> SimTime {
        let g = self.coarse_clock_granularity.as_nanos().max(1);
        SimTime::from_nanos(t.as_nanos() / g * g)
    }

    /// Samples the CPU cost of inspecting `bytes` of relayed content.
    pub fn sample_content_inspection(&self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        let kb = (bytes as f64 / 1024.0).max(0.05);
        SimDuration::from_millis_f64(self.content_inspection_per_kb.sample_ms(rng) * kb)
    }
}

/// Accumulates CPU busy time per component and memory high-water marks, so
/// Table 4 (CPU / battery / memory overhead) can be regenerated.
#[derive(Debug, Default, Clone)]
pub struct CpuLedger {
    busy: BTreeMap<String, SimDuration>,
    memory_bytes: BTreeMap<String, usize>,
    memory_peak: usize,
}

impl CpuLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the ledger back to its just-constructed state — the resident
    /// engine's between-runs reset, so a warm run's report charges only what
    /// that run cost.
    pub fn reset(&mut self) {
        self.busy.clear();
        self.memory_bytes.clear();
        self.memory_peak = 0;
    }

    /// Charges `cost` of CPU time to `component`.
    pub fn charge(&mut self, component: &str, cost: SimDuration) {
        *self.busy.entry(component.to_string()).or_default() += cost;
    }

    /// Records the current buffer memory attributed to `component`.
    pub fn set_memory(&mut self, component: &str, bytes: usize) {
        self.memory_bytes.insert(component.to_string(), bytes);
        let total: usize = self.memory_bytes.values().sum();
        self.memory_peak = self.memory_peak.max(total);
    }

    /// Total CPU busy time across all components.
    pub fn total_busy(&self) -> SimDuration {
        self.busy.values().copied().sum()
    }

    /// CPU busy time of one component.
    pub fn busy_of(&self, component: &str) -> SimDuration {
        self.busy.get(component).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Per-component breakdown, sorted by component name.
    pub fn breakdown(&self) -> Vec<(String, SimDuration)> {
        self.busy.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// CPU utilisation (0–100 %) over a wall-clock interval.
    pub fn cpu_percent(&self, wall: SimDuration) -> f64 {
        if wall == SimDuration::ZERO {
            return 0.0;
        }
        100.0 * self.total_busy().as_millis_f64() / wall.as_millis_f64()
    }

    /// Peak total buffer memory observed, in bytes.
    pub fn memory_peak_bytes(&self) -> usize {
        self.memory_peak
    }

    /// A simple battery model: percentage points consumed per hour of CPU
    /// busy time plus a radio tax per megabyte transferred.
    pub fn battery_percent(&self, wall: SimDuration, bytes_transferred: usize) -> f64 {
        // Busy CPU drains ~12 %/h on the modelled device; the radio drains
        // ~0.5 % per 100 MB on top of the baseline (which is excluded, like
        // the paper's per-app battery attribution).
        let cpu_hours = self.total_busy().as_secs_f64() / 3600.0;
        let _ = wall;
        let radio = bytes_transferred as f64 / (100.0 * 1024.0 * 1024.0) * 0.5;
        cpu_hours * 12.0 + radio
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CpuLedger) {
        for (k, v) in &other.busy {
            *self.busy.entry(k.clone()).or_default() += *v;
        }
        for (k, v) in &other.memory_bytes {
            self.memory_bytes.insert(k.clone(), *v);
        }
        let total: usize = self.memory_bytes.values().sum();
        self.memory_peak = self.memory_peak.max(other.memory_peak).max(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_tun_writes_are_mostly_sub_millisecond() {
        let model = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(1);
        let n = 3000;
        let slow = (0..n)
            .filter(|_| model.sample_tun_write(1, &mut rng) > SimDuration::from_millis(1))
            .count();
        let frac = slow as f64 / n as f64;
        assert!(frac < 0.03, "slow-write fraction {frac}");
    }

    #[test]
    fn contended_tun_writes_are_slower() {
        let model = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(2);
        let n = 2000;
        let avg = |writers: usize, rng: &mut SimRng| -> f64 {
            (0..n).map(|_| model.sample_tun_write(writers, rng).as_millis_f64()).sum::<f64>()
                / n as f64
        };
        let single = avg(1, &mut rng);
        let multi = avg(3, &mut rng);
        assert!(multi > single * 3.0, "single {single} multi {multi}");
    }

    #[test]
    fn proc_parse_matches_figure_5a_scale() {
        // Figure 5(a): with a busy connection table, over 75 % of parses take
        // more than 5 ms and over 10 % take more than 15 ms.
        let model = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 1000;
        let samples: Vec<f64> =
            (0..n).map(|_| model.sample_proc_parse(60, &mut rng).as_millis_f64()).collect();
        let over5 = samples.iter().filter(|s| **s > 5.0).count() as f64 / n as f64;
        let over15 = samples.iter().filter(|s| **s > 15.0).count() as f64 / n as f64;
        assert!(over5 > 0.7, "over5 {over5}");
        assert!(over15 > 0.05, "over15 {over15}");
        assert!(over15 < 0.5, "over15 {over15}");
    }

    #[test]
    fn dispatch_delay_is_millisecond_scale_when_busy() {
        let model = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(4);
        let n = 2000;
        let mean_ms: f64 =
            (0..n).map(|_| model.sample_dispatch_delay(&mut rng).as_millis_f64()).sum::<f64>()
                / n as f64;
        assert!(mean_ms > 1.0, "mean dispatch delay {mean_ms}");
        assert!(mean_ms < 10.0, "mean dispatch delay {mean_ms}");
    }

    #[test]
    fn coarse_timestamp_truncates_to_millisecond() {
        let model = CostModel::android_phone();
        let t = SimTime::from_nanos(7_654_321);
        assert_eq!(model.coarse_timestamp(t).as_nanos(), 7_000_000);
    }

    #[test]
    fn ledger_accumulates_and_reports() {
        let mut ledger = CpuLedger::new();
        ledger.charge("MainWorker", SimDuration::from_millis(30));
        ledger.charge("TunReader", SimDuration::from_millis(10));
        ledger.charge("MainWorker", SimDuration::from_millis(20));
        assert_eq!(ledger.busy_of("MainWorker").as_millis(), 50);
        assert_eq!(ledger.total_busy().as_millis(), 60);
        assert!((ledger.cpu_percent(SimDuration::from_secs(6)) - 1.0).abs() < 1e-9);
        assert_eq!(ledger.cpu_percent(SimDuration::ZERO), 0.0);
        assert_eq!(ledger.breakdown().len(), 2);
    }

    #[test]
    fn memory_peak_tracks_total_across_components() {
        let mut ledger = CpuLedger::new();
        ledger.set_memory("write-buffers", 6 * 1024 * 1024);
        ledger.set_memory("read-buffers", 6 * 1024 * 1024);
        assert_eq!(ledger.memory_peak_bytes(), 12 * 1024 * 1024);
        ledger.set_memory("read-buffers", 1024);
        assert_eq!(ledger.memory_peak_bytes(), 12 * 1024 * 1024);
    }

    #[test]
    fn battery_model_scales_with_cpu_and_bytes() {
        let mut light = CpuLedger::new();
        light.charge("engine", SimDuration::from_secs(60));
        let mut heavy = CpuLedger::new();
        heavy.charge("engine", SimDuration::from_secs(300));
        let wall = SimDuration::from_secs(3480);
        let b_light = light.battery_percent(wall, 500 * 1024 * 1024);
        let b_heavy = heavy.battery_percent(wall, 500 * 1024 * 1024);
        assert!(b_heavy > b_light);
        assert!(b_light > 0.0 && b_light < 5.0, "light battery {b_light}");
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = CpuLedger::new();
        a.charge("x", SimDuration::from_millis(5));
        a.set_memory("x", 10);
        let mut b = CpuLedger::new();
        b.charge("x", SimDuration::from_millis(7));
        b.charge("y", SimDuration::from_millis(1));
        b.set_memory("y", 20);
        a.merge(&b);
        assert_eq!(a.busy_of("x").as_millis(), 12);
        assert_eq!(a.busy_of("y").as_millis(), 1);
        assert!(a.memory_peak_bytes() >= 30);
    }
}
