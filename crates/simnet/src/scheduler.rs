//! A pluggable timer scheduler: the timing wheel or the legacy binary heap
//! behind one API.
//!
//! The engine's event loop is generic over *how* pending events are stored:
//! the production path is the O(1) [`TimingWheel`], while the
//! [`crate::queue::EventQueue`] heap is kept as the reference implementation
//! — the scheduler benches compare the two end-to-end, and the equivalence
//! suites pin their pop orders (and therefore whole-run digests) against
//! each other.
//!
//! The heap variant emulates O(1) cancellation the same lazy way the wheel
//! does: a cancelled entry's payload is vacated immediately and its heap
//! node is discarded when it reaches the top, without counting as a popped
//! event. Both variants therefore expose identical semantics:
//! `(fire time, schedule order)` pop order, cancellable [`TimerHandle`]s and
//! shared `scheduled_total` accounting.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimerHandle, TimingWheel, DEFAULT_GRANULARITY};

/// Which scheduler backs an event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The hierarchical timing wheel: O(1) schedule/cancel, flat cost at any
    /// number of pending events. The default.
    #[default]
    Wheel,
    /// The binary-heap [`EventQueue`]: O(log n) per operation. Kept as the
    /// reference implementation for equivalence tests and benches.
    Heap,
}

/// One slab cell of the heap variant (see [`HeapScheduler`]).
#[derive(Debug)]
struct HeapEntry<E> {
    at: SimTime,
    generation: u32,
    event: Option<E>,
}

/// The heap-backed scheduler: an [`EventQueue`] of slab indices plus lazy
/// cancellation, giving the heap the same cancellable-handle API as the
/// wheel.
#[derive(Debug)]
pub struct HeapScheduler<E> {
    queue: EventQueue<u32>,
    slab: Vec<HeapEntry<E>>,
    free: Vec<u32>,
    live: usize,
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self { queue: EventQueue::new(), slab: Vec::new(), free: Vec::new(), live: 0 }
    }
}

impl<E> HeapScheduler<E> {
    fn schedule(&mut self, at: SimTime, event: E) -> TimerHandle {
        let idx = if let Some(idx) = self.free.pop() {
            let entry = &mut self.slab[idx as usize];
            entry.at = at;
            entry.event = Some(event);
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(HeapEntry { at, generation: 0, event: Some(event) });
            idx
        };
        self.live += 1;
        self.queue.schedule(at, idx);
        TimerHandle::from_token(
            (u64::from(self.slab[idx as usize].generation) << 32) | u64::from(idx),
        )
    }

    fn cancel(&mut self, handle: TimerHandle) -> Option<E> {
        let token = handle.token();
        let (idx, generation) = (token as u32, (token >> 32) as u32);
        let entry = self.slab.get_mut(idx as usize)?;
        if entry.generation != generation {
            return None;
        }
        let event = entry.event.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.live -= 1;
        Some(event)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some((at, idx)) = self.queue.pop() {
            let entry = &mut self.slab[idx as usize];
            if let Some(event) = entry.event.take() {
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(idx);
                self.live -= 1;
                return Some((at, event));
            }
            self.free.push(idx);
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let (_, &idx) = self.queue.peek()?;
            if self.slab[idx as usize].event.is_some() {
                return self.queue.peek_time();
            }
            let (_, idx) = self.queue.pop().expect("peeked entry pops");
            self.free.push(idx);
        }
    }

    /// Resets to the just-constructed state, keeping the queue and slab
    /// allocations (see [`TimerScheduler::reset`]).
    fn reset(&mut self) {
        self.queue.reset();
        self.free.clear();
        for (i, entry) in self.slab.iter_mut().enumerate() {
            if entry.event.take().is_some() {
                entry.generation = entry.generation.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        self.live = 0;
    }
}

/// A timer scheduler: schedule/cancel/pop with deterministic FIFO tie-order,
/// backed by either the [`TimingWheel`] or the legacy heap. See the
/// [module docs](self).
#[derive(Debug)]
pub enum TimerScheduler<E> {
    /// Backed by the hierarchical timing wheel.
    Wheel(TimingWheel<E>),
    /// Backed by the binary-heap event queue (lazy cancellation).
    Heap(HeapScheduler<E>),
}

impl<E> TimerScheduler<E> {
    /// Creates a scheduler of `kind`; the wheel uses `granularity` (rounded
    /// up to a power of two nanoseconds).
    pub fn new(kind: SchedulerKind, granularity: SimDuration) -> Self {
        match kind {
            SchedulerKind::Wheel => Self::Wheel(TimingWheel::with_granularity(granularity)),
            SchedulerKind::Heap => Self::Heap(HeapScheduler::default()),
        }
    }

    /// A wheel scheduler at the default granularity.
    pub fn wheel() -> Self {
        Self::new(SchedulerKind::Wheel, DEFAULT_GRANULARITY)
    }

    /// Schedules `event` at `at`, returning a cancellable handle.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerHandle {
        match self {
            Self::Wheel(w) => w.schedule(at, event),
            Self::Heap(h) => h.schedule(at, event),
        }
    }

    /// Cancels a pending event; stale handles are ignored.
    pub fn cancel(&mut self, handle: TimerHandle) -> Option<E> {
        match self {
            Self::Wheel(w) => w.cancel(handle),
            Self::Heap(h) => h.cancel(handle),
        }
    }

    /// Pops the earliest pending event (FIFO tie-order at equal instants).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Self::Wheel(w) => w.pop(),
            Self::Heap(h) => h.pop(),
        }
    }

    /// The fire time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Self::Wheel(w) => w.peek_time(),
            Self::Heap(h) => h.peek_time(),
        }
    }

    /// Pops the earliest event only if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= until {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            Self::Wheel(w) => w.len(),
            Self::Heap(h) => h.live,
        }
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        match self {
            Self::Wheel(w) => w.scheduled_total(),
            Self::Heap(h) => h.queue.scheduled_total(),
        }
    }

    /// The backing implementation.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            Self::Wheel(_) => SchedulerKind::Wheel,
            Self::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Resets the scheduler to its just-constructed state while keeping
    /// every allocation: pending events are dropped and the sequence and
    /// schedule accounting restart from zero. A reset scheduler is
    /// behaviourally indistinguishable from a fresh one — the clear-don't-
    /// drop rule of the resident engine's reuse path.
    pub fn reset(&mut self) {
        match self {
            Self::Wheel(w) => w.reset(),
            Self::Heap(h) => h.reset(),
        }
    }

    /// The backend's gated instrumentation, as `(counter name, value)` pairs
    /// — all zero unless the `profiling` feature is on (the heap backend has
    /// none either way).
    pub fn profile_counters(&self) -> Vec<(&'static str, u64)> {
        match self {
            Self::Wheel(w) => w.profile_counters().to_vec(),
            Self::Heap(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(s: &mut TimerScheduler<E>) -> Vec<(SimTime, E)> {
        std::iter::from_fn(|| s.pop()).collect()
    }

    #[test]
    fn both_backends_agree_on_a_mixed_workload() {
        let mut wheel = TimerScheduler::wheel();
        let mut heap = TimerScheduler::new(SchedulerKind::Heap, DEFAULT_GRANULARITY);
        for sched in [&mut wheel, &mut heap] {
            let mut cancel_handles = Vec::new();
            for i in 0..500u64 {
                let at = SimTime::from_nanos((i * 7_919) % 100_000);
                let h = sched.schedule(at, i);
                if i % 3 == 0 {
                    cancel_handles.push(h);
                }
            }
            for h in cancel_handles {
                assert!(sched.cancel(h).is_some());
            }
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }

    #[test]
    fn heap_peek_skips_cancelled_heads() {
        let mut heap = TimerScheduler::new(SchedulerKind::Heap, DEFAULT_GRANULARITY);
        let first = heap.schedule(SimTime::from_millis(1), "a");
        heap.schedule(SimTime::from_millis(2), "b");
        heap.cancel(first);
        assert_eq!(heap.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(heap.pop(), Some((SimTime::from_millis(2), "b")));
        assert!(heap.is_empty());
    }

    #[test]
    fn kind_reports_the_backend() {
        assert_eq!(TimerScheduler::<u8>::wheel().kind(), SchedulerKind::Wheel);
        let heap = TimerScheduler::<u8>::new(SchedulerKind::Heap, DEFAULT_GRANULARITY);
        assert_eq!(heap.kind(), SchedulerKind::Heap);
    }
}
