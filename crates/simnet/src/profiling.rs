//! First-party wall-clock profiling: monotonic per-phase timers and counters
//! for the host-side event loop, feature-gated to zero cost when off.
//!
//! The repo's determinism story is entirely about *virtual* time; this module
//! is about the other axis — how long the host actually spends turning the
//! crank. A [`Profiler`] lives next to an event loop and records named
//! phases (wall nanoseconds via [`std::time::Instant`]) and named counters
//! (structure-level facts like "sorted-insert elements shifted"); the run's
//! harvest is a [`ProfileReport`], which merges across shards exactly like
//! the other report pieces.
//!
//! Everything here is wall-clock bookkeeping and therefore **excluded from
//! every deterministic digest, equality check and checkpoint encoding** —
//! the same rule `TunStats::dispatch_stalls` follows.
//!
//! # Feature gating
//!
//! With the `profiling` cargo feature off (the default), [`Profiler`] is a
//! zero-sized type whose methods are empty `#[inline]` bodies — the compiler
//! erases the instrumentation entirely, so the hot loop pays nothing.
//! [`ProfileReport`] itself is *always* available (reports must be
//! mergeable regardless of how the producing shard was compiled); a
//! non-profiled run simply produces an empty one.
//!
//! # Example
//!
//! ```
//! use mop_simnet::profiling::Profiler;
//!
//! let mut prof = Profiler::default();
//! let span = prof.begin();
//! // ... do a phase of work ...
//! prof.end("relay.dispatch", span);
//! prof.count("wheel.ready_inserts", 3);
//! let report = prof.take_report();
//! # let _ = report;
//! ```

use std::collections::BTreeMap;

/// Accumulated wall-clock statistics of one named phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// How many times the phase ran.
    pub calls: u64,
    /// Total wall nanoseconds across all calls.
    pub total_ns: u64,
    /// The longest single call, in wall nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Mean wall nanoseconds per call.
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// What a profiled run measured: named phase timers and named counters.
///
/// `BTreeMap` keys keep the rendering order stable. The report merges
/// associatively (phase totals and counters sum, maxima max), so fleet
/// shards' reports fold together exactly like the rest of `RunReport`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Wall-clock phase timers, by phase name.
    pub phases: BTreeMap<&'static str, PhaseStats>,
    /// Structure-level counters, by counter name.
    pub counters: BTreeMap<&'static str, u64>,
}

impl ProfileReport {
    /// True if the report holds no measurements (e.g. the producing side was
    /// compiled without the `profiling` feature).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.counters.is_empty()
    }

    /// Folds another report into this one: phase calls/totals and counters
    /// sum, phase maxima take the max.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (name, stats) in &other.phases {
            let mine = self.phases.entry(name).or_default();
            mine.calls += stats.calls;
            mine.total_ns += stats.total_ns;
            mine.max_ns = mine.max_ns.max(stats.max_ns);
        }
        for (name, count) in &other.counters {
            *self.counters.entry(name).or_default() += count;
        }
    }

    /// Total wall nanoseconds across every phase (phases are disjoint by
    /// construction in the engine's instrumentation).
    pub fn total_ns(&self) -> u64 {
        self.phases.values().map(|p| p.total_ns).sum()
    }
}

/// An in-flight phase measurement returned by [`Profiler::begin`] and
/// consumed by [`Profiler::end`].
///
/// With profiling off this is a zero-sized token, so passing it around is
/// free.
#[derive(Debug)]
pub struct Span {
    #[cfg(feature = "profiling")]
    started: std::time::Instant,
}

/// The collector: owns the phase and counter tables for one event loop.
///
/// All methods are `#[inline]` no-ops when the `profiling` feature is off.
#[derive(Debug, Default)]
pub struct Profiler {
    #[cfg(feature = "profiling")]
    report: ProfileReport,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a phase measurement.
    #[inline]
    pub fn begin(&self) -> Span {
        Span {
            #[cfg(feature = "profiling")]
            started: std::time::Instant::now(),
        }
    }

    /// Ends a phase measurement under `name`.
    #[inline]
    pub fn end(&mut self, name: &'static str, span: Span) {
        #[cfg(feature = "profiling")]
        {
            let ns = span.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let stats = self.report.phases.entry(name).or_default();
            stats.calls += 1;
            stats.total_ns += ns;
            stats.max_ns = stats.max_ns.max(ns);
        }
        #[cfg(not(feature = "profiling"))]
        {
            let _ = (name, span);
        }
    }

    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        #[cfg(feature = "profiling")]
        {
            *self.report.counters.entry(name).or_default() += n;
        }
        #[cfg(not(feature = "profiling"))]
        {
            let _ = (name, n);
        }
    }

    /// Sets the counter `name` to `n` (for gauges harvested once per run).
    #[inline]
    pub fn record(&mut self, name: &'static str, n: u64) {
        #[cfg(feature = "profiling")]
        {
            self.report.counters.insert(name, n);
        }
        #[cfg(not(feature = "profiling"))]
        {
            let _ = (name, n);
        }
    }

    /// Harvests the accumulated report, leaving the profiler empty — the
    /// per-run reset, so a resident engine's second run starts from zero.
    #[inline]
    pub fn take_report(&mut self) -> ProfileReport {
        #[cfg(feature = "profiling")]
        {
            std::mem::take(&mut self.report)
        }
        #[cfg(not(feature = "profiling"))]
        {
            ProfileReport::default()
        }
    }

    /// True when the crate was compiled with the `profiling` feature, i.e.
    /// when this profiler actually records anything.
    pub const fn enabled() -> bool {
        cfg!(feature = "profiling")
    }
}

/// Renders a report as an aligned text table (the `report --profile` view):
/// one row per phase sorted by total time descending, then the counters.
/// Returns an empty string for an empty report.
pub fn render_table(report: &ProfileReport) -> String {
    if report.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let mut phases: Vec<(&&'static str, &PhaseStats)> = report.phases.iter().collect();
    phases.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    if !phases.is_empty() {
        out.push_str(&format!(
            "{:<28} {:>12} {:>14} {:>12} {:>12}\n",
            "phase", "calls", "total_ms", "mean_us", "max_us"
        ));
        for (name, p) in phases {
            out.push_str(&format!(
                "{:<28} {:>12} {:>14.3} {:>12.3} {:>12.3}\n",
                name,
                p.calls,
                p.total_ns as f64 / 1e6,
                p.mean_ns() / 1e3,
                p.max_ns as f64 / 1e3
            ));
        }
    }
    if !report.counters.is_empty() {
        out.push_str(&format!("{:<28} {:>12}\n", "counter", "value"));
        for (name, v) in &report.counters {
            out.push_str(&format!("{:<28} {:>12}\n", name, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ProfileReport::default();
        a.phases.insert("x", PhaseStats { calls: 2, total_ns: 100, max_ns: 80 });
        a.counters.insert("c", 5);
        let mut b = ProfileReport::default();
        b.phases.insert("x", PhaseStats { calls: 1, total_ns: 50, max_ns: 50 });
        b.phases.insert("y", PhaseStats { calls: 1, total_ns: 10, max_ns: 10 });
        b.counters.insert("c", 7);
        b.counters.insert("d", 1);
        a.merge(&b);
        assert_eq!(a.phases["x"], PhaseStats { calls: 3, total_ns: 150, max_ns: 80 });
        assert_eq!(a.phases["y"].total_ns, 10);
        assert_eq!(a.counters["c"], 12);
        assert_eq!(a.counters["d"], 1);
        assert_eq!(a.total_ns(), 160);
    }

    #[test]
    fn profiler_records_iff_feature_enabled() {
        let mut prof = Profiler::new();
        let span = prof.begin();
        prof.end("phase", span);
        prof.count("ctr", 3);
        let report = prof.take_report();
        if Profiler::enabled() {
            assert_eq!(report.phases["phase"].calls, 1);
            assert_eq!(report.counters["ctr"], 3);
            assert!(!render_table(&report).is_empty());
        } else {
            assert!(report.is_empty());
            assert!(render_table(&report).is_empty());
        }
        // Harvesting resets: the next report starts from zero.
        assert!(prof.take_report().is_empty());
    }

    #[test]
    fn render_table_lists_phases_by_total_time() {
        let mut report = ProfileReport::default();
        report.phases.insert("small", PhaseStats { calls: 1, total_ns: 10, max_ns: 10 });
        report.phases.insert("big", PhaseStats { calls: 4, total_ns: 4_000_000, max_ns: 2_000_000 });
        report.counters.insert("shifts", 42);
        let table = render_table(&report);
        let big_at = table.find("big").unwrap();
        let small_at = table.find("small").unwrap();
        assert!(big_at < small_at, "phases must sort by total time:\n{table}");
        assert!(table.contains("shifts"));
        assert!(table.contains("42"));
    }

    #[test]
    fn phase_stats_mean() {
        let p = PhaseStats { calls: 4, total_ns: 1000, max_ns: 700 };
        assert_eq!(p.mean_ns(), 250.0);
        assert_eq!(PhaseStats::default().mean_ns(), 0.0);
    }
}
