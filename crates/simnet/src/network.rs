//! The path-level network model.
//!
//! [`SimNetwork`] answers the questions the relay and the baselines ask of
//! the outside world: *if a SYN leaves the handset now, when does the SYN/ACK
//! come back? when is a request acknowledged? how do response bytes arrive
//! given the access link's bandwidth? when does the DNS resolver answer?*
//! Every answer is also recorded on the [`WireTap`] so that ground-truth
//! (tcpdump-equivalent) RTTs are available to the accuracy experiments.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use mop_packet::{Endpoint, FourTuple};

use crate::dnssrv::{DnsAnswer, DnsServerConfig};
use crate::fault::{FaultDecision, FaultPlan};
use crate::latency::LatencyModel;
use crate::profile::{AccessProfile, IspProfile, NetworkType};
use crate::rng::SimRng;
use crate::server::{ServerConfig, Service};
use crate::tap::{TapDirection, TapKind, WireTap};
use crate::time::{SimDuration, SimTime};

/// Maximum segment size used when chunking response bodies.
const SEGMENT_BYTES: usize = 1460;
/// Connect timeout used for blackholed destinations.
const CONNECT_TIMEOUT: SimDuration = SimDuration::from_secs(30);
/// Salt mixed into per-flow RNG seeds so the network's streams do not collide
/// with other flow-keyed components using the same seed and hash.
const NET_KEY_SALT: u64 = 0x6e65_745f_6b65_7973; // "net_keys"
/// Salt for the per-flow fault streams, so segment-fate draws never perturb
/// the flow's latency/bandwidth stream (whose draw count must stay fixed).
const FAULT_KEY_SALT: u64 = 0x666c_745f_6b65_7973; // "flt_keys"
/// Salt for the SYN-retransmission streams: the backoff chain draws a
/// variable number of loss decisions, so it gets a throwaway stream keyed
/// like the others instead of advancing the flow's main stream.
const SYN_RETRY_SALT: u64 = 0x7379_6e5f_7274_7279; // "syn_rtry"

/// How the network draws randomness and reserves the access link.
///
/// [`NetKeying::Shared`] models one handset: a single RNG stream and one
/// shared uplink/downlink whose serialisation delays couple concurrent flows
/// (the Table 3 bandwidth-contention behaviour). [`NetKeying::FlowKeyed`]
/// models a *fleet* of handsets: every four-tuple gets its own RNG stream
/// (seeded from `seed ^ flow.stable_hash()`) and its own link reservation, so
/// a flow's timeline depends only on the flow itself — which is what lets a
/// sharded engine produce identical results regardless of how flows are
/// partitioned across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetKeying {
    /// One device, one RNG stream, one contended access link.
    #[default]
    Shared,
    /// Per-flow RNG streams and per-flow link reservations (fleet mode).
    FlowKeyed,
}

/// The mutable state one exchange samples against: an RNG stream plus the
/// link-reservation cursors. Checked out of the network (either the shared
/// copy or the flow's own) for the duration of one call.
#[derive(Debug)]
struct FlowNetCtx {
    rng: SimRng,
    uplink_busy: SimTime,
    downlink_busy: SimTime,
}

/// Result of a TCP connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectOutcome {
    /// When the SYN crossed the interface.
    pub syn_sent: SimTime,
    /// When the SYN/ACK (or RST, or timeout) was observed at the handset.
    pub completed_at: SimTime,
    /// True if the handshake succeeded.
    pub success: bool,
    /// True if the failure was an active refusal (RST) rather than a timeout.
    pub refused: bool,
    /// The ground-truth path RTT sampled for this exchange.
    pub true_rtt: SimDuration,
}

/// Result of a request/response exchange on an established connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataExchange {
    /// When the server acknowledged the last request byte.
    pub request_acked_at: SimTime,
    /// Arrival schedule of response chunks at the handset: (time, bytes).
    pub response_chunks: Vec<(SimTime, usize)>,
    /// Total response bytes.
    pub response_total: usize,
}

impl DataExchange {
    /// When the last response byte arrived (or the request ACK for empty
    /// responses).
    pub fn completed_at(&self) -> SimTime {
        self.response_chunks.last().map(|(t, _)| *t).unwrap_or(self.request_acked_at)
    }
}

/// Result of a DNS resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsOutcome {
    /// When the query crossed the interface.
    pub query_sent: SimTime,
    /// When the response arrived, if it did.
    pub response_at: Option<SimTime>,
    /// Addresses in the answer (empty for NXDOMAIN or timeout).
    pub addrs: Vec<Ipv4Addr>,
    /// True if the resolver answered NXDOMAIN.
    pub nxdomain: bool,
}

impl DnsOutcome {
    /// The measured DNS RTT, if the exchange completed.
    pub fn rtt(&self) -> Option<SimDuration> {
        self.response_at.map(|t| t - self.query_sent)
    }
}

/// Builder for [`SimNetwork`].
#[derive(Debug, Clone)]
pub struct SimNetworkBuilder {
    seed: u64,
    access: AccessProfile,
    isp: Option<IspProfile>,
    servers: Vec<ServerConfig>,
    dns_latency: Option<LatencyModel>,
    tap_enabled: bool,
    default_path: LatencyModel,
    keying: NetKeying,
    handover: Option<(SimTime, AccessProfile)>,
}

impl Default for SimNetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNetworkBuilder {
    /// Starts a builder with a WiFi access network and no servers.
    pub fn new() -> Self {
        Self {
            seed: DEFAULT_SEED,
            access: AccessProfile::wifi(),
            isp: None,
            servers: Vec::new(),
            dns_latency: None,
            tap_enabled: true,
            default_path: LatencyModel::lognormal_with(45.0, 0.5, 5.0),
            keying: NetKeying::Shared,
            handover: None,
        }
    }

    /// Switches the network to per-flow keyed randomness and link
    /// reservations (see [`NetKeying::FlowKeyed`]).
    pub fn flow_keyed(mut self) -> Self {
        self.keying = NetKeying::FlowKeyed;
        self
    }

    /// Schedules a mid-session handover: from virtual time `at` onwards,
    /// every new exchange uses `to` as the access profile (latency,
    /// bandwidth and loss) instead of the one configured at build time.
    pub fn handover_at(mut self, at: SimTime, to: AccessProfile) -> Self {
        self.handover = Some((at, to));
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the access-network profile.
    pub fn access(mut self, access: AccessProfile) -> Self {
        self.access = access;
        self
    }

    /// Sets the access network by type, using the default profile for it.
    pub fn network_type(mut self, network_type: NetworkType) -> Self {
        self.access = AccessProfile::for_type(network_type);
        self
    }

    /// Attaches an ISP profile (DNS latency and core-network penalty).
    pub fn isp(mut self, isp: IspProfile) -> Self {
        self.isp = Some(isp);
        self
    }

    /// Adds a remote server.
    pub fn server(mut self, server: ServerConfig) -> Self {
        self.servers.push(server);
        self
    }

    /// Adds the paper's Table 2 destinations (Google, Facebook, Dropbox).
    pub fn with_table2_destinations(mut self) -> Self {
        self.servers.extend(ServerConfig::table2_destinations());
        self
    }

    /// Overrides the DNS resolver latency model.
    pub fn dns_latency(mut self, latency: LatencyModel) -> Self {
        self.dns_latency = Some(latency);
        self
    }

    /// Sets the path RTT used for destinations without a configured server.
    pub fn default_path(mut self, model: LatencyModel) -> Self {
        self.default_path = model;
        self
    }

    /// Disables the wire tap.
    pub fn without_tap(mut self) -> Self {
        self.tap_enabled = false;
        self
    }

    /// Builds the network.
    pub fn build(self) -> SimNetwork {
        let dns_latency = self.dns_latency.unwrap_or_else(|| match &self.isp {
            Some(isp) => isp.dns_rtt.clone(),
            None => self.access.dns_rtt.clone(),
        });
        let mut dns = DnsServerConfig::new(dns_latency);
        for server in &self.servers {
            dns.add_server(server);
        }
        SimNetwork {
            access: self.access,
            isp: self.isp,
            servers: self.servers,
            dns,
            rng: SimRng::seed_from_u64(self.seed),
            seed: self.seed,
            tap: if self.tap_enabled { WireTap::new() } else { WireTap::disabled() },
            default_path: self.default_path,
            downlink_busy_until: SimTime::ZERO,
            uplink_busy_until: SimTime::ZERO,
            keying: self.keying,
            handover: self.handover,
            flow_ctx: HashMap::new(),
            fault_rng: HashMap::new(),
        }
    }
}

/// The default seed ("MopEye" in ASCII) so that an unseeded builder is still
/// deterministic.
const DEFAULT_SEED: u64 = 0x4d6f_7045_7965;

/// The simulated path-level network.
#[derive(Debug)]
pub struct SimNetwork {
    access: AccessProfile,
    isp: Option<IspProfile>,
    servers: Vec<ServerConfig>,
    dns: DnsServerConfig,
    rng: SimRng,
    seed: u64,
    tap: WireTap,
    default_path: LatencyModel,
    downlink_busy_until: SimTime,
    uplink_busy_until: SimTime,
    keying: NetKeying,
    handover: Option<(SimTime, AccessProfile)>,
    flow_ctx: HashMap<FourTuple, FlowNetCtx>,
    fault_rng: HashMap<FourTuple, SimRng>,
}

impl SimNetwork {
    /// Starts a builder.
    pub fn builder() -> SimNetworkBuilder {
        SimNetworkBuilder::new()
    }

    /// The access profile in use.
    pub fn access(&self) -> &AccessProfile {
        &self.access
    }

    /// The ISP profile in use, if any.
    pub fn isp(&self) -> Option<&IspProfile> {
        self.isp.as_ref()
    }

    /// The configured DNS resolver.
    pub fn dns_config(&self) -> &DnsServerConfig {
        &self.dns
    }

    /// The wire tap (ground-truth capture).
    pub fn tap(&self) -> &WireTap {
        &self.tap
    }

    /// Mutable access to the wire tap (e.g. to clear it between runs).
    pub fn tap_mut(&mut self) -> &mut WireTap {
        &mut self.tap
    }

    /// Mutable access to the deterministic RNG, for callers that need to
    /// sample auxiliary noise from the same stream.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The keying discipline in use.
    pub fn keying(&self) -> NetKeying {
        self.keying
    }

    /// The access profile governing an exchange that starts at `at`,
    /// accounting for a scheduled handover.
    pub fn access_at(&self, at: SimTime) -> &AccessProfile {
        match &self.handover {
            Some((when, to)) if at >= *when => to,
            _ => &self.access,
        }
    }

    /// Checks out the sampling context for one exchange on `flow`: the
    /// shared state under [`NetKeying::Shared`], the flow's own stream and
    /// link cursors under [`NetKeying::FlowKeyed`]. Must be paired with
    /// [`SimNetwork::checkin`].
    fn checkout(&mut self, flow: FourTuple) -> FlowNetCtx {
        match self.keying {
            NetKeying::Shared => FlowNetCtx {
                rng: std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0)),
                uplink_busy: self.uplink_busy_until,
                downlink_busy: self.downlink_busy_until,
            },
            NetKeying::FlowKeyed => {
                self.flow_ctx.remove(&flow).unwrap_or_else(|| FlowNetCtx {
                    rng: SimRng::seed_from_u64(
                        self.seed ^ flow.stable_hash() ^ NET_KEY_SALT,
                    ),
                    uplink_busy: SimTime::ZERO,
                    downlink_busy: SimTime::ZERO,
                })
            }
        }
    }

    /// Drops the per-flow sampling context of a finished flow (a no-op
    /// under [`NetKeying::Shared`]). The engine calls this on teardown so a
    /// long fleet run's memory is bounded by concurrent flows; if a late
    /// exchange recreates the context, it restarts from the flow's seed —
    /// still a pure function of `(seed, four-tuple)`.
    pub fn release_flow(&mut self, flow: FourTuple) {
        self.flow_ctx.remove(&flow);
        self.fault_rng.remove(&flow);
    }

    /// True if any access profile this network can be on — the initial one
    /// or a scheduled handover target — has nonzero data-path fault knobs.
    ///
    /// Engines check this once and skip the whole recovery apparatus
    /// (in-flight tracking, RTT estimation, RTO timers) when no fault can
    /// ever fire, so clean runs stay bit-identical to pre-fault builds.
    pub fn faults_possible(&self) -> bool {
        self.access.has_data_faults()
            || self.handover.as_ref().is_some_and(|(_, to)| to.has_data_faults())
    }

    /// Decides the fate of one relayed data segment on `flow` delivered
    /// around time `at`: drop it, duplicate it, delay it past its
    /// successors, or deliver it untouched.
    ///
    /// Draws come from the flow's dedicated fault stream (seeded
    /// `seed ^ flow.stable_hash() ^ FAULT_KEY_SALT`), created lazily and
    /// dropped by [`SimNetwork::release_flow`]. On a profile without data
    /// faults this returns [`FaultDecision::Deliver`] without creating any
    /// state or drawing any randomness.
    pub fn data_fault(&mut self, flow: FourTuple, at: SimTime) -> FaultDecision {
        let (plan, base_delay_ms) = {
            let access = self.access_at(at);
            if !access.has_data_faults() {
                return FaultDecision::Deliver;
            }
            (FaultPlan::from_profile(access), access.access_rtt.nominal_ms())
        };
        let rng = self.fault_rng.entry(flow).or_insert_with(|| {
            SimRng::seed_from_u64(self.seed ^ flow.stable_hash() ^ FAULT_KEY_SALT)
        });
        plan.decide(rng, base_delay_ms)
    }

    /// Returns a context checked out with [`SimNetwork::checkout`].
    fn checkin(&mut self, flow: FourTuple, ctx: FlowNetCtx) {
        match self.keying {
            NetKeying::Shared => {
                self.rng = ctx.rng;
                self.uplink_busy_until = ctx.uplink_busy;
                self.downlink_busy_until = ctx.downlink_busy;
            }
            NetKeying::FlowKeyed => {
                self.flow_ctx.insert(flow, ctx);
            }
        }
    }

    /// Registers an additional server after construction.
    pub fn add_server(&mut self, server: ServerConfig) {
        self.dns.add_server(&server);
        self.servers.push(server);
    }

    /// Looks up the server that answers on `addr`.
    pub fn server_for(&self, addr: IpAddr) -> Option<&ServerConfig> {
        self.servers.iter().find(|s| s.has_addr(addr))
    }

    fn path_model_for(&self, addr: IpAddr) -> LatencyModel {
        self.server_for(addr).map(|s| s.path_rtt.clone()).unwrap_or_else(|| self.default_path.clone())
    }

    /// Samples the full handset-to-server RTT for `dst` at time `at` with a
    /// caller-provided RNG stream: access network + ISP core penalty +
    /// Internet path.
    fn path_rtt_sample(&self, rng: &mut SimRng, dst: IpAddr, at: SimTime) -> SimDuration {
        let path = self.path_model_for(dst);
        let access = self.access_at(at).access_rtt.sample_ms(rng);
        let core =
            self.isp.as_ref().map(|isp| isp.core_extra_rtt.sample_ms(rng)).unwrap_or(0.0);
        SimDuration::from_millis_f64(access + core + path.sample_ms(rng))
    }

    /// Samples the full handset-to-server RTT for `dst`: access network +
    /// ISP core penalty + Internet path. Draws from the shared stream and
    /// uses the *initial* access profile — on a network with a scheduled
    /// handover, use [`SimNetwork::sample_path_rtt_at`] instead.
    pub fn sample_path_rtt(&mut self, dst: IpAddr) -> SimDuration {
        self.sample_path_rtt_at(dst, SimTime::ZERO)
    }

    /// Samples the full handset-to-server RTT for `dst` as of virtual time
    /// `at`, so a scheduled handover's access profile applies.
    pub fn sample_path_rtt_at(&mut self, dst: IpAddr, at: SimTime) -> SimDuration {
        let mut rng = std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0));
        let rtt = self.path_rtt_sample(&mut rng, dst, at);
        self.rng = rng;
        rtt
    }

    /// Attempts a TCP handshake from `flow.src` to `flow.dst`, with the SYN
    /// leaving the handset at `at`.
    pub fn connect(&mut self, flow: FourTuple, at: SimTime) -> ConnectOutcome {
        let mut ctx = self.checkout(flow);
        let rtt = self.path_rtt_sample(&mut ctx.rng, flow.dst.addr, at);
        let access = self.access_at(at);
        let syn_sent = at + SimDuration::from_millis_f64(access.uplink_tx_delay_ms(60));
        let loss = access.loss;
        self.tap.record(syn_sent, TapDirection::Outbound, TapKind::Syn, flow);
        let service_accepts = self
            .server_for(flow.dst.addr)
            .map(|s| s.service.clone())
            .unwrap_or(Service::Echo);
        let outcome = match service_accepts {
            Service::Refuse => {
                let completed_at = syn_sent + rtt;
                self.tap.record(completed_at, TapDirection::Inbound, TapKind::Rst, flow);
                ConnectOutcome { syn_sent, completed_at, success: false, refused: true, true_rtt: rtt }
            }
            Service::Blackhole => {
                let completed_at = syn_sent + CONNECT_TIMEOUT;
                ConnectOutcome { syn_sent, completed_at, success: false, refused: false, true_rtt: rtt }
            }
            _ => {
                // Model SYN loss with the RFC 6298 retransmission schedule:
                // retries after 1 s, then 2 s, 4 s, … until the cumulative
                // wait reaches the connect timeout. The first attempt's loss
                // draw rides the flow's main stream (so the common no-loss
                // case is bit-identical to the single-retry model this
                // replaces); the variable-length retry chain draws from a
                // dedicated salted stream.
                let lost = ctx.rng.chance(loss);
                let mut answered_at = if lost { None } else { Some(syn_sent + rtt) };
                if lost {
                    let mut retry_rng = SimRng::seed_from_u64(
                        self.seed ^ flow.stable_hash() ^ SYN_RETRY_SALT,
                    );
                    let mut wait_s: u64 = 1;
                    let mut elapsed_s: u64 = 1;
                    while SimDuration::from_secs(elapsed_s) < CONNECT_TIMEOUT {
                        let resent = syn_sent + SimDuration::from_secs(elapsed_s);
                        self.tap.record(resent, TapDirection::Outbound, TapKind::Syn, flow);
                        if !retry_rng.chance(loss) {
                            answered_at = Some(resent + rtt);
                            break;
                        }
                        wait_s *= 2;
                        elapsed_s += wait_s;
                    }
                }
                match answered_at {
                    Some(completed_at) => {
                        self.tap.record(completed_at, TapDirection::Inbound, TapKind::SynAck, flow);
                        ConnectOutcome { syn_sent, completed_at, success: true, refused: false, true_rtt: rtt }
                    }
                    // Every retransmission was lost too: the connect times
                    // out exactly like a blackholed destination.
                    None => ConnectOutcome {
                        syn_sent,
                        completed_at: syn_sent + CONNECT_TIMEOUT,
                        success: false,
                        refused: false,
                        true_rtt: rtt,
                    },
                }
            }
        };
        self.checkin(flow, ctx);
        outcome
    }

    /// Sends `request_bytes` on an established connection at `at` and returns
    /// the acknowledgement time plus the response arrival schedule according
    /// to the destination's service behaviour.
    pub fn request_response(
        &mut self,
        flow: FourTuple,
        request_bytes: usize,
        at: SimTime,
    ) -> DataExchange {
        let mut ctx = self.checkout(flow);
        let rtt = self.path_rtt_sample(&mut ctx.rng, flow.dst.addr, at);
        let half_rtt = SimDuration::from_millis_f64(rtt.as_millis_f64() / 2.0);
        let tx_up =
            SimDuration::from_millis_f64(self.access_at(at).uplink_tx_delay_ms(request_bytes));
        let depart = reserve(&mut ctx.uplink_busy, at, tx_up);
        self.tap.record(depart, TapDirection::Outbound, TapKind::Data(request_bytes), flow);
        let arrives_at_server = depart + half_rtt;
        let request_acked_at = depart + rtt;
        let service = self
            .server_for(flow.dst.addr)
            .map(|s| s.service.clone())
            .unwrap_or(Service::Echo);
        let (response_total, processing_ms) = match &service {
            Service::Silent | Service::Refuse | Service::Blackhole => (0usize, 0.0),
            Service::Echo => (request_bytes, 0.1),
            Service::Request { response_bytes, processing } => {
                (*response_bytes, processing.sample_ms(&mut ctx.rng))
            }
            Service::Bulk => (256 * 1024, 0.5),
        };
        let mut response_chunks = Vec::new();
        if response_total > 0 {
            let first_byte_leaves = arrives_at_server + SimDuration::from_millis_f64(processing_ms);
            let mut remaining = response_total;
            let mut cursor = first_byte_leaves + half_rtt;
            while remaining > 0 {
                let chunk = remaining.min(SEGMENT_BYTES);
                // A handover mid-download changes the serialisation rate of
                // the chunks that follow it.
                let tx = SimDuration::from_millis_f64(
                    self.access_at(cursor).downlink_tx_delay_ms(chunk),
                );
                cursor = reserve(&mut ctx.downlink_busy, cursor, tx);
                self.tap.record(cursor, TapDirection::Inbound, TapKind::Data(chunk), flow);
                response_chunks.push((cursor, chunk));
                remaining -= chunk;
            }
        }
        self.checkin(flow, ctx);
        DataExchange { request_acked_at, response_chunks, response_total }
    }

    /// Streams `bytes` from the destination to the handset starting at `at`
    /// (a bulk download, bounded by the downlink capacity). Returns the chunk
    /// arrival schedule.
    pub fn bulk_download(&mut self, flow: FourTuple, bytes: usize, at: SimTime) -> Vec<(SimTime, usize)> {
        let mut ctx = self.checkout(flow);
        let rtt = self.path_rtt_sample(&mut ctx.rng, flow.dst.addr, at);
        let mut cursor = at + rtt; // Request propagation + first byte.
        let mut remaining = bytes;
        let mut chunks = Vec::with_capacity(bytes / SEGMENT_BYTES + 1);
        while remaining > 0 {
            let chunk = remaining.min(SEGMENT_BYTES);
            let tx =
                SimDuration::from_millis_f64(self.access_at(cursor).downlink_tx_delay_ms(chunk));
            cursor = reserve(&mut ctx.downlink_busy, cursor, tx);
            chunks.push((cursor, chunk));
            remaining -= chunk;
        }
        self.checkin(flow, ctx);
        chunks
    }

    /// Streams `bytes` from the handset to the destination starting at `at`
    /// (a bulk upload, bounded by the uplink capacity). Returns the chunk
    /// departure schedule; each entry is when the chunk finished serialising
    /// onto the access link.
    pub fn bulk_upload(&mut self, flow: FourTuple, bytes: usize, at: SimTime) -> Vec<(SimTime, usize)> {
        let mut ctx = self.checkout(flow);
        let mut cursor = at;
        let mut remaining = bytes;
        let mut chunks = Vec::with_capacity(bytes / SEGMENT_BYTES + 1);
        while remaining > 0 {
            let chunk = remaining.min(SEGMENT_BYTES);
            let tx =
                SimDuration::from_millis_f64(self.access_at(cursor).uplink_tx_delay_ms(chunk));
            cursor = reserve(&mut ctx.uplink_busy, cursor, tx);
            chunks.push((cursor, chunk));
            remaining -= chunk;
        }
        self.checkin(flow, ctx);
        chunks
    }

    /// Resolves `name` through the ISP resolver, with the query leaving the
    /// handset at `at`.
    pub fn dns_lookup(&mut self, src: Endpoint, name: &str, at: SimTime) -> DnsOutcome {
        let flow = FourTuple::new(src, Endpoint::new(self.dns.addr, 53));
        let mut ctx = self.checkout(flow);
        let query_sent =
            at + SimDuration::from_millis_f64(self.access_at(at).uplink_tx_delay_ms(64));
        self.tap.record(query_sent, TapDirection::Outbound, TapKind::DnsQuery, flow);
        let answer = self.dns.resolve(name, &mut ctx.rng);
        let rtt = SimDuration::from_millis_f64(self.dns.sample_rtt_ms(&mut ctx.rng));
        self.checkin(flow, ctx);
        match answer {
            DnsAnswer::Timeout => {
                DnsOutcome { query_sent, response_at: None, addrs: Vec::new(), nxdomain: false }
            }
            DnsAnswer::NxDomain => {
                let response_at = query_sent + rtt;
                self.tap.record(response_at, TapDirection::Inbound, TapKind::DnsResponse, flow);
                DnsOutcome { query_sent, response_at: Some(response_at), addrs: Vec::new(), nxdomain: true }
            }
            DnsAnswer::Addresses(addrs) => {
                let response_at = query_sent + rtt;
                self.tap.record(response_at, TapDirection::Inbound, TapKind::DnsResponse, flow);
                DnsOutcome { query_sent, response_at: Some(response_at), addrs, nxdomain: false }
            }
        }
    }

}

/// Reserves `tx` of serialisation time on a link whose cursor is `busy`,
/// starting no earlier than `earliest`. Returns when the transmission
/// finishes and advances the cursor there.
fn reserve(busy: &mut SimTime, earliest: SimTime, tx: SimDuration) -> SimTime {
    let start = earliest.max(*busy);
    let done = start + tx;
    *busy = done;
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    fn google_flow(port: u16) -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, port), Endpoint::v4(216, 58, 221, 132, 443))
    }

    fn network() -> SimNetwork {
        SimNetwork::builder().seed(7).with_table2_destinations().build()
    }

    #[test]
    fn connect_rtt_matches_tap_ground_truth() {
        let mut net = network();
        let flow = google_flow(40000);
        let outcome = net.connect(flow, SimTime::from_millis(10));
        assert!(outcome.success);
        let tap_rtt = net.tap().handshake_rtt(flow).unwrap();
        assert_eq!(outcome.completed_at - outcome.syn_sent, tap_rtt);
        // Google path is a handful of milliseconds plus the WiFi access hop.
        assert!(tap_rtt.as_millis_f64() < 60.0, "rtt {}", tap_rtt);
    }

    #[test]
    fn dropbox_is_much_slower_than_google() {
        let mut net = network();
        let google = net.connect(google_flow(40000), SimTime::ZERO).true_rtt;
        let dropbox_flow =
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40001), Endpoint::v4(108, 160, 166, 126, 443));
        let dropbox = net.connect(dropbox_flow, SimTime::ZERO).true_rtt;
        assert!(dropbox.as_millis_f64() > google.as_millis_f64() * 5.0);
    }

    #[test]
    fn refused_and_blackholed_destinations() {
        let mut net = SimNetwork::builder()
            .seed(1)
            .server(ServerConfig::new(
                "closed",
                "10.9.9.9".parse().unwrap(),
                LatencyModel::constant(20.0),
                Service::Refuse,
            ))
            .server(ServerConfig::new(
                "hole",
                "10.9.9.10".parse().unwrap(),
                LatencyModel::constant(20.0),
                Service::Blackhole,
            ))
            .build();
        let refused = net.connect(
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 1), Endpoint::v4(10, 9, 9, 9, 80)),
            SimTime::ZERO,
        );
        assert!(!refused.success && refused.refused);
        let hole = net.connect(
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 2), Endpoint::v4(10, 9, 9, 10, 80)),
            SimTime::ZERO,
        );
        assert!(!hole.success && !hole.refused);
        assert!(hole.completed_at - hole.syn_sent >= CONNECT_TIMEOUT);
    }

    #[test]
    fn request_response_schedules_full_body() {
        let mut net = network();
        let flow = google_flow(40002);
        let exchange = net.request_response(flow, 500, SimTime::from_millis(100));
        let received: usize = exchange.response_chunks.iter().map(|(_, b)| *b).sum();
        assert_eq!(received, exchange.response_total);
        assert_eq!(exchange.response_total, 32 * 1024);
        assert!(exchange.completed_at() > exchange.request_acked_at);
        // Chunk times are non-decreasing.
        let times: Vec<_> = exchange.response_chunks.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bulk_download_is_bandwidth_limited() {
        let mut net = network();
        let flow = google_flow(40003);
        let bytes = 3 * 1024 * 1024; // 3 MiB.
        let start = SimTime::ZERO;
        let chunks = net.bulk_download(flow, bytes, start);
        let done = chunks.last().unwrap().0;
        let seconds = (done - start).as_secs_f64();
        let mbps = bytes as f64 * 8.0 / 1_000_000.0 / seconds;
        // The WiFi profile is 25 Mbps; allow RTT amortisation slack.
        assert!(mbps < 25.5, "throughput {mbps}");
        assert!(mbps > 15.0, "throughput {mbps}");
    }

    #[test]
    fn bulk_upload_is_uplink_limited() {
        let mut net = network();
        let flow = google_flow(40004);
        let bytes = 2 * 1024 * 1024;
        let chunks = net.bulk_upload(flow, bytes, SimTime::ZERO);
        let done = chunks.last().unwrap().0;
        let mbps = bytes as f64 * 8.0 / 1_000_000.0 / done.as_secs_f64();
        assert!(mbps < 26.5, "upload throughput {mbps}");
        assert!(mbps > 18.0, "upload throughput {mbps}");
    }

    #[test]
    fn dns_lookup_resolves_registered_domains() {
        let mut net = network();
        let src = Endpoint::v4(10, 0, 0, 2, 41000);
        let outcome = net.dns_lookup(src, "www.google.com", SimTime::from_millis(5));
        assert!(!outcome.nxdomain);
        assert_eq!(outcome.addrs, vec![Ipv4Addr::new(216, 58, 221, 132)]);
        assert!(outcome.rtt().unwrap() > SimDuration::ZERO);
        let missing = net.dns_lookup(src, "unknown.example", SimTime::from_millis(6));
        assert!(missing.nxdomain);
        assert!(missing.addrs.is_empty());
    }

    #[test]
    fn isp_core_penalty_raises_app_rtt_but_not_dns() {
        let jio = IspProfile::lte("Jio 4G", "India", 59.0)
            .with_core_extra(LatencyModel::constant(200.0));
        let mut with_jio = SimNetwork::builder()
            .seed(3)
            .network_type(NetworkType::Lte)
            .isp(jio)
            .with_table2_destinations()
            .build();
        let mut without = SimNetwork::builder()
            .seed(3)
            .network_type(NetworkType::Lte)
            .with_table2_destinations()
            .build();
        let f = google_flow(40005);
        let rtt_jio = with_jio.connect(f, SimTime::ZERO).true_rtt.as_millis_f64();
        let rtt_plain = without.connect(f, SimTime::ZERO).true_rtt.as_millis_f64();
        assert!(rtt_jio > rtt_plain + 150.0, "jio {rtt_jio} plain {rtt_plain}");
        let dns_jio = with_jio.dns_lookup(Endpoint::v4(10, 0, 0, 2, 1), "www.google.com", SimTime::ZERO);
        assert!(dns_jio.rtt().unwrap().as_millis_f64() < 150.0);
    }

    #[test]
    fn syn_backoff_walks_the_rfc_6298_schedule() {
        // Certain loss: every attempt is lost, the chain exhausts at the
        // connect timeout and the handshake fails like a blackhole.
        let mut always = SimNetwork::builder()
            .seed(21)
            .access(AccessProfile { loss: 1.0, ..AccessProfile::wifi() })
            .build();
        let flow = google_flow(40100);
        let outcome = always.connect(flow, SimTime::ZERO);
        assert!(!outcome.success && !outcome.refused);
        assert_eq!(outcome.completed_at - outcome.syn_sent, CONNECT_TIMEOUT);
        // The tap recorded the retransmissions at 1, 3, 7, 15 s after the
        // first SYN (cumulative 1+2+4+8 backoff, capped by the timeout).
        let syns: Vec<_> = always
            .tap()
            .records()
            .iter()
            .filter(|r| r.kind == TapKind::Syn && r.flow == flow)
            .map(|r| (r.at - outcome.syn_sent).as_secs_f64().round() as u64)
            .collect();
        assert_eq!(syns, vec![0, 1, 3, 7, 15]);
    }

    #[test]
    fn syn_retry_success_matches_the_old_single_retry_timing() {
        // Find a seed whose first attempt is lost but whose first retry gets
        // through: the handshake then completes at syn_sent + 1 s + rtt,
        // exactly what the single-retry model produced.
        for seed in 0..2000 {
            let mut net = SimNetwork::builder()
                .seed(seed)
                .access(AccessProfile { loss: 0.4, ..AccessProfile::wifi() })
                .build();
            let flow = google_flow(40101);
            let outcome = net.connect(flow, SimTime::ZERO);
            if !outcome.success {
                continue;
            }
            let over_rtt = outcome.completed_at - outcome.syn_sent - outcome.true_rtt;
            if over_rtt > SimDuration::ZERO {
                assert_eq!(over_rtt, SimDuration::from_secs(1));
                return;
            }
        }
        panic!("no seed produced a lost-then-recovered handshake");
    }

    #[test]
    fn data_faults_are_flow_keyed_and_released() {
        let mut net = SimNetwork::builder()
            .seed(5)
            .access(AccessProfile::lossy_3g())
            .build();
        assert!(net.faults_possible());
        let flow = google_flow(40200);
        let schedule: Vec<_> =
            (0..200).map(|_| net.data_fault(flow, SimTime::ZERO)).collect();
        assert!(schedule.iter().any(|d| !d.is_deliver()), "lossy 3G fired no faults");
        // Releasing the flow rewinds its fault stream to the seed.
        net.release_flow(flow);
        let replay: Vec<_> =
            (0..200).map(|_| net.data_fault(flow, SimTime::ZERO)).collect();
        assert_eq!(schedule, replay);
        // Another flow sees an independent schedule.
        net.release_flow(flow);
        let other: Vec<_> =
            (0..200).map(|_| net.data_fault(google_flow(40201), SimTime::ZERO)).collect();
        assert_ne!(schedule, other);
    }

    #[test]
    fn clean_profiles_never_fault_and_keep_no_state() {
        let mut net = SimNetwork::builder().seed(6).build();
        assert!(!net.faults_possible());
        let flow = google_flow(40202);
        for _ in 0..50 {
            assert!(net.data_fault(flow, SimTime::ZERO).is_deliver());
        }
        assert!(net.fault_rng.is_empty(), "clean profile allocated fault state");
        // A handover onto a faulty profile flips faults_possible and makes
        // post-handover segments eligible.
        let mut mixed = SimNetwork::builder()
            .seed(6)
            .handover_at(SimTime::from_millis(1000), AccessProfile::lossy_3g())
            .build();
        assert!(mixed.faults_possible());
        assert!(mixed.data_fault(flow, SimTime::ZERO).is_deliver());
        assert!(mixed.fault_rng.is_empty());
        let late: Vec<_> =
            (0..300).map(|_| mixed.data_fault(flow, SimTime::from_millis(1500))).collect();
        assert!(late.iter().any(|d| !d.is_deliver()));
    }

    #[test]
    fn unknown_destination_uses_default_path() {
        let mut net = SimNetwork::builder().seed(9).build();
        let flow = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 1), Endpoint::v4(203, 0, 113, 7, 443));
        let outcome = net.connect(flow, SimTime::ZERO);
        assert!(outcome.success);
        assert!(outcome.true_rtt.as_millis_f64() > 5.0);
    }
}
