//! A hierarchical timing wheel: O(1) schedule/cancel for discrete-event loops.
//!
//! The [`crate::queue::EventQueue`] pays O(log n) per schedule and per pop on
//! its binary heap, which adds up once a fleet shard keeps 100k+ live
//! connections' worth of pending events. [`TimingWheel`] replaces it with the
//! classic hashed hierarchical wheel (Varghese & Lauck): time is quantised
//! into *ticks* of a configurable power-of-two granularity, and each wheel
//! level holds 64 slots, each slot covering 64× the span of the level below.
//! Scheduling hashes the event's tick into a slot in O(1); popping advances a
//! cursor through per-level occupancy bitmaps (one `u64` per level, so "next
//! occupied slot" is a `trailing_zeros`), cascading higher-level slots down
//! as the cursor reaches them.
//!
//! # Determinism
//!
//! The wheel reproduces the heap queue's pop order *exactly*: every entry
//! carries a global insertion sequence number, and a drained level-0 slot is
//! sorted by `(fire time, sequence)` before its events are released. Events
//! scheduled at the same instant therefore pop in FIFO schedule order — the
//! tie-break the engine's determinism contract depends on — and the
//! wheel-vs-heap equivalence suite (`crates/simnet/tests/wheel_equivalence.rs`)
//! pins the two implementations against each other on random workloads.
//!
//! # Cancellation
//!
//! [`TimingWheel::schedule`] returns a [`TimerHandle`]. Cancellation is lazy
//! and O(1): the slab entry is vacated and its generation bumped; the dead
//! index is reclaimed when its slot is next drained or cascaded. A stale
//! handle (already fired or already cancelled) is simply ignored, so callers
//! can keep handles around without lifecycle bookkeeping.
//!
//! # Example
//!
//! ```
//! use mop_simnet::{SimTime, TimingWheel};
//!
//! let mut wheel: TimingWheel<&str> = TimingWheel::new();
//! wheel.schedule(SimTime::from_millis(30), "c");
//! let cancel_me = wheel.schedule(SimTime::from_millis(20), "b");
//! wheel.schedule(SimTime::from_millis(10), "a");
//! wheel.cancel(cancel_me);
//! assert_eq!(wheel.pop(), Some((SimTime::from_millis(10), "a")));
//! assert_eq!(wheel.pop(), Some((SimTime::from_millis(30), "c")));
//! assert_eq!(wheel.pop(), None);
//! ```

use crate::time::{SimDuration, SimTime};

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level; one `u64` occupancy bitmap covers a level exactly.
const SLOTS: usize = 1 << SLOT_BITS;

/// The default tick granularity: 1024 ns (~1 µs), fine enough that the
/// engine's microsecond-scale costs land in distinct ticks.
pub const DEFAULT_GRANULARITY: SimDuration = SimDuration::from_nanos(1 << 10);

/// A cancellable reference to one scheduled event.
///
/// Handles are generation-checked: once the event has fired or been
/// cancelled, the handle goes stale and further [`TimingWheel::cancel`] calls
/// are no-ops. A handle can round-trip through a bare `u64`
/// ([`TimerHandle::token`] / [`TimerHandle::from_token`]) so layers that must
/// not depend on this crate (e.g. `mop_tcpstack`) can still store one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    idx: u32,
    generation: u32,
}

impl TimerHandle {
    /// Packs the handle into an opaque token.
    pub fn token(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.idx)
    }

    /// Rebuilds a handle from [`TimerHandle::token`]. A forged or stale token
    /// is harmless: the generation check makes cancellation a no-op.
    pub fn from_token(token: u64) -> Self {
        Self { idx: token as u32, generation: (token >> 32) as u32 }
    }
}

/// One slab cell. `event: None` means the entry is cancelled (awaiting
/// reclaim when its slot drains) or already free.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    generation: u32,
    event: Option<E>,
}

/// A multi-level timing wheel with deterministic FIFO tie-order and O(1)
/// schedule/cancel. See the [module docs](self).
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// Tick granularity: `tick = at.as_nanos() >> shift`.
    shift: u32,
    /// Number of levels (covers the full 64-bit nanosecond range).
    levels: usize,
    /// `levels * 64` slot buckets of slab indices (flattened).
    slots: Vec<Vec<u32>>,
    /// One occupancy bitmap per level.
    occupied: Vec<u64>,
    /// Entry storage; indices are stable for the life of an entry.
    slab: Vec<Entry<E>>,
    /// Reusable slab indices.
    free: Vec<u32>,
    /// The tick cursor: every live wheel entry fires at `tick >= elapsed`.
    elapsed: u64,
    /// Due entries (tick <= elapsed), sorted by `(at, seq)`, consumed from
    /// `ready_pos`. Late schedules at or before the cursor are merge-sorted
    /// in here so past-due events still pop in exact heap order.
    ready: Vec<u32>,
    ready_pos: usize,
    /// Pending (scheduled, not yet fired, not cancelled) entries.
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
    /// Wall-clock instrumentation (written only under the `profiling`
    /// feature; plain fields so the struct shape never changes): schedules
    /// that landed in the sorted due buffer, and the elements those sorted
    /// inserts had to shift.
    ready_inserts: u64,
    ready_shift_elems: u64,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// One slab cell of a [`WheelSnapshot`]: the entry's timing identity plus its
/// mapped event (`None` for a lazily-cancelled cell awaiting reclaim).
#[derive(Debug, Clone)]
struct SnapshotEntry<S> {
    at: SimTime,
    seq: u64,
    generation: u32,
    event: Option<S>,
}

/// A structural snapshot of a [`TimingWheel`], taken by
/// [`TimingWheel::snapshot`] with the events mapped into a caller-chosen
/// form `S`.
///
/// The snapshot is cell-for-cell: it keeps the slot buckets, the occupancy
/// bitmaps, the due buffer and its cursor, the insertion-sequence counter —
/// and, crucially, the *lazily-cancelled* slab entries (vacated cells whose
/// generation was bumped but whose index has not been reclaimed yet) plus
/// the free-list order. A wheel restored by [`TimingWheel::restore`]
/// therefore not only pops the same events at the same times: it assigns the
/// *same* [`TimerHandle`]s (index and generation) to future schedules,
/// reclaims dead indices in the same order, and ignores the same stale
/// tokens — the properties a deterministic checkpoint/restore needs.
#[derive(Debug, Clone)]
pub struct WheelSnapshot<S> {
    shift: u32,
    slots: Vec<Vec<u32>>,
    occupied: Vec<u64>,
    slab: Vec<SnapshotEntry<S>>,
    free: Vec<u32>,
    elapsed: u64,
    ready: Vec<u32>,
    ready_pos: usize,
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
}

impl<S> WheelSnapshot<S> {
    /// Number of pending (live) events captured in the snapshot.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the snapshot holds no pending events. Cancelled-but-unreclaimed
    /// cells and the cursor position are still captured.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over the pending events (their fire times and mapped
    /// payloads) in slab order — useful for serialising a snapshot.
    pub fn pending(&self) -> impl Iterator<Item = (SimTime, &S)> {
        self.slab.iter().filter_map(|e| e.event.as_ref().map(|s| (e.at, s)))
    }
}

impl<E> TimingWheel<E> {
    /// Creates a wheel with the [`DEFAULT_GRANULARITY`].
    pub fn new() -> Self {
        Self::with_granularity(DEFAULT_GRANULARITY)
    }

    /// Creates a wheel whose tick is `granularity`, rounded up to a power of
    /// two nanoseconds (clamped to at most ~1 ms so level 0 keeps sub-slot
    /// times distinguishable by the sort, and at least 1 ns).
    pub fn with_granularity(granularity: SimDuration) -> Self {
        let g = granularity.as_nanos().clamp(1, 1 << 20).next_power_of_two();
        let shift = g.trailing_zeros();
        let levels = (64 - shift as usize).div_ceil(SLOT_BITS as usize);
        Self {
            shift,
            levels,
            slots: (0..levels * SLOTS).map(|_| Vec::new()).collect(),
            occupied: vec![0; levels],
            slab: Vec::new(),
            free: Vec::new(),
            elapsed: 0,
            ready: Vec::new(),
            ready_pos: 0,
            live: 0,
            next_seq: 0,
            scheduled_total: 0,
            ready_inserts: 0,
            ready_shift_elems: 0,
        }
    }

    /// The wheel's tick granularity.
    pub fn granularity(&self) -> SimDuration {
        SimDuration::from_nanos(1 << self.shift)
    }

    /// Schedules `event` to fire at `at` and returns a cancellable handle.
    ///
    /// O(1): one slab write plus one slot push (or, for an event at or before
    /// the cursor, a sorted insert into the small due buffer).
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        let idx = self.alloc(at, seq, event);
        let generation = self.slab[idx as usize].generation;
        let tick = at.as_nanos() >> self.shift;
        if tick <= self.elapsed {
            // Due now (or scheduled into the past): join the sorted due
            // buffer at its (at, seq) position so pop order matches the heap.
            self.ready_insert(idx);
        } else {
            self.place(idx, tick);
        }
        TimerHandle { idx, generation }
    }

    /// Cancels a pending event, returning it if the handle was still live.
    ///
    /// O(1): the slab entry is vacated and its slot reference reclaimed
    /// lazily when the slot next drains.
    pub fn cancel(&mut self, handle: TimerHandle) -> Option<E> {
        let entry = self.slab.get_mut(handle.idx as usize)?;
        if entry.generation != handle.generation {
            return None;
        }
        let event = entry.event.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.live -= 1;
        Some(event)
    }

    /// Pops the earliest pending event, if any. Ties at the same instant pop
    /// in schedule (FIFO) order, exactly like [`crate::queue::EventQueue`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.ensure_ready();
            if self.ready_pos >= self.ready.len() {
                return None;
            }
            let idx = self.ready[self.ready_pos];
            self.ready_pos += 1;
            let entry = &mut self.slab[idx as usize];
            if let Some(event) = entry.event.take() {
                let at = entry.at;
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(idx);
                self.live -= 1;
                return Some((at, event));
            }
            // Cancelled while waiting in the due buffer.
            self.free.push(idx);
        }
    }

    /// Pops the earliest event only if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= until {
            self.pop()
        } else {
            None
        }
    }

    /// The fire time of the earliest pending event.
    ///
    /// Takes `&mut self`: peeking may advance the cursor and cascade slots,
    /// which is semantically transparent but mutates the structure.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.ensure_ready();
            let &idx = self.ready.get(self.ready_pos)?;
            if self.slab[idx as usize].event.is_some() {
                return Some(self.slab[idx as usize].at);
            }
            self.ready_pos += 1;
            self.free.push(idx);
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled (for loop-progress assertions).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Resets the wheel to its just-constructed state while keeping every
    /// allocation (slot buckets, slab, due buffer, free list): pending
    /// events are dropped, the cursor returns to tick zero and the sequence
    /// and schedule accounting restart. This is the clear-don't-drop reuse
    /// path a resident engine takes between runs — behaviourally equivalent
    /// to a fresh wheel (pop order depends only on `(at, seq)`, both of
    /// which restart), differing only in which slab indices future handles
    /// receive, which nothing observes.
    pub fn reset(&mut self) {
        self.clear();
        self.elapsed = 0;
        self.next_seq = 0;
        self.scheduled_total = 0;
        self.ready_inserts = 0;
        self.ready_shift_elems = 0;
    }

    /// The wheel's gated instrumentation, as `(counter name, value)` pairs —
    /// all zero unless the crate was compiled with the `profiling` feature.
    pub fn profile_counters(&self) -> [(&'static str, u64); 2] {
        [
            ("wheel.ready_inserts", self.ready_inserts),
            ("wheel.ready_shift_elems", self.ready_shift_elems),
        ]
    }

    /// Removes all pending events. The cursor and the schedule accounting
    /// are kept, matching [`crate::queue::EventQueue::clear`].
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        for bitmap in &mut self.occupied {
            *bitmap = 0;
        }
        self.ready.clear();
        self.ready_pos = 0;
        self.free.clear();
        for (i, entry) in self.slab.iter_mut().enumerate() {
            if entry.event.take().is_some() {
                entry.generation = entry.generation.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        self.live = 0;
    }

    /// Captures a structural snapshot of the wheel, mapping each live event
    /// through `map` (typically into a serialisable form). See
    /// [`WheelSnapshot`] for exactly what is preserved.
    pub fn snapshot<S>(&self, mut map: impl FnMut(&E) -> S) -> WheelSnapshot<S> {
        WheelSnapshot {
            shift: self.shift,
            slots: self.slots.clone(),
            occupied: self.occupied.clone(),
            slab: self
                .slab
                .iter()
                .map(|e| SnapshotEntry {
                    at: e.at,
                    seq: e.seq,
                    generation: e.generation,
                    event: e.event.as_ref().map(&mut map),
                })
                .collect(),
            free: self.free.clone(),
            elapsed: self.elapsed,
            ready: self.ready.clone(),
            ready_pos: self.ready_pos,
            live: self.live,
            next_seq: self.next_seq,
            scheduled_total: self.scheduled_total,
        }
    }

    /// Rebuilds a wheel from a snapshot, mapping each stored event back
    /// through `map`. The result is structurally identical to the wheel the
    /// snapshot was taken from: same pop order, same future handle
    /// assignment, same lazy-reclaim order for cancelled cells.
    pub fn restore<S>(snapshot: &WheelSnapshot<S>, mut map: impl FnMut(&S) -> E) -> Self {
        Self {
            shift: snapshot.shift,
            levels: (64 - snapshot.shift as usize).div_ceil(SLOT_BITS as usize),
            slots: snapshot.slots.clone(),
            occupied: snapshot.occupied.clone(),
            slab: snapshot
                .slab
                .iter()
                .map(|e| Entry {
                    at: e.at,
                    seq: e.seq,
                    generation: e.generation,
                    event: e.event.as_ref().map(&mut map),
                })
                .collect(),
            free: snapshot.free.clone(),
            elapsed: snapshot.elapsed,
            ready: snapshot.ready.clone(),
            ready_pos: snapshot.ready_pos,
            live: snapshot.live,
            next_seq: snapshot.next_seq,
            scheduled_total: snapshot.scheduled_total,
            ready_inserts: 0,
            ready_shift_elems: 0,
        }
    }

    // ----- internals ------------------------------------------------------

    fn alloc(&mut self, at: SimTime, seq: u64, event: E) -> u32 {
        if let Some(idx) = self.free.pop() {
            let entry = &mut self.slab[idx as usize];
            entry.at = at;
            entry.seq = seq;
            entry.event = Some(event);
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Entry { at, seq, generation: 0, event: Some(event) });
            idx
        }
    }

    /// The level an entry at `tick` belongs to, relative to the cursor: the
    /// highest tick bit in which it differs from `elapsed` picks the level
    /// (the tokio-timer placement rule), so within a level an occupied slot
    /// is always in the cursor's current rotation.
    fn level_of(&self, tick: u64) -> usize {
        let differing = tick ^ self.elapsed;
        if differing == 0 {
            return 0;
        }
        ((63 - differing.leading_zeros()) / SLOT_BITS) as usize
    }

    /// Files a wheel entry into its slot (tick must be > elapsed, or == for
    /// cascade re-placement, which lands in level 0's current slot and is
    /// drained next).
    fn place(&mut self, idx: u32, tick: u64) {
        let level = self.level_of(tick);
        let slot = ((tick >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(idx);
        self.occupied[level] |= 1 << slot;
    }

    /// Sorted insert into the unconsumed tail of the due buffer.
    fn ready_insert(&mut self, idx: u32) {
        let (at, seq) = {
            let e = &self.slab[idx as usize];
            (e.at, e.seq)
        };
        let tail = &self.ready[self.ready_pos..];
        let offset = tail.partition_point(|&i| {
            let e = &self.slab[i as usize];
            (e.at, e.seq) <= (at, seq)
        });
        #[cfg(feature = "profiling")]
        {
            self.ready_inserts += 1;
            self.ready_shift_elems += (tail.len() - offset) as u64;
        }
        self.ready.insert(self.ready_pos + offset, idx);
    }

    /// The earliest occupied slot across all levels: returns
    /// `(level, slot index, start tick)` of the slot with the smallest
    /// deadline, preferring the *higher* level on ties so containing ranges
    /// cascade before the exact slot drains.
    fn next_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 0..self.levels {
            let bitmap = self.occupied[level];
            if bitmap == 0 {
                continue;
            }
            let level_shift = level as u32 * SLOT_BITS;
            let span_bits = level_shift + SLOT_BITS;
            let cursor_slot = ((self.elapsed >> level_shift) & (SLOTS as u64 - 1)) as usize;
            let rotation_base = if span_bits >= 64 {
                0
            } else {
                (self.elapsed >> span_bits) << span_bits
            };
            let ahead = bitmap & (!0u64 << cursor_slot);
            let (slot, base) = if ahead != 0 {
                (ahead.trailing_zeros() as usize, rotation_base)
            } else {
                // Only reachable if an entry was left behind the cursor,
                // which the placement rule excludes; treat it as belonging
                // to the next rotation so it still fires.
                debug_assert!(false, "timing wheel slot behind the cursor");
                let next_base = if span_bits >= 64 {
                    rotation_base
                } else {
                    rotation_base.saturating_add(1 << span_bits)
                };
                (bitmap.trailing_zeros() as usize, next_base)
            };
            let deadline = base + ((slot as u64) << level_shift);
            let better = match best {
                None => true,
                Some((d, l, _)) => deadline < d || (deadline == d && level > l),
            };
            if better {
                best = Some((deadline, level, slot));
            }
        }
        best.map(|(deadline, level, slot)| (level, slot, deadline))
    }

    /// Refills the due buffer: advances the cursor to the next occupied
    /// slot, cascading higher-level slots down until a level-0 slot drains,
    /// then sorts the drained entries by `(at, seq)`.
    fn ensure_ready(&mut self) {
        while self.ready_pos >= self.ready.len() && self.live > 0 {
            self.ready.clear();
            self.ready_pos = 0;
            let Some((level, slot, start_tick)) = self.next_slot() else {
                debug_assert!(false, "live entries but no occupied slot");
                return;
            };
            debug_assert!(start_tick >= self.elapsed, "wheel cursor moved backwards");
            self.elapsed = start_tick.max(self.elapsed);
            self.occupied[level] &= !(1 << slot);
            let mut entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            if level == 0 {
                for idx in entries.drain(..) {
                    if self.slab[idx as usize].event.is_some() {
                        self.ready.push(idx);
                    } else {
                        self.free.push(idx);
                    }
                }
                // Restore the slot's capacity for reuse.
                self.slots[level * SLOTS + slot] = entries;
                let slab = &self.slab;
                self.ready
                    .sort_unstable_by_key(|&i| (slab[i as usize].at, slab[i as usize].seq));
            } else {
                // Cascade: redistribute one higher-level slot relative to the
                // advanced cursor. Every entry strictly descends a level, so
                // this terminates and costs O(1) amortised per event.
                for idx in entries.drain(..) {
                    if self.slab[idx as usize].event.is_some() {
                        let tick = self.slab[idx as usize].at.as_nanos() >> self.shift;
                        self.place(idx, tick);
                    } else {
                        self.free.push(idx);
                    }
                }
                self.slots[level * SLOTS + slot] = entries;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut wheel = TimingWheel::new();
        wheel.schedule(SimTime::from_secs(30), "far");
        wheel.schedule(SimTime::from_millis(10), "near");
        wheel.schedule(SimTime::from_millis(500), "mid");
        wheel.schedule(SimTime::from_nanos(3), "now");
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["now", "near", "mid", "far"]);
        assert_eq!(wheel.scheduled_total(), 4);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            wheel.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| wheel.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sub_tick_times_still_sort_exactly() {
        // Two events in the same tick but at different nanosecond instants
        // must pop in time order, not slot order.
        let mut wheel = TimingWheel::with_granularity(SimDuration::from_nanos(1024));
        wheel.schedule(SimTime::from_nanos(2000), "b");
        wheel.schedule(SimTime::from_nanos(1500), "a");
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(1500), "a")));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(2000), "b")));
    }

    #[test]
    fn cancel_is_effective_and_stale_handles_are_ignored() {
        let mut wheel = TimingWheel::new();
        let a = wheel.schedule(SimTime::from_millis(1), "a");
        let b = wheel.schedule(SimTime::from_millis(2), "b");
        assert_eq!(wheel.cancel(b), Some("b"));
        assert_eq!(wheel.cancel(b), None, "second cancel is a no-op");
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(wheel.cancel(a), None, "fired handles are stale");
        assert_eq!(wheel.pop(), None);
        // The slab index is reused with a fresh generation: the old token
        // must not cancel the new entry.
        let c = wheel.schedule(SimTime::from_millis(3), "c");
        let stale = TimerHandle::from_token(a.token());
        assert_eq!(wheel.cancel(stale), None);
        assert_eq!(wheel.cancel(TimerHandle::from_token(c.token())), Some("c"));
    }

    #[test]
    fn schedule_into_the_past_pops_first() {
        let mut wheel = TimingWheel::new();
        wheel.schedule(SimTime::from_millis(10), "t10");
        wheel.schedule(SimTime::from_millis(12), "t12");
        assert_eq!(wheel.pop().unwrap().1, "t10");
        // The cursor sits at ~t10; a straggler lands before t12.
        wheel.schedule(SimTime::from_millis(4), "t4");
        assert_eq!(wheel.pop().unwrap().1, "t4");
        assert_eq!(wheel.pop().unwrap().1, "t12");
    }

    #[test]
    fn pop_until_and_peek_respect_the_horizon() {
        let mut wheel = TimingWheel::new();
        wheel.schedule(SimTime::from_millis(10), 1);
        wheel.schedule(SimTime::from_secs(50), 2);
        assert_eq!(wheel.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(
            wheel.pop_until(SimTime::from_millis(20)),
            Some((SimTime::from_millis(10), 1))
        );
        assert_eq!(wheel.pop_until(SimTime::from_millis(20)), None);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.peek_time(), Some(SimTime::from_secs(50)));
    }

    #[test]
    fn clear_keeps_accounting() {
        let mut wheel: TimingWheel<u8> = TimingWheel::new();
        assert!(wheel.is_empty());
        wheel.schedule(SimTime::from_millis(1), 7);
        assert_eq!(wheel.scheduled_total(), 1);
        assert!(!wheel.is_empty());
        wheel.clear();
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
        assert_eq!(wheel.scheduled_total(), 1);
    }

    #[test]
    fn granularity_rounds_to_power_of_two() {
        let wheel: TimingWheel<u8> = TimingWheel::with_granularity(SimDuration::from_nanos(1000));
        assert_eq!(wheel.granularity().as_nanos(), 1024);
        let coarse: TimingWheel<u8> = TimingWheel::with_granularity(SimDuration::from_millis(100));
        assert_eq!(coarse.granularity().as_nanos(), 1 << 20);
    }

    #[test]
    fn mass_schedule_cancel_churn_stays_consistent() {
        let mut wheel = TimingWheel::new();
        let mut handles = Vec::new();
        for round in 0..50u64 {
            for i in 0..100u64 {
                let at = SimTime::from_nanos(round * 1_000_000 + i * 13_001);
                handles.push(wheel.schedule(at, (round, i)));
            }
            // Cancel every other timer from this round.
            for chunk in handles.chunks(2) {
                wheel.cancel(chunk[0]);
            }
            handles.clear();
            // Drain a few.
            for _ in 0..20 {
                wheel.pop();
            }
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = wheel.pop() {
            assert!(at >= last);
            last = at;
        }
        assert!(wheel.is_empty());
    }
}
