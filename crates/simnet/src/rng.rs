//! Deterministic randomness for the simulation.
//!
//! Self-contained xoshiro256++ generator (seeded via splitmix64) so the
//! simulator has no external RNG dependency and every stream is reproducible
//! bit-for-bit from its seed across platforms and toolchains.

/// A seeded random-number generator wrapper.
///
/// Every experiment takes an explicit seed so that a run can be reproduced
/// bit-for-bit; derived generators (`fork`) let independent components draw
/// from statistically independent streams without sharing mutable state.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Derives an independent generator, keyed by a label hash so that two
    /// forks with different labels produce different streams.
    pub fn fork(&mut self, label: &str) -> Self {
        let salt: u64 = label.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        Self::seed_from_u64(self.next_u64() ^ salt)
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// A uniform integer in `[lo, hi]`.
    pub fn int_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// A standard-normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.unit().max(1e-12);
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A log-normal sample parameterised by its *median* and the sigma of the
    /// underlying normal. Latency distributions in the paper are summarised
    /// by medians, so this parameterisation maps directly onto the reported
    /// numbers.
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        (median.max(1e-9).ln() + sigma * self.standard_normal()).exp()
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks an index in `0..weights.len()` proportionally to the weights.
    ///
    /// Returns `None` for an empty slice or all-zero weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 || !w.is_finite() {
                continue;
            }
            if target < *w {
                return Some(i);
            }
            target -= *w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Picks a uniformly random element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.int_inclusive(0, items.len() as u64 - 1) as usize;
            Some(&items[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_with_different_labels_diverge() {
        let mut root = SimRng::seed_from_u64(7);
        let mut a = root.clone().fork("dns");
        let mut b = root.fork("tcp");
        let same = (0..32).filter(|_| a.unit().to_bits() == b.unit().to_bits()).count();
        assert!(same < 4, "forked streams should not track each other");
    }

    #[test]
    fn uniform_and_int_ranges_hold() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.uniform(10.0, 20.0);
            assert!((10.0..20.0).contains(&v));
            let i = rng.int_inclusive(3, 6);
            assert!((3..=6).contains(&i));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.int_inclusive(9, 2), 9);
    }

    #[test]
    fn lognormal_median_is_near_requested_median() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..4001).map(|_| rng.lognormal_median(76.0, 0.5)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 76.0).abs() < 6.0, "median {median} too far from 76");
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(5);
        let mean: f64 = (0..4000).map(|_| rng.normal(10.0, 2.0)).sum::<f64>() / 4000.0;
        assert!((mean - 10.0).abs() < 0.2);
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SimRng::seed_from_u64(11);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn chance_and_choose() {
        let mut rng = SimRng::seed_from_u64(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
        assert_eq!(rng.choose::<u8>(&[]), None);
    }

    #[test]
    fn unit_values_fill_the_half_open_interval() {
        let mut rng = SimRng::seed_from_u64(17);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = rng.unit();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
