//! Simulated remote application servers.
//!
//! Each server models one destination the relay can connect to: it has one or
//! more IP addresses, the domains that resolve to it, a path RTT distribution
//! from the handset to it, and a simple service behaviour used when the
//! workload exchanges data.

use std::net::IpAddr;


use crate::latency::LatencyModel;

/// What a server does with application data once a connection is established.
#[derive(Debug, Clone, PartialEq)]
pub enum Service {
    /// Accepts connections and data but never responds (e.g. analytics sinks).
    Silent,
    /// Echoes every received byte back.
    Echo,
    /// Responds to each request with a fixed-size response after a
    /// server-side processing delay, like an HTTP front end.
    Request {
        /// Response body size in bytes.
        response_bytes: usize,
        /// Server processing time before the first response byte.
        processing: LatencyModel,
    },
    /// Streams an effectively unbounded body as fast as the path allows,
    /// like a video CDN or a speed-test sink.
    Bulk,
    /// Refuses connections with RST (closed port / blocked destination).
    Refuse,
    /// Accepts the SYN but never completes the handshake (drops it), causing
    /// a connect timeout.
    Blackhole,
}

impl Service {
    /// A typical web front end: ~32 KiB responses with a few ms server time.
    pub fn web() -> Self {
        Service::Request { response_bytes: 32 * 1024, processing: LatencyModel::uniform(1.0, 8.0) }
    }

    /// A typical API endpoint: small JSON responses, fast servers.
    pub fn api() -> Self {
        Service::Request { response_bytes: 2 * 1024, processing: LatencyModel::uniform(0.5, 4.0) }
    }

    /// Returns true if a connection attempt to this service succeeds.
    pub fn accepts_connections(&self) -> bool {
        !matches!(self, Service::Refuse | Service::Blackhole)
    }
}

/// A remote server the simulated handset can reach.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// A human-readable name ("Google", "graph.facebook.com front end").
    pub name: String,
    /// Addresses this server answers on.
    pub addrs: Vec<IpAddr>,
    /// Domains that resolve to this server.
    pub domains: Vec<String>,
    /// Internet-path RTT from the handset's ISP edge to this server,
    /// excluding the access network (which the [`crate::profile::AccessProfile`] adds).
    pub path_rtt: LatencyModel,
    /// Service behaviour.
    pub service: Service,
}

impl ServerConfig {
    /// Creates a server with a single IPv4 address.
    pub fn new(name: &str, addr: IpAddr, path_rtt: LatencyModel, service: Service) -> Self {
        Self {
            name: name.to_string(),
            addrs: vec![addr],
            domains: Vec::new(),
            path_rtt,
            service,
        }
    }

    /// Adds a domain that resolves to this server.
    pub fn with_domain(mut self, domain: &str) -> Self {
        self.domains.push(domain.to_ascii_lowercase());
        self
    }

    /// Adds an extra address.
    pub fn with_addr(mut self, addr: IpAddr) -> Self {
        self.addrs.push(addr);
        self
    }

    /// Returns true if this server answers on `addr`.
    pub fn has_addr(&self, addr: IpAddr) -> bool {
        self.addrs.contains(&addr)
    }

    /// Returns true if `domain` resolves to this server.
    pub fn serves_domain(&self, domain: &str) -> bool {
        let domain = domain.to_ascii_lowercase();
        self.domains.contains(&domain)
    }

    /// The paper's Table 2 destinations, with their tcpdump-measured RTT
    /// scales: Google (~4–5 ms), Facebook (~37 ms) and Dropbox (~285–514 ms).
    pub fn table2_destinations() -> Vec<ServerConfig> {
        vec![
            ServerConfig::new(
                "Google",
                "216.58.221.132".parse().unwrap(),
                LatencyModel::lognormal_with(4.0, 0.15, 0.5),
                Service::web(),
            )
            .with_domain("www.google.com"),
            ServerConfig::new(
                "Facebook",
                "31.13.79.251".parse().unwrap(),
                LatencyModel::lognormal_with(36.0, 0.08, 1.0),
                Service::web(),
            )
            .with_domain("graph.facebook.com"),
            ServerConfig::new(
                "Dropbox",
                "108.160.166.126".parse().unwrap(),
                LatencyModel::lognormal_with(320.0, 0.3, 60.0),
                Service::web(),
            )
            .with_domain("www.dropbox.com"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn builder_accumulates_domains_and_addrs() {
        let s = ServerConfig::new(
            "WhatsApp",
            "158.85.5.197".parse().unwrap(),
            LatencyModel::lognormal(261.0),
            Service::api(),
        )
        .with_domain("e1.whatsapp.net")
        .with_domain("E2.WHATSAPP.NET")
        .with_addr("158.85.58.114".parse().unwrap());
        assert!(s.serves_domain("e2.whatsapp.net"));
        assert!(!s.serves_domain("mme.whatsapp.net"));
        assert!(s.has_addr("158.85.58.114".parse().unwrap()));
        assert!(!s.has_addr("1.2.3.4".parse().unwrap()));
    }

    #[test]
    fn service_connection_acceptance() {
        assert!(Service::web().accepts_connections());
        assert!(Service::Echo.accepts_connections());
        assert!(Service::Bulk.accepts_connections());
        assert!(!Service::Refuse.accepts_connections());
        assert!(!Service::Blackhole.accepts_connections());
    }

    #[test]
    fn table2_destinations_have_expected_scales() {
        let servers = ServerConfig::table2_destinations();
        assert_eq!(servers.len(), 3);
        let mut rng = SimRng::seed_from_u64(1);
        let rtt = |i: usize, rng: &mut SimRng| servers[i].path_rtt.sample_ms(rng);
        // Google well under Facebook, Facebook well under Dropbox.
        let (g, f, d) = (rtt(0, &mut rng), rtt(1, &mut rng), rtt(2, &mut rng));
        assert!(g < 10.0, "google rtt {g}");
        assert!((20.0..60.0).contains(&f), "facebook rtt {f}");
        assert!(d > 150.0, "dropbox rtt {d}");
    }

    #[test]
    fn web_and_api_services_have_processing_models() {
        for service in [Service::web(), Service::api()] {
            match service {
                Service::Request { response_bytes, processing } => {
                    assert!(response_bytes > 0);
                    assert!(processing.nominal_ms() > 0.0);
                }
                _ => panic!("expected request service"),
            }
        }
    }
}
