//! Discrete-event simulated network substrate for the MopEye reproduction.
//!
//! The original MopEye runs on Android phones and measures real Internet
//! paths. This crate replaces that environment with a deterministic,
//! virtual-time model so that every experiment in the paper can be
//! regenerated on a laptop:
//!
//! * [`time`] / [`clock`] — a nanosecond-resolution virtual clock,
//! * [`queue`] — a stable-ordered event queue for discrete-event loops,
//! * [`latency`] — latency models (constant, uniform, normal, log-normal)
//!   used for path RTTs, first-hop delays and system-call costs,
//! * [`profile`] — access-network profiles (WiFi, LTE, 3G, 2G) and ISP
//!   profiles with calibrated RTT/DNS distributions,
//! * [`server`] — remote application servers with per-destination path
//!   latency and simple service behaviours,
//! * [`dnssrv`] — a resolver with configurable records and latency,
//! * [`network`] — [`network::SimNetwork`], the path-level model used by the
//!   relay engine and the baselines,
//! * [`tap`] — a wire tap that plays the role tcpdump plays in the paper
//!   (ground-truth reference timestamps),
//! * [`socket`] — a `java.nio`-like socket and selector layer with blocking
//!   and non-blocking modes plus `protect()` cost modelling,
//! * [`pool`] — a free-list buffer pool so the packet datapath recycles
//!   buffers instead of allocating per packet,
//! * [`cost`] — calibrated cost models for the system calls and scheduler
//!   effects the paper's optimisations target.

pub mod clock;
pub mod cost;
pub mod dnssrv;
pub mod latency;
pub mod network;
pub mod pool;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod server;
pub mod socket;
pub mod tap;
pub mod time;

pub use clock::SimClock;
pub use cost::{CostModel, CpuLedger};
pub use dnssrv::DnsServerConfig;
pub use latency::LatencyModel;
pub use network::{ConnectOutcome, DataExchange, DnsOutcome, SimNetwork, SimNetworkBuilder};
pub use pool::{BufferPool, PoolStats};
pub use profile::{AccessProfile, IspProfile, NetworkType};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use server::{ServerConfig, Service};
pub use socket::{Selector, SelectorEvent, SocketId, SocketMode, SocketSet, SocketState};
pub use tap::{TapDirection, TapRecord, WireTap};
pub use time::{SimDuration, SimTime};
