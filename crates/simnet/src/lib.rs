//! Discrete-event simulated network substrate for the MopEye reproduction.
//!
//! The original MopEye runs on Android phones and measures real Internet
//! paths. This crate replaces that environment with a deterministic,
//! virtual-time model so that every experiment in the paper can be
//! regenerated on a laptop:
//!
//! * [`time`] / [`clock`] — a nanosecond-resolution virtual clock,
//! * [`queue`] — a stable-ordered binary-heap event queue (the reference
//!   scheduler implementation),
//! * [`wheel`] — a hierarchical timing wheel with O(1) schedule/cancel and
//!   the same deterministic FIFO tie-order as the heap,
//! * [`scheduler`] — [`scheduler::TimerScheduler`], the pluggable facade the
//!   engine's event loop drains (wheel by default, heap for reference),
//! * [`latency`] — latency models (constant, uniform, normal, log-normal)
//!   used for path RTTs, first-hop delays and system-call costs,
//! * [`profile`] — access-network profiles (WiFi, LTE, 3G, 2G) and ISP
//!   profiles with calibrated RTT/DNS distributions,
//! * [`server`] — remote application servers with per-destination path
//!   latency and simple service behaviours,
//! * [`dnssrv`] — a resolver with configurable records and latency,
//! * [`fault`] — per-segment drop / reorder / duplicate decisions for the
//!   relayed data path, drawn from flow-keyed fault streams,
//! * [`network`] — [`network::SimNetwork`], the path-level model used by the
//!   relay engine and the baselines,
//! * [`tap`] — a wire tap that plays the role tcpdump plays in the paper
//!   (ground-truth reference timestamps),
//! * [`socket`] — a `java.nio`-like socket and selector layer with blocking
//!   and non-blocking modes plus `protect()` cost modelling,
//! * [`pool`] — a free-list buffer pool so the packet datapath recycles
//!   buffers instead of allocating per packet,
//! * [`profiling`] — wall-clock phase timers and counters for the host-side
//!   loop, feature-gated (`profiling`) to zero cost when off,
//! * [`spsc`] — bounded single-producer/single-consumer queues (plus the
//!   credit gate for batch backpressure) connecting the sharded fleet
//!   engine's dispatcher, workers and measurement sink,
//! * [`affinity`] — best-effort CPU pinning behind a portable facade, used
//!   by the fleet engine's shard-placement knobs,
//! * [`cost`] — calibrated cost models for the system calls and scheduler
//!   effects the paper's optimisations target.
//!
//! # Examples
//!
//! Deterministic sampling against a simulated path:
//!
//! ```
//! use mop_simnet::{SimNetwork, SimTime};
//! use mop_packet::{Endpoint, FourTuple};
//!
//! let mut net = SimNetwork::builder().seed(7).with_table2_destinations().build();
//! let flow = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40_000), Endpoint::v4(216, 58, 221, 132, 443));
//! let outcome = net.connect(flow, SimTime::from_millis(10));
//! assert!(outcome.success);
//! // The wire tap saw the same handshake tcpdump would have seen.
//! assert_eq!(net.tap().handshake_rtt(flow).unwrap(), outcome.completed_at - outcome.syn_sent);
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod clock;
pub mod cost;
pub mod dnssrv;
pub mod fault;
pub mod latency;
pub mod network;
pub mod pool;
pub mod profile;
pub mod profiling;
pub mod queue;
pub mod rng;
pub mod scheduler;
pub mod server;
pub mod socket;
pub mod spsc;
pub mod tap;
pub mod time;
pub mod wheel;

pub use clock::SimClock;
pub use cost::{CostModel, CpuLedger};
pub use dnssrv::DnsServerConfig;
pub use fault::{FaultDecision, FaultPlan};
pub use latency::LatencyModel;
pub use network::{
    ConnectOutcome, DataExchange, DnsOutcome, NetKeying, SimNetwork, SimNetworkBuilder,
};
pub use pool::{BatchPool, BufferPool, PacketSlot, PoolStats, SlabBatch};
pub use profile::{AccessProfile, IspProfile, NetworkType};
pub use profiling::{PhaseStats, ProfileReport, Profiler};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use scheduler::{SchedulerKind, TimerScheduler};
pub use server::{ServerConfig, Service};
pub use socket::{Selector, SelectorEvent, SocketId, SocketMode, SocketSet, SocketState};
pub use spsc::{spsc_channel, Backoff, CreditGate, SpscReceiver, SpscSendError, SpscSender};
pub use tap::{TapDirection, TapRecord, WireTap};
pub use time::{SimDuration, SimTime};
pub use wheel::{TimerHandle, TimingWheel, WheelSnapshot};
