//! A stable-ordered event queue for discrete-event loops.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: fire time, insertion sequence (for stable ordering
/// of simultaneous events) and the payload.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first,
        // breaking ties by insertion order.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO ordering for
/// events scheduled at the same instant.
///
/// The engine, the baselines and the workload generators each run their own
/// loop over an `EventQueue` of their own event type.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Pops the earliest event only if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= until {
            self.pop()
        } else {
            None
        }
    }

    /// The fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The earliest pending event and its fire time, without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for loop-progress assertions).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Resets the queue to its just-constructed state, keeping the heap's
    /// allocation: pending events are dropped and the sequence and schedule
    /// accounting restart — the clear-don't-drop reuse path, mirroring
    /// [`crate::wheel::TimingWheel::reset`].
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.scheduled_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(50), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(20)), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop_until(SimTime::from_millis(20)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(50)));
    }

    #[test]
    fn bookkeeping() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO + SimDuration::from_millis(1), 7);
        assert_eq!(q.scheduled_total(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }
}
