//! The simulated DNS resolver.
//!
//! DNS is the one UDP protocol MopEye measures (§2.4): the RTT is the gap
//! between the query leaving the handset and the response arriving. The
//! resolver here is the ISP's local resolver, so its latency comes from the
//! ISP / access-network profile rather than from the authoritative servers.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use crate::latency::LatencyModel;
use crate::rng::SimRng;

/// Configuration of the ISP resolver the handset uses.
#[derive(Debug, Clone)]
pub struct DnsServerConfig {
    /// The resolver's own address (what the handset sends queries to).
    pub addr: IpAddr,
    /// RTT distribution from the handset to the resolver, including
    /// resolver processing. Usually taken from the ISP profile.
    pub latency: LatencyModel,
    /// Static records: domain (lower-case) to addresses.
    records: HashMap<String, Vec<Ipv4Addr>>,
    /// Probability that a query times out (no response).
    pub loss: f64,
}

/// The outcome of a simulated resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsAnswer {
    /// The name resolved to these addresses.
    Addresses(Vec<Ipv4Addr>),
    /// The resolver answered NXDOMAIN.
    NxDomain,
    /// The query or response was lost; the client sees a timeout.
    Timeout,
}

impl DnsServerConfig {
    /// Creates a resolver at the conventional gateway address with the given
    /// latency model.
    pub fn new(latency: LatencyModel) -> Self {
        Self {
            addr: IpAddr::V4(Ipv4Addr::new(192, 168, 1, 1)),
            latency,
            records: HashMap::new(),
            loss: 0.0,
        }
    }

    /// Sets the resolver address.
    pub fn with_addr(mut self, addr: IpAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Sets the query-loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Registers a record mapping `domain` to `addrs`.
    pub fn add_record(&mut self, domain: &str, addrs: Vec<Ipv4Addr>) {
        self.records.insert(domain.to_ascii_lowercase(), addrs);
    }

    /// Registers records for every domain of a server config.
    pub fn add_server(&mut self, server: &crate::server::ServerConfig) {
        let v4: Vec<Ipv4Addr> = server
            .addrs
            .iter()
            .filter_map(|a| match a {
                IpAddr::V4(v4) => Some(*v4),
                IpAddr::V6(_) => None,
            })
            .collect();
        for domain in &server.domains {
            self.records.insert(domain.clone(), v4.clone());
        }
    }

    /// Number of registered records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Looks up `domain`, returning the answer and sampling whether the
    /// exchange is lost.
    pub fn resolve(&self, domain: &str, rng: &mut SimRng) -> DnsAnswer {
        if rng.chance(self.loss) {
            return DnsAnswer::Timeout;
        }
        match self.records.get(&domain.to_ascii_lowercase()) {
            Some(addrs) if !addrs.is_empty() => DnsAnswer::Addresses(addrs.clone()),
            _ => DnsAnswer::NxDomain,
        }
    }

    /// Samples the query/response round-trip latency in milliseconds.
    pub fn sample_rtt_ms(&self, rng: &mut SimRng) -> f64 {
        self.latency.sample_ms(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, Service};

    fn resolver() -> DnsServerConfig {
        let mut dns = DnsServerConfig::new(LatencyModel::constant(42.0));
        dns.add_record("graph.facebook.com", vec![Ipv4Addr::new(31, 13, 79, 251)]);
        dns
    }

    #[test]
    fn resolves_known_names_case_insensitively() {
        let dns = resolver();
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(
            dns.resolve("GRAPH.FACEBOOK.COM", &mut rng),
            DnsAnswer::Addresses(vec![Ipv4Addr::new(31, 13, 79, 251)])
        );
        assert_eq!(dns.resolve("nope.example", &mut rng), DnsAnswer::NxDomain);
        assert_eq!(dns.record_count(), 1);
    }

    #[test]
    fn loss_produces_timeouts() {
        let dns = resolver().with_loss(1.0);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(dns.resolve("graph.facebook.com", &mut rng), DnsAnswer::Timeout);
        // Clamp out-of-range probabilities.
        assert_eq!(resolver().with_loss(7.0).loss, 1.0);
    }

    #[test]
    fn add_server_registers_all_domains() {
        let mut dns = DnsServerConfig::new(LatencyModel::constant(10.0));
        let server = ServerConfig::new(
            "Google",
            "216.58.221.132".parse().unwrap(),
            LatencyModel::constant(4.0),
            Service::web(),
        )
        .with_domain("www.google.com")
        .with_domain("youtube.com");
        dns.add_server(&server);
        let mut rng = SimRng::seed_from_u64(3);
        assert!(matches!(dns.resolve("youtube.com", &mut rng), DnsAnswer::Addresses(_)));
        assert!(matches!(dns.resolve("www.google.com", &mut rng), DnsAnswer::Addresses(_)));
    }

    #[test]
    fn latency_sampling_uses_model() {
        let dns = resolver();
        let mut rng = SimRng::seed_from_u64(9);
        assert_eq!(dns.sample_rtt_ms(&mut rng), 42.0);
    }
}
