//! A `java.nio`-like socket and selector layer over the simulated network.
//!
//! MopEye relays app traffic over regular TCP sockets because raw sockets
//! need root (§2.3). It drives them through non-blocking `SocketChannel`s and
//! a `Selector`, except for `connect()` which it runs in blocking mode inside
//! a temporary thread to get clean RTT timestamps (§2.4). This module mirrors
//! that API surface: sockets with blocking/non-blocking modes, a readiness
//! selector with a `wakeup()` hook, and the `protect()` bookkeeping whose
//! cost §3.5.2 eliminates.

use std::collections::{HashMap, VecDeque};

use mop_packet::{Endpoint, FourTuple};

use crate::network::{ConnectOutcome, SimNetwork};
use crate::pool::BufferPool;
use crate::time::SimTime;

/// Identifier of a socket within a [`SocketSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(u64);

impl std::fmt::Display for SocketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sock#{}", self.0)
    }
}

/// Blocking behaviour of a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketMode {
    /// Calls logically block the owning (simulated) thread until complete.
    Blocking,
    /// Calls return immediately; completion is observed via the selector.
    NonBlocking,
}

/// Lifecycle state of a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketState {
    /// Created but not yet connected.
    Unconnected,
    /// A handshake is in flight; it completes at the embedded time.
    Connecting {
        /// When the SYN/ACK (or failure) arrives.
        ready_at: SimTime,
    },
    /// Connected and usable.
    Connected,
    /// The connect attempt failed.
    ConnectFailed {
        /// True if the peer refused (RST); false for a timeout.
        refused: bool,
    },
    /// We have sent our FIN (half-close); reads may still complete.
    HalfClosed,
    /// Fully closed.
    Closed,
}

#[derive(Debug)]
struct SocketEntry {
    mode: SocketMode,
    state: SocketState,
    local: Endpoint,
    remote: Option<Endpoint>,
    protected: bool,
    connect_outcome: Option<ConnectOutcome>,
    /// Response chunks scheduled to arrive: (arrival time, bytes).
    pending_reads: VecDeque<(SimTime, usize)>,
    /// Bytes buffered for writing (the engine's socket write buffer).
    write_buffered: usize,
    bytes_read: usize,
    bytes_written: usize,
}

/// A set of simulated sockets sharing an ephemeral port space.
#[derive(Debug, Default)]
pub struct SocketSet {
    sockets: HashMap<u64, SocketEntry>,
    next_id: u64,
    next_port: u16,
    /// True once `addDisallowedApplication()` has been applied, making
    /// per-socket `protect()` unnecessary (§3.5.2).
    vpn_disallowed_application: bool,
    /// Pool backing [`SocketSet::take_readable_pooled`], so socket reads hand
    /// out recycled buffers instead of allocating per read.
    read_pool: BufferPool,
}

impl SocketSet {
    /// Creates an empty socket set.
    pub fn new() -> Self {
        Self {
            sockets: HashMap::new(),
            next_id: 0,
            next_port: 42000,
            vpn_disallowed_application: false,
            read_pool: BufferPool::new(64 * 1024),
        }
    }

    /// Resets the set to its just-constructed state while keeping the big
    /// allocations: the socket table keeps its capacity, the read-buffer
    /// pool keeps its recycled buffers (its per-run counters restart, the
    /// resident-bytes gauge survives), and the id/port sequences restart so
    /// a reused set hands out exactly the ids a fresh one would. The
    /// `addDisallowedApplication` flag is configuration, not run state, and
    /// is kept.
    pub fn reset(&mut self) {
        self.sockets.clear();
        self.next_id = 0;
        self.next_port = 42000;
        self.read_pool.reset_stats();
    }

    /// Marks the measuring app as excluded from the VPN
    /// (`addDisallowedApplication`), so individual sockets no longer need
    /// `protect()` calls.
    pub fn set_disallowed_application(&mut self, enabled: bool) {
        self.vpn_disallowed_application = enabled;
    }

    /// Returns true if the whole application bypasses the VPN.
    pub fn disallowed_application(&self) -> bool {
        self.vpn_disallowed_application
    }

    /// Creates a socket with the given mode, bound to a fresh local port.
    pub fn create(&mut self, mode: SocketMode) -> SocketId {
        let port = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(42000);
        self.create_bound(mode, Endpoint::v4(10, 0, 0, 2, port))
    }

    /// Creates a socket bound to a caller-chosen local endpoint.
    ///
    /// The flow-keyed fleet engine binds each external socket to its app
    /// flow's source endpoint, so the external connection's four-tuple is a
    /// pure function of the flow rather than of socket-creation order —
    /// one of the invariants behind shard-count-independent determinism.
    pub fn create_bound(&mut self, mode: SocketMode, local: Endpoint) -> SocketId {
        let id = self.next_id;
        self.next_id += 1;
        self.sockets.insert(
            id,
            SocketEntry {
                mode,
                state: SocketState::Unconnected,
                local,
                remote: None,
                protected: false,
                connect_outcome: None,
                pending_reads: VecDeque::new(),
                write_buffered: 0,
                bytes_read: 0,
                bytes_written: 0,
            },
        );
        SocketId(id)
    }

    fn entry(&self, id: SocketId) -> &SocketEntry {
        self.sockets.get(&id.0).expect("unknown socket id")
    }

    fn entry_mut(&mut self, id: SocketId) -> &mut SocketEntry {
        self.sockets.get_mut(&id.0).expect("unknown socket id")
    }

    /// Returns the socket's mode.
    pub fn mode(&self, id: SocketId) -> SocketMode {
        self.entry(id).mode
    }

    /// Switches the socket's blocking mode (MopEye flips a socket to blocking
    /// for the `connect()` and back afterwards).
    pub fn set_mode(&mut self, id: SocketId, mode: SocketMode) {
        self.entry_mut(id).mode = mode;
    }

    /// Returns the socket's state.
    pub fn state(&self, id: SocketId) -> SocketState {
        self.entry(id).state
    }

    /// Returns the socket's local endpoint.
    pub fn local(&self, id: SocketId) -> Endpoint {
        self.entry(id).local
    }

    /// Returns the socket's remote endpoint if connected or connecting.
    pub fn remote(&self, id: SocketId) -> Option<Endpoint> {
        self.entry(id).remote
    }

    /// The connection four-tuple (local, remote), if a connect was issued.
    pub fn flow(&self, id: SocketId) -> Option<FourTuple> {
        let e = self.entry(id);
        Some(FourTuple::new(e.local, e.remote?))
    }

    /// Whether `protect()` has been called (or is unnecessary).
    pub fn is_protected(&self, id: SocketId) -> bool {
        self.vpn_disallowed_application || self.entry(id).protected
    }

    /// Marks the socket as protected from the VPN loop.
    pub fn protect(&mut self, id: SocketId) {
        self.entry_mut(id).protected = true;
    }

    /// Starts a TCP connect to `dst` with the SYN leaving at `at`.
    ///
    /// Returns the network outcome; the socket transitions to `Connecting`
    /// and matures at `outcome.completed_at` (observed via
    /// [`SocketSet::poll_connect`] or the selector).
    ///
    /// # Panics
    ///
    /// Panics if the socket is not in the `Unconnected` state.
    pub fn connect(
        &mut self,
        net: &mut SimNetwork,
        id: SocketId,
        dst: Endpoint,
        at: SimTime,
    ) -> ConnectOutcome {
        let local = self.entry(id).local;
        assert!(
            matches!(self.entry(id).state, SocketState::Unconnected),
            "connect on a socket that is not unconnected"
        );
        let outcome = net.connect(FourTuple::new(local, dst), at);
        let e = self.entry_mut(id);
        e.remote = Some(dst);
        e.connect_outcome = Some(outcome);
        e.state = SocketState::Connecting { ready_at: outcome.completed_at };
        outcome
    }

    /// Advances the socket state if its in-flight connect has completed by
    /// `now`. Returns the current state.
    pub fn poll_connect(&mut self, id: SocketId, now: SimTime) -> SocketState {
        let e = self.entry_mut(id);
        if let SocketState::Connecting { ready_at } = e.state {
            if now >= ready_at {
                let outcome = e.connect_outcome.expect("connecting socket has an outcome");
                e.state = if outcome.success {
                    SocketState::Connected
                } else {
                    SocketState::ConnectFailed { refused: outcome.refused }
                };
            }
        }
        e.state
    }

    /// The recorded connect outcome, if a connect was issued.
    pub fn connect_outcome(&self, id: SocketId) -> Option<ConnectOutcome> {
        self.entry(id).connect_outcome
    }

    /// Buffers `bytes` for writing (MopEye's socket write buffer, filled from
    /// tunnel data packets).
    pub fn buffer_write(&mut self, id: SocketId, bytes: usize) {
        self.entry_mut(id).write_buffered += bytes;
    }

    /// Bytes currently buffered for writing.
    pub fn write_buffered(&self, id: SocketId) -> usize {
        self.entry(id).write_buffered
    }

    /// Flushes the write buffer to the network at `at`, performing a
    /// request/response exchange with the destination. Response chunks are
    /// scheduled as pending reads. Returns the number of bytes flushed.
    ///
    /// # Panics
    ///
    /// Panics if the socket is not connected.
    pub fn flush_writes(&mut self, net: &mut SimNetwork, id: SocketId, at: SimTime) -> usize {
        let flow = self.flow(id).expect("flushing an unconnected socket");
        let e = self.entry_mut(id);
        assert!(
            matches!(e.state, SocketState::Connected | SocketState::HalfClosed),
            "flush on a socket that is not connected"
        );
        let bytes = e.write_buffered;
        if bytes == 0 {
            return 0;
        }
        e.write_buffered = 0;
        e.bytes_written += bytes;
        let exchange = net.request_response(flow, bytes, at);
        let e = self.entry_mut(id);
        for chunk in exchange.response_chunks {
            e.pending_reads.push_back(chunk);
        }
        bytes
    }

    /// Schedules raw inbound data on the socket (used by bulk/download flows
    /// that bypass `flush_writes`).
    pub fn schedule_read(&mut self, id: SocketId, at: SimTime, bytes: usize) {
        self.entry_mut(id).pending_reads.push_back((at, bytes));
    }

    /// Total bytes whose arrival time has passed and can be read at `now`.
    pub fn readable_bytes(&self, id: SocketId, now: SimTime) -> usize {
        self.entry(id).pending_reads.iter().filter(|(t, _)| *t <= now).map(|(_, b)| *b).sum()
    }

    /// Consumes and returns all chunks readable at `now`.
    pub fn take_readable(&mut self, id: SocketId, now: SimTime) -> Vec<(SimTime, usize)> {
        let e = self.entry_mut(id);
        let mut out = Vec::new();
        while let Some((t, b)) = e.pending_reads.front().copied() {
            if t <= now {
                e.pending_reads.pop_front();
                e.bytes_read += b;
                out.push((t, b));
            } else {
                break;
            }
        }
        out
    }

    /// Consumes all chunks readable at `now` and materialises their bytes
    /// into a pooled buffer (filled with the `0x5a` response filler the
    /// simulated servers send). Returns an empty buffer if nothing is
    /// readable. Hand the buffer back with [`SocketSet::recycle_buffer`] once
    /// the relay has segmented it — in steady state no allocation happens.
    pub fn take_readable_pooled(&mut self, id: SocketId, now: SimTime) -> Vec<u8> {
        let e = self.sockets.get_mut(&id.0).expect("unknown socket id");
        let mut total = 0usize;
        while let Some((t, b)) = e.pending_reads.front().copied() {
            if t <= now {
                e.pending_reads.pop_front();
                e.bytes_read += b;
                total += b;
            } else {
                break;
            }
        }
        let mut buf = self.read_pool.get();
        buf.resize(total, 0x5a);
        buf
    }

    /// Returns a buffer obtained from [`SocketSet::take_readable_pooled`] to
    /// the read pool.
    pub fn recycle_buffer(&mut self, buf: Vec<u8>) {
        self.read_pool.put(buf);
    }

    /// Behaviour counters of the pooled read-buffer free list.
    pub fn read_pool_stats(&self) -> crate::pool::PoolStats {
        self.read_pool.stats()
    }

    /// The earliest time at which more data becomes readable, if any.
    pub fn next_read_ready_at(&self, id: SocketId) -> Option<SimTime> {
        self.entry(id).pending_reads.front().map(|(t, _)| *t)
    }

    /// True if all scheduled inbound data has been consumed.
    pub fn read_exhausted(&self, id: SocketId) -> bool {
        self.entry(id).pending_reads.is_empty()
    }

    /// Half-closes the socket (our FIN sent).
    pub fn half_close(&mut self, id: SocketId) {
        let e = self.entry_mut(id);
        if matches!(e.state, SocketState::Connected) {
            e.state = SocketState::HalfClosed;
        }
    }

    /// Fully closes the socket.
    pub fn close(&mut self, id: SocketId) {
        let e = self.entry_mut(id);
        e.state = SocketState::Closed;
        e.pending_reads.clear();
        e.write_buffered = 0;
    }

    /// Lifetime byte counters (read, written) for resource accounting.
    pub fn byte_counters(&self, id: SocketId) -> (usize, usize) {
        let e = self.entry(id);
        (e.bytes_read, e.bytes_written)
    }

    /// Number of sockets ever created.
    pub fn created_count(&self) -> u64 {
        self.next_id
    }

    /// Number of sockets not yet closed.
    pub fn open_count(&self) -> usize {
        self.sockets.values().filter(|e| !matches!(e.state, SocketState::Closed)).count()
    }
}

/// A readiness event reported by the [`Selector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectorEvent {
    /// The socket the event is about.
    pub socket: SocketId,
    /// The readiness kind.
    pub kind: SelectorEventKind,
}

/// Kinds of selector readiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorEventKind {
    /// A non-blocking connect has completed (successfully or not).
    Connectable,
    /// Data is available to read.
    Readable,
}

/// A readiness selector over registered sockets, with a `wakeup()` hook used
/// by TunReader to break MainWorker out of `select()` when tunnel packets
/// arrive (§3.2).
///
/// The interest set is an insertion-ordered slot vector with a position
/// index: `register` and `deregister` are O(1), and `deregister` leaves a
/// tombstone that iteration skips, so `select` still visits live sockets in
/// exact registration order (re-registering after a deregister moves the
/// socket to the back, just as the plain-`Vec` implementation did). Slots
/// are compacted in order once tombstones outnumber live entries, keeping
/// iteration O(live). The earlier `Vec::contains`/`Vec::retain` form made
/// both calls O(live sockets) — O(n²) across a run, and the dominant
/// host-side cost at high concurrency (134M elements scanned in a 16k-flow
/// single-shard rush hour).
#[derive(Debug, Default)]
pub struct Selector {
    /// Insertion-ordered slots; `None` marks a deregistered (tombstoned)
    /// entry that iteration skips.
    registered: Vec<Option<SocketId>>,
    /// Live sockets only; maps each to its slot in `registered`.
    positions: HashMap<SocketId, usize>,
    tombstones: usize,
    wakeup_pending: bool,
    wakeup_count: u64,
    select_count: u64,
    /// Gated instrumentation (written only under the `profiling` feature):
    /// slots touched by `register`/`deregister` beyond the O(1) index
    /// probe — i.e. compaction traffic. Stays near zero now that the
    /// interest set is position-indexed; the counter is kept so the bench
    /// table shows the former O(n²) hot spot staying fixed.
    scan_elems: u64,
}

impl Selector {
    /// Creates an empty selector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the selector to its just-constructed state, keeping the
    /// interest-set allocation (the resident engine's clear-don't-drop
    /// reuse path).
    pub fn reset(&mut self) {
        self.registered.clear();
        self.positions.clear();
        self.tombstones = 0;
        self.wakeup_pending = false;
        self.wakeup_count = 0;
        self.select_count = 0;
        self.scan_elems = 0;
    }

    /// The selector's gated instrumentation, as `(counter name, value)`
    /// pairs — all zero unless the `profiling` feature is on.
    pub fn profile_counters(&self) -> [(&'static str, u64); 1] {
        [("selector.scan_elems", self.scan_elems)]
    }

    /// Registers a socket for readiness notification.
    pub fn register(&mut self, id: SocketId) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.positions.entry(id) {
            slot.insert(self.registered.len());
            self.registered.push(Some(id));
        }
    }

    /// Removes a socket from the interest set.
    pub fn deregister(&mut self, id: SocketId) {
        if let Some(pos) = self.positions.remove(&id) {
            self.registered[pos] = None;
            self.tombstones += 1;
            if self.tombstones > self.positions.len() {
                self.compact();
            }
        }
    }

    /// Drops tombstoned slots, preserving the relative order of live
    /// entries, and rebuilds the position index.
    fn compact(&mut self) {
        #[cfg(feature = "profiling")]
        {
            self.scan_elems += self.registered.len() as u64;
        }
        self.registered.retain(Option::is_some);
        for (pos, slot) in self.registered.iter().enumerate() {
            let id = slot.expect("compaction keeps only live slots");
            self.positions.insert(id, pos);
        }
        self.tombstones = 0;
    }

    /// Number of registered sockets.
    pub fn registered_count(&self) -> usize {
        self.positions.len()
    }

    /// Signals the selector to return immediately from the next `select`
    /// (the `Selector.wakeup()` call TunReader issues, §3.2).
    pub fn wakeup(&mut self) {
        self.wakeup_pending = true;
        self.wakeup_count += 1;
    }

    /// Returns and clears the pending-wakeup flag.
    pub fn take_wakeup(&mut self) -> bool {
        std::mem::take(&mut self.wakeup_pending)
    }

    /// Total wakeups issued (for overhead accounting).
    pub fn wakeup_count(&self) -> u64 {
        self.wakeup_count
    }

    /// Total select passes performed.
    pub fn select_count(&self) -> u64 {
        self.select_count
    }

    /// Collects readiness events for registered sockets as of `now`,
    /// advancing in-flight connects that have matured.
    pub fn select(&mut self, sockets: &mut SocketSet, now: SimTime) -> Vec<SelectorEvent> {
        self.select_count += 1;
        let mut events = Vec::new();
        for id in self.registered.iter().filter_map(|slot| *slot) {
            match sockets.state(id) {
                SocketState::Connecting { ready_at } if ready_at <= now => {
                    sockets.poll_connect(id, now);
                    events.push(SelectorEvent { socket: id, kind: SelectorEventKind::Connectable });
                }
                SocketState::Connected | SocketState::HalfClosed
                    if sockets.readable_bytes(id, now) > 0 =>
                {
                    events.push(SelectorEvent { socket: id, kind: SelectorEventKind::Readable });
                }
                _ => {}
            }
        }
        events
    }

    /// The earliest future time at which any registered socket will become
    /// ready, used by the event loop to schedule its next wake-up.
    pub fn next_ready_at(&self, sockets: &SocketSet, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for id in self.registered.iter().filter_map(|slot| *slot) {
            if let SocketState::Connecting { ready_at } = sockets.state(id) {
                consider(ready_at);
            }
            if let Some(t) = sockets.next_read_ready_at(id) {
                consider(t);
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimNetwork;

    fn net() -> SimNetwork {
        SimNetwork::builder().seed(11).with_table2_destinations().build()
    }

    fn google() -> Endpoint {
        Endpoint::v4(216, 58, 221, 132, 443)
    }

    #[test]
    fn connect_then_poll_transitions_states() {
        let mut net = net();
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::Blocking);
        assert_eq!(set.state(id), SocketState::Unconnected);
        let outcome = set.connect(&mut net, id, google(), SimTime::from_millis(10));
        assert!(matches!(set.state(id), SocketState::Connecting { .. }));
        // Too early: still connecting.
        assert!(matches!(set.poll_connect(id, SimTime::from_millis(10)), SocketState::Connecting { .. }));
        assert_eq!(set.poll_connect(id, outcome.completed_at), SocketState::Connected);
        assert_eq!(set.remote(id), Some(google()));
        assert_eq!(set.connect_outcome(id).unwrap(), outcome);
        assert_eq!(set.created_count(), 1);
        assert_eq!(set.open_count(), 1);
    }

    #[test]
    fn write_flush_schedules_response_reads() {
        let mut net = net();
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::NonBlocking);
        let outcome = set.connect(&mut net, id, google(), SimTime::ZERO);
        set.poll_connect(id, outcome.completed_at);
        set.buffer_write(id, 400);
        assert_eq!(set.write_buffered(id), 400);
        let flushed = set.flush_writes(&mut net, id, outcome.completed_at);
        assert_eq!(flushed, 400);
        assert_eq!(set.write_buffered(id), 0);
        let ready_at = set.next_read_ready_at(id).unwrap();
        assert_eq!(set.readable_bytes(id, outcome.completed_at), 0);
        assert!(set.readable_bytes(id, ready_at) > 0);
        let chunks = set.take_readable(id, SimTime::from_secs(120));
        let total: usize = chunks.iter().map(|(_, b)| *b).sum();
        assert_eq!(total, 32 * 1024);
        assert!(set.read_exhausted(id));
        assert_eq!(set.byte_counters(id), (32 * 1024, 400));
    }

    #[test]
    fn pooled_reads_reuse_buffers_and_count_bytes() {
        let mut net = net();
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::NonBlocking);
        let outcome = set.connect(&mut net, id, google(), SimTime::ZERO);
        set.poll_connect(id, outcome.completed_at);
        set.buffer_write(id, 400);
        set.flush_writes(&mut net, id, outcome.completed_at);
        let buf = set.take_readable_pooled(id, SimTime::from_secs(120));
        assert_eq!(buf.len(), 32 * 1024);
        assert!(buf.iter().all(|b| *b == 0x5a));
        assert!(set.read_exhausted(id));
        assert_eq!(set.byte_counters(id), (32 * 1024, 400));
        set.recycle_buffer(buf);
        // A second read round trips through the free list, not the allocator.
        set.schedule_read(id, SimTime::from_secs(121), 100);
        let buf = set.take_readable_pooled(id, SimTime::from_secs(121));
        assert_eq!(buf.len(), 100);
        set.recycle_buffer(buf);
        let stats = set.read_pool_stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.recycled, 2);
        // An idle socket yields an empty pooled buffer.
        let empty = set.take_readable_pooled(id, SimTime::from_secs(122));
        assert!(empty.is_empty());
        set.recycle_buffer(empty);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let mut net = net();
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::NonBlocking);
        let outcome = set.connect(&mut net, id, google(), SimTime::ZERO);
        set.poll_connect(id, outcome.completed_at);
        assert_eq!(set.flush_writes(&mut net, id, outcome.completed_at), 0);
    }

    #[test]
    fn protect_and_disallowed_application() {
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::NonBlocking);
        assert!(!set.is_protected(id));
        set.protect(id);
        assert!(set.is_protected(id));
        let other = set.create(SocketMode::NonBlocking);
        assert!(!set.is_protected(other));
        set.set_disallowed_application(true);
        assert!(set.is_protected(other));
        assert!(set.disallowed_application());
    }

    #[test]
    fn selector_reports_connectable_and_readable() {
        let mut net = net();
        let mut set = SocketSet::new();
        let mut sel = Selector::new();
        let id = set.create(SocketMode::NonBlocking);
        sel.register(id);
        sel.register(id); // Duplicate registration is idempotent.
        assert_eq!(sel.registered_count(), 1);
        let outcome = set.connect(&mut net, id, google(), SimTime::ZERO);
        assert!(sel.select(&mut set, SimTime::ZERO).is_empty());
        assert_eq!(sel.next_ready_at(&set, SimTime::ZERO), Some(outcome.completed_at));
        let events = sel.select(&mut set, outcome.completed_at);
        assert_eq!(events, vec![SelectorEvent { socket: id, kind: SelectorEventKind::Connectable }]);
        set.buffer_write(id, 100);
        set.flush_writes(&mut net, id, outcome.completed_at);
        let ready = set.next_read_ready_at(id).unwrap();
        let events = sel.select(&mut set, ready);
        assert_eq!(events, vec![SelectorEvent { socket: id, kind: SelectorEventKind::Readable }]);
        sel.deregister(id);
        assert!(sel.select(&mut set, ready).is_empty());
        assert!(sel.select_count() >= 4);
    }

    #[test]
    fn wakeup_flag_is_consumed_once() {
        let mut sel = Selector::new();
        assert!(!sel.take_wakeup());
        sel.wakeup();
        sel.wakeup();
        assert!(sel.take_wakeup());
        assert!(!sel.take_wakeup());
        assert_eq!(sel.wakeup_count(), 2);
    }

    #[test]
    fn mode_switching_and_close() {
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::NonBlocking);
        set.set_mode(id, SocketMode::Blocking);
        assert_eq!(set.mode(id), SocketMode::Blocking);
        set.schedule_read(id, SimTime::from_millis(5), 100);
        set.close(id);
        assert_eq!(set.state(id), SocketState::Closed);
        assert!(set.read_exhausted(id));
        assert_eq!(set.open_count(), 0);
    }

    #[test]
    fn half_close_only_applies_to_connected_sockets() {
        let mut net = net();
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::NonBlocking);
        set.half_close(id);
        assert_eq!(set.state(id), SocketState::Unconnected);
        let outcome = set.connect(&mut net, id, google(), SimTime::ZERO);
        set.poll_connect(id, outcome.completed_at);
        set.half_close(id);
        assert_eq!(set.state(id), SocketState::HalfClosed);
    }

    #[test]
    fn failed_connect_reports_refused() {
        use crate::latency::LatencyModel;
        use crate::server::{ServerConfig, Service};
        let mut net = SimNetwork::builder()
            .seed(2)
            .server(ServerConfig::new(
                "closed",
                "10.8.8.8".parse().unwrap(),
                LatencyModel::constant(15.0),
                Service::Refuse,
            ))
            .build();
        let mut set = SocketSet::new();
        let id = set.create(SocketMode::Blocking);
        let outcome = set.connect(&mut net, id, Endpoint::v4(10, 8, 8, 8, 80), SimTime::ZERO);
        assert!(!outcome.success);
        assert_eq!(
            set.poll_connect(id, outcome.completed_at),
            SocketState::ConnectFailed { refused: true }
        );
    }

    #[test]
    fn local_ports_are_unique() {
        let mut set = SocketSet::new();
        let a = set.create(SocketMode::Blocking);
        let b = set.create(SocketMode::Blocking);
        assert_ne!(set.local(a).port, set.local(b).port);
    }
}
