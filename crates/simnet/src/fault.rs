//! Data-path fault injection.
//!
//! The access profiles carry per-segment fault probabilities
//! ([`AccessProfile::data_loss`](crate::profile::AccessProfile::data_loss),
//! `reorder`, `duplicate`). This module turns those knobs into per-segment
//! decisions: given a flow's dedicated fault RNG stream, [`FaultPlan::decide`]
//! answers *deliver / drop / duplicate / delay* for one relayed data segment.
//! The relay consults it on the server→app path, which is what exercises the
//! retransmission, SACK and congestion-control machinery under test.
//!
//! Determinism: every flow draws from its own salted stream (seeded
//! `seed ^ flow.stable_hash() ^ FAULT_KEY_SALT` by [`crate::SimNetwork`]), so
//! the fault schedule of a flow is a pure function of `(seed, four-tuple)` —
//! independent of shard count, batch size, and every other flow. A clean plan
//! draws **nothing**, so fault-free profiles are bit-identical to builds that
//! predate fault injection.

use crate::profile::AccessProfile;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// The fate of one relayed data segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Deliver the segment normally.
    Deliver,
    /// Silently drop the segment; the receiver sees a sequence hole.
    Drop,
    /// Deliver the segment twice; the receiver sees a duplicate.
    Duplicate,
    /// Deliver the segment late by the given extra delay, so segments sent
    /// after it overtake it — reordering as the receiver observes it.
    Delay(SimDuration),
}

impl FaultDecision {
    /// True for the no-fault outcome.
    pub fn is_deliver(&self) -> bool {
        matches!(self, FaultDecision::Deliver)
    }
}

/// The fault probabilities of one access profile, in decision form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-segment drop probability.
    pub data_loss: f64,
    /// Per-segment reordering (late-delivery) probability.
    pub reorder: f64,
    /// Per-segment duplication probability.
    pub duplicate: f64,
}

impl FaultPlan {
    /// Extracts the data-path knobs of an access profile.
    pub fn from_profile(profile: &AccessProfile) -> Self {
        Self {
            data_loss: profile.data_loss,
            reorder: profile.reorder,
            duplicate: profile.duplicate,
        }
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_clean(&self) -> bool {
        self.data_loss <= 0.0 && self.reorder <= 0.0 && self.duplicate <= 0.0
    }

    /// Decides the fate of one segment.
    ///
    /// A clean plan returns [`FaultDecision::Deliver`] without touching the
    /// RNG. A dirty plan draws one uniform value and partitions it by the
    /// cumulative probabilities (drop, then duplicate, then reorder), plus a
    /// second draw for the reordering delay: `base_delay_ms × U(1, 3)` extra,
    /// where callers pass the profile's nominal access RTT so the late
    /// segment arrives behind several successors.
    pub fn decide(&self, rng: &mut SimRng, base_delay_ms: f64) -> FaultDecision {
        if self.is_clean() {
            return FaultDecision::Deliver;
        }
        let u = rng.unit();
        if u < self.data_loss {
            return FaultDecision::Drop;
        }
        if u < self.data_loss + self.duplicate {
            return FaultDecision::Duplicate;
        }
        if u < self.data_loss + self.duplicate + self.reorder {
            let extra_ms = base_delay_ms.max(1.0) * rng.uniform(1.0, 3.0);
            return FaultDecision::Delay(SimDuration::from_millis_f64(extra_ms));
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_never_touches_the_rng() {
        let plan = FaultPlan::from_profile(&AccessProfile::wifi());
        assert!(plan.is_clean());
        let mut rng = SimRng::seed_from_u64(5);
        let untouched = rng.clone();
        for _ in 0..100 {
            assert!(plan.decide(&mut rng, 10.0).is_deliver());
        }
        // The stream did not advance: the next draw matches a pristine clone.
        assert_eq!(rng.next_u64(), untouched.clone().next_u64());
    }

    #[test]
    fn dirty_plan_fires_each_fault_kind_at_roughly_its_rate() {
        let plan = FaultPlan::from_profile(&AccessProfile::lossy_3g());
        assert!(!plan.is_clean());
        let mut rng = SimRng::seed_from_u64(11);
        let (mut drops, mut dups, mut delays) = (0u32, 0u32, 0u32);
        let n = 20_000;
        for _ in 0..n {
            match plan.decide(&mut rng, 95.0) {
                FaultDecision::Drop => drops += 1,
                FaultDecision::Duplicate => dups += 1,
                FaultDecision::Delay(extra) => {
                    delays += 1;
                    let ms = extra.as_millis_f64();
                    assert!((95.0..=285.0).contains(&ms), "delay {ms} ms out of range");
                }
                FaultDecision::Deliver => {}
            }
        }
        let rate = |c: u32| f64::from(c) / f64::from(n);
        assert!((rate(drops) - plan.data_loss).abs() < 0.005, "drop rate {}", rate(drops));
        assert!((rate(dups) - plan.duplicate).abs() < 0.002, "dup rate {}", rate(dups));
        assert!((rate(delays) - plan.reorder).abs() < 0.004, "delay rate {}", rate(delays));
    }

    #[test]
    fn same_stream_same_schedule() {
        let plan = FaultPlan { data_loss: 0.1, reorder: 0.05, duplicate: 0.02 };
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..500 {
            assert_eq!(plan.decide(&mut a, 30.0), plan.decide(&mut b, 30.0));
        }
    }
}
