//! Access-network and ISP profiles.
//!
//! The crowdsourced analysis in §4.2 slices RTTs by network type (WiFi vs
//! cellular, and 2G/3G/4G within cellular) and by ISP. These profiles carry
//! the latency and bandwidth models for each slice, calibrated to the medians
//! the paper reports so that the regenerated figures have the same shape.


use crate::latency::LatencyModel;

/// The access-network technology a measurement was taken on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetworkType {
    /// 802.11 WiFi.
    Wifi,
    /// 4G LTE.
    Lte,
    /// 3G UMTS / HSPA(+).
    Umts3g,
    /// 2G GPRS / EDGE.
    Gprs2g,
}

impl NetworkType {
    /// All network types, in the order used by the figures.
    pub const ALL: [NetworkType; 4] =
        [NetworkType::Wifi, NetworkType::Lte, NetworkType::Umts3g, NetworkType::Gprs2g];

    /// Returns true for any cellular technology.
    pub fn is_cellular(self) -> bool {
        !matches!(self, NetworkType::Wifi)
    }

    /// A short label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            NetworkType::Wifi => "WiFi",
            NetworkType::Lte => "4G LTE",
            NetworkType::Umts3g => "3G UMTS/HSPA(P)",
            NetworkType::Gprs2g => "2G GPRS/EDGE",
        }
    }
}

impl std::fmt::Display for NetworkType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Latency and bandwidth characteristics of one access network.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessProfile {
    /// The technology this profile models.
    pub network_type: NetworkType,
    /// First-hop + core latency added to every path RTT (one way is half).
    pub access_rtt: LatencyModel,
    /// DNS RTT to the ISP's resolver.
    pub dns_rtt: LatencyModel,
    /// Downlink capacity in Mbit/s.
    pub downlink_mbps: f64,
    /// Uplink capacity in Mbit/s.
    pub uplink_mbps: f64,
    /// Packet-loss probability per packet on the access link.
    ///
    /// Applied to connection-establishment (SYN) exchanges, where it drives
    /// the exponential-backoff retry chain.
    pub loss: f64,
    /// Per-segment drop probability on the data path (server → app relay).
    ///
    /// Unlike [`loss`](Self::loss), which only gates connection
    /// establishment, this fires on established-flow data segments and is
    /// what exercises the relay's retransmission machinery.
    pub data_loss: f64,
    /// Probability that a data segment is delivered late enough to arrive
    /// after its successor — the reordering the SACK path recovers from.
    pub reorder: f64,
    /// Probability that a data segment is delivered twice.
    pub duplicate: f64,
}

impl AccessProfile {
    /// A WiFi profile calibrated to the paper's medians (app RTT 58 ms, DNS
    /// 33 ms) and the dedicated 25 Mbps test network used for Table 3.
    pub fn wifi() -> Self {
        Self {
            network_type: NetworkType::Wifi,
            access_rtt: LatencyModel::lognormal_with(2.5, 0.5, 0.8),
            dns_rtt: LatencyModel::lognormal_with(31.0, 0.55, 2.0),
            downlink_mbps: 25.0,
            uplink_mbps: 26.0,
            loss: 0.0005,
            data_loss: 0.0,
            reorder: 0.0,
            duplicate: 0.0,
        }
    }

    /// An LTE profile (app RTT median 76 ms, DNS 56 ms).
    pub fn lte() -> Self {
        Self {
            network_type: NetworkType::Lte,
            access_rtt: LatencyModel::lognormal_with(30.0, 0.5, 12.0),
            dns_rtt: LatencyModel::lognormal_with(44.0, 0.5, 12.0),
            downlink_mbps: 20.0,
            uplink_mbps: 10.0,
            loss: 0.001,
            data_loss: 0.0,
            reorder: 0.0,
            duplicate: 0.0,
        }
    }

    /// A 3G UMTS/HSPA profile (DNS median 105 ms).
    pub fn umts3g() -> Self {
        Self {
            network_type: NetworkType::Umts3g,
            access_rtt: LatencyModel::lognormal_with(75.0, 0.5, 25.0),
            dns_rtt: LatencyModel::lognormal_with(80.0, 0.5, 25.0),
            downlink_mbps: 4.0,
            uplink_mbps: 1.5,
            loss: 0.005,
            data_loss: 0.0,
            reorder: 0.0,
            duplicate: 0.0,
        }
    }

    /// A 2G GPRS/EDGE profile (DNS median 755 ms).
    pub fn gprs2g() -> Self {
        Self {
            network_type: NetworkType::Gprs2g,
            access_rtt: LatencyModel::lognormal_with(600.0, 0.45, 150.0),
            dns_rtt: LatencyModel::lognormal_with(605.0, 0.45, 150.0),
            downlink_mbps: 0.2,
            uplink_mbps: 0.1,
            loss: 0.02,
            data_loss: 0.0,
            reorder: 0.0,
            duplicate: 0.0,
        }
    }

    /// A degraded 3G profile: UMTS latencies with a longer tail, heavy loss
    /// and half the nominal bandwidth — the "lossy 3G" cell-edge network of
    /// the fleet scenario matrix.
    pub fn lossy_3g() -> Self {
        Self {
            network_type: NetworkType::Umts3g,
            access_rtt: LatencyModel::lognormal_with(95.0, 0.65, 25.0),
            dns_rtt: LatencyModel::lognormal_with(110.0, 0.65, 30.0),
            downlink_mbps: 2.0,
            uplink_mbps: 0.75,
            loss: 0.03,
            data_loss: 0.03,
            reorder: 0.01,
            duplicate: 0.002,
        }
    }

    /// The default profile for a given technology.
    pub fn for_type(network_type: NetworkType) -> Self {
        match network_type {
            NetworkType::Wifi => Self::wifi(),
            NetworkType::Lte => Self::lte(),
            NetworkType::Umts3g => Self::umts3g(),
            NetworkType::Gprs2g => Self::gprs2g(),
        }
    }

    /// Overrides the data-path fault rates — used by the loss-sweep bench
    /// and the CI loss matrix to dial specific rates onto a base profile.
    pub fn with_data_faults(mut self, data_loss: f64, reorder: f64, duplicate: f64) -> Self {
        self.data_loss = data_loss;
        self.reorder = reorder;
        self.duplicate = duplicate;
        self
    }

    /// True if any data-path fault knob is nonzero, i.e. a flow on this
    /// profile could ever see a dropped, reordered or duplicated segment.
    ///
    /// Engines consult this to leave the recovery machinery entirely unarmed
    /// on clean profiles, keeping zero-fault runs bit-identical to builds
    /// that predate fault injection.
    pub fn has_data_faults(&self) -> bool {
        self.data_loss > 0.0 || self.reorder > 0.0 || self.duplicate > 0.0
    }

    /// Transmission (serialisation) delay of `bytes` on the downlink.
    pub fn downlink_tx_delay_ms(&self, bytes: usize) -> f64 {
        tx_delay_ms(bytes, self.downlink_mbps)
    }

    /// Transmission (serialisation) delay of `bytes` on the uplink.
    pub fn uplink_tx_delay_ms(&self, bytes: usize) -> f64 {
        tx_delay_ms(bytes, self.uplink_mbps)
    }
}

fn tx_delay_ms(bytes: usize, mbps: f64) -> f64 {
    if mbps <= 0.0 {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / (mbps * 1_000.0)
}

/// A mobile ISP as seen in the dataset: a name, a country, an access profile
/// and a DNS latency model of its resolvers.
#[derive(Debug, Clone, PartialEq)]
pub struct IspProfile {
    /// Operator name as reported by the SIM (e.g. "Verizon").
    pub name: String,
    /// Country the operator serves.
    pub country: String,
    /// The dominant technology of this operator in the dataset.
    pub network_type: NetworkType,
    /// DNS RTT distribution of the operator's resolvers.
    pub dns_rtt: LatencyModel,
    /// Extra latency the operator's core network adds to every app path.
    pub core_extra_rtt: LatencyModel,
}

impl IspProfile {
    /// Creates an LTE ISP with a log-normal DNS latency of the given median.
    pub fn lte(name: &str, country: &str, dns_median_ms: f64) -> Self {
        Self {
            name: name.to_string(),
            country: country.to_string(),
            network_type: NetworkType::Lte,
            dns_rtt: LatencyModel::lognormal_with(dns_median_ms * 0.8, 0.5, dns_median_ms * 0.2),
            core_extra_rtt: LatencyModel::constant(0.0),
        }
    }

    /// Adds a core-network latency penalty applied to app traffic but not to
    /// DNS — the signature of the Jio case study (§4.2.2, Case 2).
    pub fn with_core_extra(mut self, extra: LatencyModel) -> Self {
        self.core_extra_rtt = extra;
        self
    }

    /// Replaces the DNS model (used for the pre-4G mixtures of Figure 11).
    pub fn with_dns(mut self, dns: LatencyModel) -> Self {
        self.dns_rtt = dns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn network_type_labels_match_figures() {
        assert_eq!(NetworkType::Lte.label(), "4G LTE");
        assert_eq!(NetworkType::Gprs2g.to_string(), "2G GPRS/EDGE");
        assert!(NetworkType::Lte.is_cellular());
        assert!(!NetworkType::Wifi.is_cellular());
        assert_eq!(NetworkType::ALL.len(), 4);
    }

    #[test]
    fn profile_ordering_of_latencies_is_sane() {
        // WiFi < LTE < 3G < 2G in nominal DNS latency, as in Figure 10.
        let wifi = AccessProfile::wifi().dns_rtt.nominal_ms();
        let lte = AccessProfile::lte().dns_rtt.nominal_ms();
        let g3 = AccessProfile::umts3g().dns_rtt.nominal_ms();
        let g2 = AccessProfile::gprs2g().dns_rtt.nominal_ms();
        assert!(wifi < lte && lte < g3 && g3 < g2);
    }

    #[test]
    fn for_type_matches_named_constructors() {
        for t in NetworkType::ALL {
            assert_eq!(AccessProfile::for_type(t).network_type, t);
        }
    }

    #[test]
    fn tx_delay_scales_with_size_and_rate() {
        let wifi = AccessProfile::wifi();
        // 1460-byte segment at 25 Mbps is roughly 0.47 ms.
        let d = wifi.downlink_tx_delay_ms(1460);
        assert!((d - 0.4672).abs() < 0.01, "delay {d}");
        assert!(wifi.uplink_tx_delay_ms(1460) < AccessProfile::gprs2g().uplink_tx_delay_ms(1460));
        assert!(tx_delay_ms(100, 0.0).is_infinite());
    }

    #[test]
    fn only_lossy_3g_carries_data_faults_by_default() {
        for t in NetworkType::ALL {
            assert!(!AccessProfile::for_type(t).has_data_faults(), "{t} should be clean");
        }
        let lossy = AccessProfile::lossy_3g();
        assert!(lossy.has_data_faults());
        assert!(lossy.data_loss > 0.0 && lossy.reorder > 0.0 && lossy.duplicate > 0.0);
        let dialed = AccessProfile::wifi().with_data_faults(0.005, 0.0, 0.0);
        assert!(dialed.has_data_faults());
        assert_eq!(dialed.reorder, 0.0);
    }

    #[test]
    fn isp_builder_sets_fields() {
        let jio = IspProfile::lte("Jio 4G", "India", 59.0)
            .with_core_extra(LatencyModel::lognormal_with(200.0, 0.4, 50.0));
        assert_eq!(jio.country, "India");
        assert!(jio.core_extra_rtt.nominal_ms() > 200.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(jio.dns_rtt.sample_ms(&mut rng) > 0.0);
        let cricket = IspProfile::lte("Cricket", "America", 93.0)
            .with_dns(LatencyModel::lognormal_with(40.0, 0.4, 43.0));
        assert!(cricket.dns_rtt.nominal_ms() >= 43.0);
    }
}
