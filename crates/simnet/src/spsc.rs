//! Bounded single-producer/single-consumer queues.
//!
//! The sharded fleet engine moves work between exactly-one-producer /
//! exactly-one-consumer pairs: the TUN ingress dispatcher feeds each shard
//! worker through one queue, and each shard worker feeds the measurement
//! sink through another. A bounded SPSC ring is the right primitive for that
//! topology: the slots are allocated once at construction, pushes and pops in
//! steady state touch only two atomic indices (no locks, no allocation), and
//! the bound gives natural back-pressure when a shard falls behind.
//!
//! This is a classic Lamport ring buffer: the producer owns `tail`, the
//! consumer owns `head`, both indices grow monotonically, and `index % cap`
//! addresses the slot. The producer publishes a slot with a `Release` store
//! of `tail`; the consumer observes it with an `Acquire` load, so the slot
//! write *happens-before* the read.
//!
//! # Examples
//!
//! ```
//! use mop_simnet::spsc_channel;
//!
//! let (tx, rx) = spsc_channel::<u32>(4);
//! let worker = std::thread::spawn(move || {
//!     let mut sum = 0;
//!     while let Some(v) = rx.recv() {
//!         sum += v;
//!     }
//!     sum
//! });
//! for v in 1..=100 {
//!     tx.send(v).unwrap();
//! }
//! drop(tx); // Closes the channel; `recv` returns `None` once drained.
//! assert_eq!(worker.join().unwrap(), 5050);
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

/// How many spin-loop iterations a blocked side burns before yielding the
/// thread. Bounded waits keep latency low without monopolising a core.
const SPINS_BEFORE_YIELD: u32 = 64;

/// How many yields a blocked side performs (after the spin phase) before
/// escalating to a real sleep.
const YIELDS_BEFORE_SLEEP: u32 = 32;

/// How long the sleep phase parks the thread per pause. Long enough to free
/// the core for the peer, short enough to stay responsive once it drains.
const SLEEP_PAUSE: std::time::Duration = std::time::Duration::from_micros(100);

/// Safety-net bound on a parked `recv`. The normal wake-up is an explicit
/// `unpark` from the producer (or the sender's drop), so this only limits
/// how long a theoretical lost wake-up could strand the consumer.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(100);

/// An escalating wait strategy for blocked queue endpoints: spin briefly
/// (cheapest if the peer is about to act), then yield the time slice, then
/// sleep. A full ring therefore costs the waiting thread almost no CPU
/// instead of burning a core in a hot spin loop.
///
/// Call [`Backoff::pause`] each time progress fails and [`Backoff::reset`]
/// (or drop the value) once it succeeds.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff, starting in the spin phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns to the spin phase after progress was made.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits once, escalating from spin to yield to sleep as failed attempts
    /// accumulate.
    pub fn pause(&mut self) {
        if self.step < SPINS_BEFORE_YIELD {
            std::hint::spin_loop();
        } else if self.step < SPINS_BEFORE_YIELD + YIELDS_BEFORE_SLEEP {
            std::thread::yield_now();
        } else {
            std::thread::sleep(SLEEP_PAUSE);
        }
        self.step = self.step.saturating_add(1);
    }

    /// True once the spin and yield phases are exhausted — the point where
    /// the next `pause` would sleep, and a caller with a real wake-up signal
    /// (like `recv`'s park/unpark handshake) should block on that instead.
    pub fn exhausted(&self) -> bool {
        self.step >= SPINS_BEFORE_YIELD + YIELDS_BEFORE_SLEEP
    }
}

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index the consumer will pop. Only the consumer advances it.
    head: AtomicUsize,
    /// Next index the producer will push. Only the producer advances it.
    tail: AtomicUsize,
    /// Set when either side is dropped.
    closed: AtomicBool,
    /// Blocking `send` calls that found the ring full and had to wait — the
    /// observable face of backpressure. Wall-clock scheduling detail, never
    /// part of a deterministic digest.
    stalls: AtomicU64,
    /// True while the consumer is parked (or committing to park) in `recv`.
    /// A long-idle consumer blocks on `park` instead of a sleep loop, so a
    /// resident shard worker waiting for its next run costs zero wake-ups —
    /// on a small host the 10 kHz sleep-poll of even a handful of parked
    /// workers measurably preempts the threads doing real work.
    consumer_parked: AtomicBool,
    /// The consumer thread to `unpark`, registered by `recv` before parking.
    waiter: Mutex<Option<Thread>>,
}

// The ring hands each `T` from exactly one thread to exactly one other
// thread; the release/acquire pair on `tail` (and `head`) orders the slot
// accesses, so sharing the ring is sound whenever `T` itself may move
// between threads.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Wakes the consumer if it is parked in `recv`. Callers must have
    /// already published whatever the consumer is waiting for (an item, or
    /// the closed flag) and issued a `SeqCst` fence: the fence pairs with
    /// the one in `recv`'s park path, so either the consumer's re-check sees
    /// the publication, or this load sees the parked flag — a wake-up cannot
    /// fall between them.
    fn wake_consumer(&self) {
        if self.consumer_parked.load(Ordering::Relaxed)
            && self.consumer_parked.swap(false, Ordering::AcqRel)
        {
            if let Some(thread) = self.waiter.lock().expect("ring waiter lock").as_ref() {
                thread.unpark();
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone; indices are quiescent. Drop the undrained
        // items in place.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let slot = self.slots[i % self.capacity()].get();
            // SAFETY: slots in [head, tail) were initialised by the producer
            // and never consumed; we drop each exactly once.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The error returned by [`SpscSender::send`] and [`SpscSender::try_send`]
/// when the item could not be enqueued; the item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum SpscSendError<T> {
    /// The queue is full (only returned by `try_send`; `send` waits instead).
    Full(T),
    /// The receiver was dropped; nothing will ever drain the queue.
    Disconnected(T),
}

/// The producing half of a bounded SPSC queue. Not clonable — there is
/// exactly one producer.
pub struct SpscSender<T> {
    ring: Arc<Ring<T>>,
}

/// The consuming half of a bounded SPSC queue. Not clonable — there is
/// exactly one consumer.
pub struct SpscReceiver<T> {
    ring: Arc<Ring<T>>,
}

/// Creates a bounded SPSC queue with room for `capacity` in-flight items.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_channel<T: Send>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(capacity > 0, "an SPSC queue needs at least one slot");
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        stalls: AtomicU64::new(0),
        consumer_parked: AtomicBool::new(false),
        waiter: Mutex::new(None),
    });
    (SpscSender { ring: Arc::clone(&ring) }, SpscReceiver { ring })
}

impl<T: Send> SpscSender<T> {
    /// Enqueues `value` without waiting. Returns it back if the queue is full
    /// or the receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), SpscSendError<T>> {
        if self.ring.closed.load(Ordering::Acquire) {
            return Err(SpscSendError::Disconnected(value));
        }
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        if tail - head == self.ring.capacity() {
            return Err(SpscSendError::Full(value));
        }
        let slot = self.ring.slots[tail % self.ring.capacity()].get();
        // SAFETY: `tail - head < cap` means the consumer is done with this
        // slot, and we are the only producer.
        unsafe { (*slot).write(value) };
        self.ring.tail.store(tail + 1, Ordering::Release);
        // Order the tail publication before the parked-flag read (x86 would
        // otherwise let the load complete first), then wake a parked
        // consumer. Sends are per-burst, not per-packet, so the fence is off
        // the packet path.
        fence(Ordering::SeqCst);
        self.ring.wake_consumer();
        Ok(())
    }

    /// Enqueues `value`, waiting with an escalating spin → yield → sleep
    /// backoff while the queue is full — the back-pressure path. Each send
    /// that finds the ring full counts one stall. Fails only if the receiver
    /// is dropped.
    pub fn send(&self, mut value: T) -> Result<(), SpscSendError<T>> {
        let mut backoff = Backoff::new();
        let mut stalled = false;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(SpscSendError::Disconnected(v)) => {
                    return Err(SpscSendError::Disconnected(v))
                }
                Err(SpscSendError::Full(v)) => {
                    value = v;
                    if !stalled {
                        stalled = true;
                        self.ring.stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    backoff.pause();
                }
            }
        }
    }

    /// Number of blocking sends that found the ring full and had to wait.
    pub fn stalls(&self) -> u64 {
        self.ring.stalls.load(Ordering::Relaxed)
    }

    /// Number of items currently in flight.
    pub fn len(&self) -> usize {
        self.ring.tail.load(Ordering::Relaxed) - self.ring.head.load(Ordering::Acquire)
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        // A consumer parked in `recv` must observe the close and return.
        fence(Ordering::SeqCst);
        self.ring.wake_consumer();
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Dequeues one item without waiting. `None` means *currently empty*, not
    /// closed — pair with [`SpscReceiver::is_closed`] when draining.
    pub fn try_recv(&self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = self.ring.slots[head % self.ring.capacity()].get();
        // SAFETY: `head < tail` means the producer published this slot, and
        // we are the only consumer.
        let value = unsafe { (*slot).assume_init_read() };
        self.ring.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Dequeues one item, waiting while the queue is empty: an escalating
    /// spin → yield backoff first (cheapest when the producer is mid-burst),
    /// then a real `park` until the producer's next send — or its drop —
    /// unparks us. A long-idle consumer (a resident shard worker between
    /// runs) therefore costs zero wake-ups instead of a sleep-poll loop.
    /// Returns `None` only when the sender is dropped *and* the queue has
    /// been fully drained.
    pub fn recv(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(value) = self.try_recv() {
                return Some(value);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // Re-check: the producer may have pushed between our failed
                // `try_recv` and the closed read.
                return self.try_recv();
            }
            if backoff.exhausted() {
                self.park_until_woken();
            } else {
                backoff.pause();
            }
        }
    }

    /// Blocks the consumer until the producer wakes it (next send or drop).
    /// The parked flag is published *before* the final emptiness re-check;
    /// the `SeqCst` fences here and on the producer side guarantee that
    /// either the re-check sees the producer's publication, or the producer
    /// sees the flag and unparks — never neither. `PARK_TIMEOUT` bounds the
    /// wait anyway, and the caller's loop re-checks on every return, so a
    /// spurious unpark is just a retry.
    fn park_until_woken(&self) {
        *self.ring.waiter.lock().expect("ring waiter lock") = Some(std::thread::current());
        self.ring.consumer_parked.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        if !self.is_empty() || self.ring.closed.load(Ordering::Acquire) {
            self.ring.consumer_parked.store(false, Ordering::Release);
            return;
        }
        std::thread::park_timeout(PARK_TIMEOUT);
        self.ring.consumer_parked.store(false, Ordering::Release);
    }

    /// Number of blocking sends that found the ring full and had to wait
    /// (mirrors [`SpscSender::stalls`] so the consuming side can report it).
    pub fn stalls(&self) -> u64 {
        self.ring.stalls.load(Ordering::Relaxed)
    }

    /// True once the sender has been dropped (items may still be in flight).
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Number of items currently in flight.
    pub fn len(&self) -> usize {
        self.ring.tail.load(Ordering::Acquire) - self.ring.head.load(Ordering::Relaxed)
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

/// Credit-based backpressure for a batch pipeline: a producer must
/// [`CreditGate::acquire`] one credit per in-flight batch and the consumer
/// [`CreditGate::release`]s it when the batch completes, so at most `depth`
/// batches are ever in flight and a slow consumer throttles the producer
/// instead of letting queues balloon.
///
/// The gate carries no payload — it is shared (via `Arc`) alongside an SPSC
/// ring that carries the batch descriptors. Credit accounting affects only
/// *when* the producer runs, never *what* any batch computes, so it is
/// invisible to deterministic digests.
#[derive(Debug)]
pub struct CreditGate {
    available: AtomicU64,
    depth: u64,
    stalls: AtomicU64,
}

impl CreditGate {
    /// A gate holding `depth` credits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — a zero-credit gate can never admit work.
    pub fn new(depth: u64) -> Self {
        assert!(depth > 0, "a credit gate needs at least one credit");
        Self { available: AtomicU64::new(depth), depth, stalls: AtomicU64::new(0) }
    }

    /// Takes one credit without waiting. Returns `false` if none are free.
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.available.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return false;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Takes one credit, waiting with an escalating backoff while none are
    /// free. Each acquire that had to wait counts one stall.
    pub fn acquire(&self) {
        if self.try_acquire() {
            return;
        }
        self.stalls.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            backoff.pause();
            if self.try_acquire() {
                return;
            }
        }
    }

    /// Returns one credit (a batch completed).
    pub fn release(&self) {
        let prev = self.available.fetch_add(1, Ordering::Release);
        debug_assert!(prev < self.depth, "credit released more often than acquired");
    }

    /// Credits currently free.
    pub fn available(&self) -> u64 {
        self.available.load(Ordering::Acquire)
    }

    /// Total credits the gate was created with.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Number of `acquire` calls that found no credit and had to wait.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = spsc_channel::<u32>(8);
        for v in 0..8 {
            tx.try_send(v).unwrap();
        }
        assert_eq!(tx.len(), 8);
        assert!(matches!(tx.try_send(99), Err(SpscSendError::Full(99))));
        let drained: Vec<u32> = std::iter::from_fn(|| rx.try_recv()).collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
        assert!(rx.is_empty() && tx.is_empty());
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (tx, rx) = spsc_channel::<u64>(2);
        for round in 0..1000u64 {
            tx.try_send(round).unwrap();
            assert_eq!(rx.try_recv(), Some(round));
        }
    }

    #[test]
    fn cross_thread_handoff_preserves_order_under_backpressure() {
        let (tx, rx) = spsc_channel::<u64>(4);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for v in 0..N {
                tx.send(v).unwrap();
            }
        });
        let mut expected = 0;
        while let Some(v) = rx.recv() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }

    #[test]
    fn dropping_receiver_disconnects_sender() {
        let (tx, rx) = spsc_channel::<u8>(2);
        drop(rx);
        assert!(matches!(tx.send(1), Err(SpscSendError::Disconnected(1))));
        assert!(matches!(tx.try_send(2), Err(SpscSendError::Disconnected(2))));
    }

    #[test]
    fn dropping_sender_lets_receiver_drain_then_close() {
        let (tx, rx) = spsc_channel::<String>(4);
        tx.try_send("a".into()).unwrap();
        tx.try_send("b".into()).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.recv().as_deref(), Some("a"));
        assert_eq!(rx.recv().as_deref(), Some("b"));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn undrained_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = spsc_channel::<Probe>(4);
        tx.try_send(Probe).unwrap();
        tx.try_send(Probe).unwrap();
        tx.try_send(Probe).unwrap();
        drop(rx.try_recv()); // One consumed and dropped.
        drop(tx);
        drop(rx); // Two still in the ring.
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = spsc_channel::<u8>(0);
    }

    #[test]
    fn blocking_sends_on_a_full_ring_are_counted_as_stalls() {
        let (tx, rx) = spsc_channel::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.stalls(), 0, "try_send never counts stalls");
        let producer = std::thread::spawn(move || {
            tx.send(3).unwrap(); // Ring is full: must wait for the consumer.
            tx.stalls()
        });
        // Let the producer hit the full ring, then drain one slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.try_recv(), Some(1));
        let stalls = producer.join().unwrap();
        assert_eq!(stalls, 1, "one blocked send, one stall");
        assert_eq!(rx.stalls(), 1, "receiver sees the same counter");
    }

    #[test]
    fn backoff_escalates_without_panicking() {
        let mut backoff = Backoff::new();
        // Walk through spin and yield phases and into the first sleep.
        for _ in 0..(SPINS_BEFORE_YIELD + YIELDS_BEFORE_SLEEP + 1) {
            backoff.pause();
        }
        backoff.reset();
        backoff.pause(); // Back in the cheap spin phase.
    }

    #[test]
    fn credit_gate_admits_at_most_depth_batches() {
        let gate = CreditGate::new(2);
        assert_eq!(gate.depth(), 2);
        assert!(gate.try_acquire());
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire(), "no third credit");
        assert_eq!(gate.available(), 0);
        gate.release();
        assert_eq!(gate.available(), 1);
        assert!(gate.try_acquire());
        assert_eq!(gate.stalls(), 0, "try_acquire never counts stalls");
    }

    #[test]
    fn credit_gate_blocks_producer_until_consumer_releases() {
        let gate = Arc::new(CreditGate::new(1));
        gate.acquire(); // The one credit is out.
        let producer = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.acquire(); // Must wait for the release below.
                gate.stalls()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.release();
        let stalls = producer.join().unwrap();
        assert_eq!(stalls, 1, "one blocked acquire, one stall");
    }

    #[test]
    #[should_panic(expected = "at least one credit")]
    fn zero_depth_gate_panics() {
        let _ = CreditGate::new(0);
    }
}
