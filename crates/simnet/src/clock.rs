//! A shared, monotonically advancing virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A cheaply clonable handle to the simulation's virtual clock.
///
/// The event loop advances the clock as it pops events; every component
/// (relay engine, baselines, cost ledger) reads timestamps from the same
/// handle, so there is a single source of truth for "now".
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advances the clock to `to`.
    ///
    /// The clock is monotonic: attempts to move it backwards are ignored,
    /// which makes out-of-order event handling bugs visible in timestamps
    /// rather than corrupting time itself.
    pub fn advance_to(&self, to: SimTime) {
        // A CAS loop rather than `fetch_max` so both advance paths share the
        // same monotone update discipline (see `advance_by`).
        let mut cur = self.now_ns.load(Ordering::Relaxed);
        while cur < to.as_nanos() {
            match self.now_ns.compare_exchange_weak(
                cur,
                to.as_nanos(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Advances the clock by `by` and returns the new time.
    ///
    /// Implemented as a monotone CAS loop, not `fetch_add`: the wrapping add
    /// could interleave with a concurrent [`SimClock::advance_to`] near the
    /// end of the `u64` range and wrap the clock back towards zero, silently
    /// breaking the monotonicity contract above. The CAS recomputes the
    /// target from the freshest value and saturates instead of wrapping, so
    /// no interleaving can ever move time backwards.
    pub fn advance_by(&self, by: SimDuration) -> SimTime {
        let mut cur = self.now_ns.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(by.as_nanos());
            match self.now_ns.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return SimTime::from_nanos(new),
                Err(actual) => cur = actual,
            }
        }
    }

    /// The elapsed virtual time since `earlier`.
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now().duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(SimTime::from_millis(5));
        assert_eq!(clock.now().as_millis(), 5);
        clock.advance_by(SimDuration::from_millis(3));
        assert_eq!(clock.now().as_millis(), 8);
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = SimClock::new();
        clock.advance_to(SimTime::from_millis(10));
        clock.advance_to(SimTime::from_millis(4));
        assert_eq!(clock.now().as_millis(), 10);
    }

    #[test]
    fn advance_by_saturates_instead_of_wrapping() {
        // Regression: the old `fetch_add` implementation wrapped near
        // `u64::MAX`, so an `advance_by` interleaved with `advance_to` could
        // snap the clock back towards zero. The CAS loop saturates.
        let clock = SimClock::new();
        clock.advance_to(SimTime::from_nanos(u64::MAX - 5));
        let after = clock.advance_by(SimDuration::from_nanos(100));
        assert_eq!(after, SimTime::from_nanos(u64::MAX));
        assert_eq!(clock.now(), SimTime::from_nanos(u64::MAX));
        // Still monotone afterwards.
        clock.advance_to(SimTime::from_millis(1));
        assert_eq!(clock.now(), SimTime::from_nanos(u64::MAX));
    }

    #[test]
    fn concurrent_advances_never_move_time_backwards() {
        // Hammer the two advance paths from racing threads and assert that
        // no observer ever sees the clock decrease.
        let clock = SimClock::new();
        let observed_regression = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let clock = clock.clone();
                let flag = observed_regression.clone();
                scope.spawn(move || {
                    let mut last = clock.now();
                    for i in 0..20_000u64 {
                        if t % 2 == 0 {
                            clock.advance_to(SimTime::from_nanos(i * 3 + t));
                        } else {
                            clock.advance_by(SimDuration::from_nanos(1));
                        }
                        let now = clock.now();
                        if now < last {
                            flag.store(true, Ordering::Relaxed);
                        }
                        last = now;
                    }
                });
            }
        });
        assert!(
            !observed_regression.load(Ordering::Relaxed),
            "clock moved backwards under concurrent advance_to/advance_by"
        );
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance_to(SimTime::from_secs(1));
        assert_eq!(other.now().as_secs_f64(), 1.0);
        assert_eq!(other.elapsed_since(SimTime::from_millis(200)).as_millis(), 800);
    }
}
