//! A shared, monotonically advancing virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A cheaply clonable handle to the simulation's virtual clock.
///
/// The event loop advances the clock as it pops events; every component
/// (relay engine, baselines, cost ledger) reads timestamps from the same
/// handle, so there is a single source of truth for "now".
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advances the clock to `to`.
    ///
    /// The clock is monotonic: attempts to move it backwards are ignored,
    /// which makes out-of-order event handling bugs visible in timestamps
    /// rather than corrupting time itself.
    pub fn advance_to(&self, to: SimTime) {
        self.now_ns.fetch_max(to.as_nanos(), Ordering::Relaxed);
    }

    /// Advances the clock by `by` and returns the new time.
    pub fn advance_by(&self, by: SimDuration) -> SimTime {
        let new = self.now_ns.fetch_add(by.as_nanos(), Ordering::Relaxed) + by.as_nanos();
        SimTime::from_nanos(new)
    }

    /// The elapsed virtual time since `earlier`.
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now().duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(SimTime::from_millis(5));
        assert_eq!(clock.now().as_millis(), 5);
        clock.advance_by(SimDuration::from_millis(3));
        assert_eq!(clock.now().as_millis(), 8);
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = SimClock::new();
        clock.advance_to(SimTime::from_millis(10));
        clock.advance_to(SimTime::from_millis(4));
        assert_eq!(clock.now().as_millis(), 10);
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance_to(SimTime::from_secs(1));
        assert_eq!(other.now().as_secs_f64(), 1.0);
        assert_eq!(other.elapsed_since(SimTime::from_millis(200)).as_millis(), 800);
    }
}
