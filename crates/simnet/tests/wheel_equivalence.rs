//! Property tests pinning the timing wheel against the binary-heap queue.
//!
//! The wheel replaces the heap under the engine's event loop, so the two
//! must be observationally identical: the same pop order — including FIFO
//! order for events scheduled at the same instant — the same
//! `scheduled_total` accounting, and the same surviving set under random
//! cancellation. These properties are what lets the engine swap scheduler
//! backends without changing a single fleet digest
//! (`tests/fleet_determinism.rs` pins that end-to-end).

use proptest::prelude::*;

use mop_simnet::scheduler::{SchedulerKind, TimerScheduler};
use mop_simnet::{EventQueue, SimDuration, SimTime, TimingWheel};

/// One scripted operation against a scheduler.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule an event at the given nanosecond offset.
    Schedule(u64),
    /// Pop the earliest pending event.
    Pop,
    /// Cancel the k-th oldest still-live handle (modulo the live count).
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..50_000_000).prop_map(Op::Schedule),
        2 => Just(Op::Pop),
        2 => (0usize..64).prop_map(Op::Cancel),
    ]
}

/// Runs a script against a `TimerScheduler`, returning the popped sequence.
fn run_script(kind: SchedulerKind, granularity_ns: u64, ops: &[Op]) -> (Vec<(u64, u64)>, u64) {
    let mut sched = TimerScheduler::new(kind, SimDuration::from_nanos(granularity_ns));
    let mut handles = Vec::new();
    let mut popped = Vec::new();
    let mut id = 0u64;
    for op in ops {
        match *op {
            Op::Schedule(at) => {
                handles.push(sched.schedule(SimTime::from_nanos(at), id));
                id += 1;
            }
            Op::Pop => {
                if let Some((at, event)) = sched.pop() {
                    popped.push((at.as_nanos(), event));
                }
            }
            Op::Cancel(k) => {
                if !handles.is_empty() {
                    let handle = handles.remove(k % handles.len());
                    // Cancelling an already-fired handle is a no-op; both
                    // backends must agree on that too.
                    let _ = sched.cancel(handle);
                }
            }
        }
    }
    while let Some((at, event)) = sched.pop() {
        popped.push((at.as_nanos(), event));
    }
    (popped, sched.scheduled_total())
}

/// Drives a wheel through a post-snapshot script: schedules, cancels via
/// both live and deliberately stale handles, and pops — returning everything
/// observable (handle tokens, cancel results, popped sequence) so two wheels
/// can be compared move-for-move.
fn drive(wheel: &mut TimingWheel<u64>, script: &[Op], stale: &[u64]) -> Vec<(u64, u64, u64)> {
    let mut trace = Vec::new();
    let mut handles: Vec<mop_simnet::TimerHandle> = Vec::new();
    let mut id = 1_000u64;
    for (i, op) in script.iter().enumerate() {
        match *op {
            Op::Schedule(at) => {
                let handle = wheel.schedule(SimTime::from_nanos(at), id);
                trace.push((0, handle.token(), id));
                handles.push(handle);
                id += 1;
            }
            Op::Pop => {
                let popped = wheel.pop();
                trace.push((1, popped.map_or(u64::MAX, |(at, _)| at.as_nanos()), 0));
            }
            Op::Cancel(k) => {
                // Alternate between cancelling a live post-snapshot handle
                // and replaying a stale pre-snapshot token: both must behave
                // identically on the original and the restored wheel.
                let cancelled = if i % 2 == 0 && !handles.is_empty() {
                    wheel.cancel(handles.remove(k % handles.len()))
                } else if !stale.is_empty() {
                    wheel.cancel(mop_simnet::TimerHandle::from_token(stale[k % stale.len()]))
                } else {
                    None
                };
                trace.push((2, cancelled.map_or(u64::MAX, |e| e), 0));
            }
        }
    }
    while let Some((at, event)) = wheel.pop() {
        trace.push((3, at.as_nanos(), event));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Regression (PR 8): a restored wheel must reproduce the *lazy-reclaim*
    // behaviour exactly. Cancellation only vacates a slab cell and bumps its
    // generation — the index is reclaimed later, when its slot drains. A
    // snapshot that dropped those vacated cells (or the free-list order)
    // would hand out different indices/generations to post-restore
    // schedules, so stale tokens could cancel the wrong timer and resumed
    // runs would diverge from uninterrupted ones.
    #[test]
    fn restored_wheel_reproduces_lazy_reclaim_and_handle_assignment(
        setup in proptest::collection::vec(op_strategy(), 1..200),
        script in proptest::collection::vec(op_strategy(), 1..200),
        granularity_ns in prop_oneof![Just(1u64), Just(1024u64), Just(1_048_576u64)],
    ) {
        // Build a wheel with history: schedules, pops, and lazy cancels
        // whose dead cells are still awaiting reclaim at snapshot time.
        let mut original = TimingWheel::with_granularity(SimDuration::from_nanos(granularity_ns));
        let mut handles = Vec::new();
        let mut stale = Vec::new();
        let mut id = 0u64;
        for op in &setup {
            match *op {
                Op::Schedule(at) => {
                    handles.push(original.schedule(SimTime::from_nanos(at), id));
                    id += 1;
                }
                Op::Pop => {
                    let _ = original.pop();
                }
                Op::Cancel(k) => {
                    if !handles.is_empty() {
                        let handle = handles.remove(k % handles.len());
                        let _ = original.cancel(handle);
                        stale.push(handle.token());
                    }
                }
            }
        }
        let snapshot = original.snapshot(|&e| e);
        prop_assert_eq!(snapshot.len(), original.len());
        let mut restored = TimingWheel::restore(&snapshot, |&e| e);
        prop_assert_eq!(restored.len(), original.len());
        prop_assert_eq!(restored.scheduled_total(), original.scheduled_total());
        // Identical scripts after the cut must produce identical traces:
        // same handle tokens for new schedules (index + generation), same
        // stale-token no-ops, same pop order.
        let original_trace = drive(&mut original, &script, &stale);
        let restored_trace = drive(&mut restored, &script, &stale);
        prop_assert_eq!(original_trace, restored_trace);
    }

    #[test]
    fn wheel_and_heap_pop_identically_on_random_schedules_and_cancels(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        granularity_ns in prop_oneof![Just(1u64), Just(1024u64), Just(65_536u64), Just(1_048_576u64)],
    ) {
        let (wheel_popped, wheel_total) = run_script(SchedulerKind::Wheel, granularity_ns, &ops);
        let (heap_popped, heap_total) = run_script(SchedulerKind::Heap, granularity_ns, &ops);
        prop_assert_eq!(&wheel_popped, &heap_popped,
            "pop sequences diverged at granularity {}", granularity_ns);
        prop_assert_eq!(wheel_total, heap_total, "scheduled_total diverged");
    }

    #[test]
    fn wheel_matches_the_bare_heap_queue_without_cancellation(
        times in proptest::collection::vec(0u64..10_000_000, 1..300),
    ) {
        // The raw EventQueue (no cancellation wrapper) is the historical
        // reference: identical (time, FIFO) pop order is the contract the
        // engine's digests rest on.
        let mut wheel = TimingWheel::new();
        let mut heap = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_nanos(t), i);
            heap.schedule(SimTime::from_nanos(t), i);
        }
        prop_assert_eq!(wheel.len(), heap.len());
        prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_instant_events_pop_fifo_at_every_granularity(
        instant in 0u64..1_000_000_000,
        count in 2usize..100,
        granularity_ns in prop_oneof![Just(1u64), Just(4096u64), Just(1_048_576u64)],
    ) {
        let mut wheel = TimingWheel::with_granularity(SimDuration::from_nanos(granularity_ns));
        let at = SimTime::from_nanos(instant);
        for i in 0..count {
            wheel.schedule(at, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| wheel.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pop_and_schedule_agree_with_the_heap(
        seed_times in proptest::collection::vec(0u64..5_000_000, 2..100),
        follow_times in proptest::collection::vec(0u64..10_000_000, 1..100),
    ) {
        // Schedules issued *while draining* (including into the past, which
        // the engine's zero-delay handoffs can produce) must keep the exact
        // heap order: late events join the due buffer at their (time, seq)
        // position.
        let mut wheel = TimingWheel::new();
        let mut heap = EventQueue::new();
        let mut id = 0u64;
        for &t in &seed_times {
            wheel.schedule(SimTime::from_nanos(t), id);
            heap.schedule(SimTime::from_nanos(t), id);
            id += 1;
        }
        let mut follow = follow_times.iter();
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            if let Some(&t) = follow.next() {
                wheel.schedule(SimTime::from_nanos(t), id);
                heap.schedule(SimTime::from_nanos(t), id);
                id += 1;
            }
        }
    }
}
