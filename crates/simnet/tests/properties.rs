//! Property-based tests for the simulation substrate: time arithmetic, event
//! ordering, latency sampling and network causality.

use proptest::prelude::*;

use mop_packet::{Endpoint, FourTuple};
use mop_simnet::{
    EventQueue, LatencyModel, NetworkType, SimDuration, SimNetwork, SimRng, SimTime,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn time_arithmetic_is_consistent(base_ms in 0u64..1_000_000, delta_ms in 0u64..1_000_000) {
        let t0 = SimTime::from_millis(base_ms);
        let d = SimDuration::from_millis(delta_ms);
        let t1 = t0 + d;
        prop_assert_eq!(t1 - t0, d);
        prop_assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        prop_assert_eq!(t1.max(t0), t1);
        prop_assert_eq!(t1.min(t0), t0);
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_millis(*t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, _)) = queue.pop() {
            popped.push(at);
        }
        prop_assert_eq!(popped.len(), times.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn latency_models_never_sample_negative(
        median in 0.1f64..1_000.0,
        sigma in 0.05f64..1.5,
        floor in 0.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        for model in [
            LatencyModel::constant(median),
            LatencyModel::uniform(0.0, median),
            LatencyModel::normal(median, median),
            LatencyModel::lognormal_with(median, sigma, floor),
        ] {
            for _ in 0..50 {
                let v = model.sample_ms(&mut rng);
                prop_assert!(v >= 0.0 && v.is_finite());
            }
        }
        // The floor really is a floor.
        let floored = LatencyModel::lognormal_with(median, sigma, floor);
        for _ in 0..50 {
            prop_assert!(floored.sample_ms(&mut rng) >= floor);
        }
    }

    #[test]
    fn connects_respect_causality_and_match_the_tap(
        seed in any::<u64>(),
        start_ms in 0u64..10_000,
        port in 1024u16..60_000,
        network_type in prop_oneof![
            Just(NetworkType::Wifi),
            Just(NetworkType::Lte),
            Just(NetworkType::Umts3g),
            Just(NetworkType::Gprs2g),
        ],
    ) {
        let mut net = SimNetwork::builder()
            .seed(seed)
            .network_type(network_type)
            .with_table2_destinations()
            .build();
        let flow = FourTuple::new(
            Endpoint::v4(10, 0, 0, 2, port),
            Endpoint::v4(31, 13, 79, 251, 443),
        );
        let at = SimTime::from_millis(start_ms);
        let outcome = net.connect(flow, at);
        prop_assert!(outcome.syn_sent >= at);
        prop_assert!(outcome.completed_at > outcome.syn_sent);
        prop_assert!(outcome.true_rtt > SimDuration::ZERO);
        if outcome.success {
            let tap_rtt = net.tap().handshake_rtt(flow).unwrap();
            prop_assert_eq!(outcome.completed_at - outcome.syn_sent, tap_rtt);
        }
        // DNS lookups are also causal.
        let dns = net.dns_lookup(flow.src, "www.google.com", at);
        prop_assert!(dns.query_sent >= at);
        if let Some(response_at) = dns.response_at {
            prop_assert!(response_at > dns.query_sent);
        }
    }

    #[test]
    fn bulk_transfers_never_exceed_the_configured_capacity(
        seed in any::<u64>(),
        megabytes in 1usize..6,
    ) {
        let mut net = SimNetwork::builder().seed(seed).with_table2_destinations().build();
        let flow = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 50_000), Endpoint::v4(216, 58, 221, 132, 443));
        let bytes = megabytes * 1024 * 1024;
        let start = SimTime::ZERO;
        let chunks = net.bulk_download(flow, bytes, start);
        prop_assert!(!chunks.is_empty());
        prop_assert!(chunks.windows(2).all(|w| w[0].0 <= w[1].0));
        let total: usize = chunks.iter().map(|(_, b)| *b).sum();
        prop_assert_eq!(total, bytes);
        let elapsed = (chunks.last().unwrap().0 - start).as_secs_f64();
        let mbps = bytes as f64 * 8.0 / 1_000_000.0 / elapsed;
        // Never faster than the 25 Mbps WiFi profile (plus rounding slack).
        prop_assert!(mbps <= 25.5, "throughput {} exceeds the link capacity", mbps);
    }

    #[test]
    fn identical_seeds_produce_identical_networks(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut net = SimNetwork::builder().seed(seed).with_table2_destinations().build();
            let flow = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 41_000), Endpoint::v4(108, 160, 166, 126, 443));
            net.connect(flow, SimTime::from_millis(3)).true_rtt
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
