//! Property-based tests for the statistics primitives: the invariants the
//! figure-generation code relies on (monotone CDFs, order statistics inside
//! the sample range, histogram conservation).

use proptest::prelude::*;

use mop_measure::{
    percentile, AggregateStore, Cdf, ConfidenceInterval, Histogram, MeasurementKind,
    MeasurementStore, NetKind, RttRecord, RttSketch, Summary, WindowedAggregateStore,
};

/// Stamps one deterministic sample (keyed off its index) into a windowed
/// store — the shared fold for the windowed-store properties below.
fn stamp_windowed(w: &mut WindowedAggregateStore, i: usize, at_ns: u64, rtt: f64) {
    let apps = ["com.whatsapp", "com.android.chrome", "com.google.android.youtube"];
    let isps = ["Jio 4G", "Verizon", "HomeWiFi"];
    let network = if i % 4 == 0 { NetKind::Wifi } else { NetKind::Lte };
    w.observe_parts(
        at_ns,
        if i % 5 == 0 { MeasurementKind::Dns } else { MeasurementKind::Tcp },
        network,
        apps[i % apps.len()],
        "",
        isps[i % isps.len()],
        (i % 7) as u32,
        if (i % 7) % 2 == 0 { "USA" } else { "India" },
        rtt,
    );
}

fn arb_rtts() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..2_000.0, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn percentiles_are_ordered_and_bounded(values in arb_rtts()) {
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p25 = percentile(&values, 25.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p95 = percentile(&values, 95.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p95);
        prop_assert!(p25 >= min - 1e-9 && p95 <= max + 1e-9);
    }

    #[test]
    fn summary_mean_is_between_min_and_max(values in arb_rtts()) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one(values in arb_rtts()) {
        let cdf = Cdf::from_values(&values);
        let series = cdf.series(2_000.0, 40);
        prop_assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-9);
        // The empirical median quantile is consistent with fraction_at_or_below.
        let median = cdf.median().unwrap();
        prop_assert!(cdf.fraction_at_or_below(median) >= 0.5 - 1e-9);
    }

    #[test]
    fn histogram_conserves_samples(values in arb_rtts()) {
        let mut h = Histogram::table1_bins();
        h.add_all(&values);
        prop_assert_eq!(h.total() as usize, values.len());
        let above_1ms = values.iter().filter(|v| **v >= 1.0).count();
        prop_assert_eq!((h.total() as f64 * h.fraction_at_or_above(1.0)).round() as usize, above_1ms);
    }

    #[test]
    fn confidence_interval_contains_the_sample_mean(values in proptest::collection::vec(0.1f64..500.0, 2..200)) {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let ci = ConfidenceInterval::of(&values).unwrap();
        prop_assert!(ci.contains(mean));
        prop_assert!(ci.lo <= ci.hi);
    }

    #[test]
    fn store_filters_partition_the_records(
        wifi_rtts in proptest::collection::vec(1.0f64..300.0, 0..60),
        lte_rtts in proptest::collection::vec(1.0f64..300.0, 0..60),
    ) {
        let mut store = MeasurementStore::new();
        for rtt in &wifi_rtts {
            store.push(RttRecord::tcp(*rtt, 1, "com.app.a", NetKind::Wifi));
        }
        for rtt in &lte_rtts {
            store.push(RttRecord::tcp(*rtt, 2, "com.app.b", NetKind::Lte));
        }
        let wifi = store.filter(|r| r.network == NetKind::Wifi);
        let lte = store.filter(|r| r.network == NetKind::Lte);
        prop_assert_eq!(wifi.len() + lte.len(), store.len());
        prop_assert_eq!(wifi.len(), wifi_rtts.len());
        // JSON-lines round trip preserves every record.
        let back = MeasurementStore::from_json_lines(&store.to_json_lines());
        prop_assert_eq!(back.len(), store.len());
    }

    // ----- streaming sketch / aggregate properties ------------------------

    #[test]
    fn sketch_quantiles_stay_within_one_percent_of_exact(
        values in arb_rtts(),
        q in 0.0f64..=1.0,
    ) {
        let sketch: RttSketch = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        // The exact nearest-rank order statistic the sketch approximates.
        let exact = sorted[(q * (sorted.len() - 1) as f64).round() as usize];
        let approx = sketch.quantile(q).unwrap();
        prop_assert!(
            (approx - exact).abs() / exact <= RttSketch::RELATIVE_ERROR + 1e-12,
            "q {} exact {} approx {}", q, exact, approx
        );
        // Count, sum, min and max are exact (sum at 1 ns resolution).
        prop_assert_eq!(sketch.count() as usize, values.len());
        prop_assert_eq!(sketch.min().unwrap(), sorted[0]);
        prop_assert_eq!(sketch.max().unwrap(), *sorted.last().unwrap());
        let exact_sum: f64 = values.iter().sum();
        prop_assert!((sketch.sum_ms() - exact_sum).abs() <= 1e-6 * values.len() as f64 + 1e-9);
    }

    #[test]
    fn sketch_cdf_is_monotone_and_bracketed(values in arb_rtts()) {
        let sketch: RttSketch = values.iter().copied().collect();
        let series = sketch.series(2_000.0, 40);
        prop_assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-9);
        // The sketch CDF is the exact CDF read at a point within one bucket
        // width: bracket it by evaluating the exact CDF slightly wider.
        let exact = Cdf::from_values(&values);
        let slack = 2.0 * RttSketch::RELATIVE_ERROR;
        for (x, f) in series {
            let lo = exact.fraction_at_or_below(x * (1.0 - slack) - 1e-9);
            let hi = exact.fraction_at_or_below(x * (1.0 + slack) + 1e-9);
            prop_assert!((lo..=hi).contains(&f), "x {}: sketch {} outside [{}, {}]", x, f, lo, hi);
        }
    }

    #[test]
    fn aggregate_merge_is_bit_identical_for_any_shard_permutation(
        values in proptest::collection::vec(0.5f64..1_500.0, 1..200),
        shards in 1usize..6,
        rotate in 0usize..6,
    ) {
        // Deterministic but varied cell keys derived from the sample index.
        let record = |i: usize, v: f64| {
            let apps = ["com.whatsapp", "com.android.chrome", "com.google.android.youtube"];
            let isps = ["Jio 4G", "Verizon", "HomeWiFi"];
            let network = if i % 4 == 0 { NetKind::Wifi } else { NetKind::Lte };
            // Country is a function of the device (a device has one country),
            // so the device plane is partition-independent.
            RttRecord::tcp(v, (i % 7) as u32, apps[i % apps.len()], network)
                .with_isp(isps[i % isps.len()])
                .with_country(if (i % 7) % 2 == 0 { "USA" } else { "India" })
        };
        let mut whole = AggregateStore::new();
        for (i, v) in values.iter().enumerate() {
            whole.observe(&record(i, *v));
        }
        // Partition across shards, then merge starting from an arbitrary
        // rotation — every order must produce the bit-identical store.
        let mut parts = vec![AggregateStore::new(); shards];
        for (i, v) in values.iter().enumerate() {
            parts[i % shards].observe(&record(i, *v));
        }
        let mut merged = AggregateStore::new();
        for k in 0..shards {
            merged.merge_from(&parts[(k + rotate) % shards]);
        }
        prop_assert_eq!(merged.digest(), whole.digest());
        prop_assert!(merged == whole, "merged store must equal the unpartitioned store");
        prop_assert_eq!(merged.sample_count() as usize, values.len());
        // The per-app counts agree with the batch store's.
        let mut batch = MeasurementStore::new();
        for (i, v) in values.iter().enumerate() {
            batch.push(record(i, *v));
        }
        prop_assert_eq!(merged.counts_per_app(), batch.counts_per_app());
        prop_assert_eq!(merged.counts_per_device(), batch.counts_per_device());
    }

    // ----- windowed (epoch) aggregate properties --------------------------

    #[test]
    fn windowed_ring_wraps_without_losing_samples(
        values in proptest::collection::vec(0.5f64..1_500.0, 1..250),
        width_ns in 1u64..5_000,
        window in 1usize..9,
    ) {
        // Timestamps sweep far past `window` epochs so the ring must wrap
        // and evict; the merged view must still equal direct observation.
        let mut w = WindowedAggregateStore::new(width_ns, window);
        let mut flat = AggregateStore::new();
        for (i, v) in values.iter().enumerate() {
            let at_ns = (i as u64).wrapping_mul(2_654_435_761) % (width_ns * 40);
            stamp_windowed(&mut w, i, at_ns, *v);
            let mut probe = WindowedAggregateStore::new(width_ns, 1);
            stamp_windowed(&mut probe, i, at_ns, *v);
            flat.merge_from(&probe.merged());
        }
        prop_assert_eq!(w.sample_count() as usize, values.len());
        prop_assert_eq!(w.merged().digest(), flat.digest());
        prop_assert!(w.live_epochs().len() <= window);
        if let Some(max) = w.max_epoch() {
            for epoch in w.live_epochs() {
                prop_assert!(epoch + window as u64 > max, "live epoch {} outside window ending at {}", epoch, max);
            }
        }
    }

    #[test]
    fn windowed_samples_attribute_to_the_epoch_containing_them(
        offsets in proptest::collection::vec(0u64..10_000, 1..120),
        width_ns in 2u64..2_000,
    ) {
        // A window long enough that nothing is evicted: every sample must
        // sit in the live store of exactly the epoch `at / width`.
        let window = 10_000 / width_ns as usize + 2;
        let mut w = WindowedAggregateStore::new(width_ns, window);
        let mut per_epoch = std::collections::BTreeMap::<u64, u64>::new();
        for (i, at_ns) in offsets.iter().enumerate() {
            stamp_windowed(&mut w, i, *at_ns, 25.0);
            *per_epoch.entry(at_ns / width_ns).or_default() += 1;
        }
        prop_assert_eq!(w.folded().sample_count(), 0);
        prop_assert_eq!(w.live_epochs(), per_epoch.keys().copied().collect::<Vec<_>>());
        for (epoch, count) in per_epoch {
            prop_assert_eq!(w.epoch_store(epoch).unwrap().sample_count(), count);
        }
    }

    #[test]
    fn windowed_merge_is_bit_identical_for_any_shard_permutation(
        values in proptest::collection::vec(0.5f64..1_500.0, 1..200),
        shards in 1usize..6,
        rotate in 0usize..6,
        width_ns in 10u64..3_000,
        window in 1usize..7,
    ) {
        let at_of = |i: usize| (i as u64).wrapping_mul(2_654_435_761) % (width_ns * 30);
        let mut whole = WindowedAggregateStore::new(width_ns, window);
        for (i, v) in values.iter().enumerate() {
            stamp_windowed(&mut whole, i, at_of(i), *v);
        }
        // Partition across shards, then merge starting from an arbitrary
        // rotation — every order must produce the bit-identical store.
        let mut parts: Vec<WindowedAggregateStore> =
            (0..shards).map(|_| WindowedAggregateStore::new(width_ns, window)).collect();
        for (i, v) in values.iter().enumerate() {
            stamp_windowed(&mut parts[i % shards], i, at_of(i), *v);
        }
        let mut merged = WindowedAggregateStore::new(width_ns, window);
        for k in 0..shards {
            merged.merge_from(&parts[(k + rotate) % shards]);
        }
        prop_assert_eq!(merged.digest(), whole.digest());
        prop_assert!(merged == whole, "merged windowed store must equal the unpartitioned one");
        // JSON round trip preserves the digest (the checkpoint path).
        let text = mop_json::to_string(&merged.to_json());
        let back = WindowedAggregateStore::from_json(&mop_json::from_str(&text).unwrap()).unwrap();
        prop_assert_eq!(back.digest(), whole.digest());
    }

    #[test]
    fn aggregate_medians_track_the_batch_store(values in proptest::collection::vec(1.0f64..900.0, 4..250)) {
        let mut agg = AggregateStore::new();
        let mut batch = MeasurementStore::new();
        for (i, v) in values.iter().enumerate() {
            let kind = if i % 3 == 0 { NetKind::Lte } else { NetKind::Wifi };
            let r = RttRecord::tcp(*v, 1, "com.app", kind);
            agg.observe(&r);
            batch.push(r);
        }
        for net in [NetKind::Wifi, NetKind::Lte] {
            let mut exact: Vec<f64> = batch.rtts_where(|r| r.network == net);
            if exact.is_empty() { continue; }
            exact.sort_by(f64::total_cmp);
            let exact_median = exact[(0.5 * (exact.len() - 1) as f64).round() as usize];
            let sketch_median = agg.median_where(|k| k.network == net).unwrap();
            prop_assert!(
                (sketch_median - exact_median).abs() / exact_median <= RttSketch::RELATIVE_ERROR + 1e-12,
                "net {:?}: exact {} sketch {}", net, exact_median, sketch_median
            );
        }
        prop_assert_eq!(
            agg.sketch_where(|k| k.kind == MeasurementKind::Tcp).count() as usize,
            values.len()
        );
    }
}
