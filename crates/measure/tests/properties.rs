//! Property-based tests for the statistics primitives: the invariants the
//! figure-generation code relies on (monotone CDFs, order statistics inside
//! the sample range, histogram conservation).

use proptest::prelude::*;

use mop_measure::{percentile, Cdf, ConfidenceInterval, Histogram, MeasurementStore, NetKind, RttRecord, Summary};

fn arb_rtts() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..2_000.0, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn percentiles_are_ordered_and_bounded(values in arb_rtts()) {
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p25 = percentile(&values, 25.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p95 = percentile(&values, 95.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p95);
        prop_assert!(p25 >= min - 1e-9 && p95 <= max + 1e-9);
    }

    #[test]
    fn summary_mean_is_between_min_and_max(values in arb_rtts()) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one(values in arb_rtts()) {
        let cdf = Cdf::from_values(&values);
        let series = cdf.series(2_000.0, 40);
        prop_assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert!((series.last().unwrap().1 - 1.0).abs() < 1e-9);
        // The empirical median quantile is consistent with fraction_at_or_below.
        let median = cdf.median().unwrap();
        prop_assert!(cdf.fraction_at_or_below(median) >= 0.5 - 1e-9);
    }

    #[test]
    fn histogram_conserves_samples(values in arb_rtts()) {
        let mut h = Histogram::table1_bins();
        h.add_all(&values);
        prop_assert_eq!(h.total() as usize, values.len());
        let above_1ms = values.iter().filter(|v| **v >= 1.0).count();
        prop_assert_eq!((h.total() as f64 * h.fraction_at_or_above(1.0)).round() as usize, above_1ms);
    }

    #[test]
    fn confidence_interval_contains_the_sample_mean(values in proptest::collection::vec(0.1f64..500.0, 2..200)) {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let ci = ConfidenceInterval::of(&values).unwrap();
        prop_assert!(ci.contains(mean));
        prop_assert!(ci.lo <= ci.hi);
    }

    #[test]
    fn store_filters_partition_the_records(
        wifi_rtts in proptest::collection::vec(1.0f64..300.0, 0..60),
        lte_rtts in proptest::collection::vec(1.0f64..300.0, 0..60),
    ) {
        let mut store = MeasurementStore::new();
        for rtt in &wifi_rtts {
            store.push(RttRecord::tcp(*rtt, 1, "com.app.a", NetKind::Wifi));
        }
        for rtt in &lte_rtts {
            store.push(RttRecord::tcp(*rtt, 2, "com.app.b", NetKind::Lte));
        }
        let wifi = store.filter(|r| r.network == NetKind::Wifi);
        let lte = store.filter(|r| r.network == NetKind::Lte);
        prop_assert_eq!(wifi.len() + lte.len(), store.len());
        prop_assert_eq!(wifi.len(), wifi_rtts.len());
        // JSON-lines round trip preserves every record.
        let back = MeasurementStore::from_json_lines(&store.to_json_lines());
        prop_assert_eq!(back.len(), store.len());
    }
}
