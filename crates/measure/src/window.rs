//! Windowed time-series aggregation: ring-buffered per-epoch sketch stores.
//!
//! A longitudinal run spans a simulated day, not a two-second burst — the
//! questions change from "what is the median?" to "when did the median
//! move?". [`WindowedAggregateStore`] adds the time axis to
//! [`crate::AggregateStore`] without giving up any of its properties:
//!
//! * **Fixed epoch width.** Virtual time is cut into epochs of `width_ns`
//!   nanoseconds; each sample is stamped into the [`crate::AggregateStore`]
//!   of the epoch containing its timestamp.
//! * **Bounded memory.** Only the most recent `window` epochs are kept live
//!   in a ring buffer; epochs that fall off the back are folded into one
//!   `folded` tail store (the commutative sketch merge). Memory is
//!   O(window × cells), independent of run length.
//! * **Bit-identical under any merge order.** Which epochs are live is a
//!   pure function of the *global* maximum epoch, the fold into the tail is
//!   the commutative [`crate::AggregateStore::merge_from`], and every
//!   per-epoch store is itself merge-order invariant — so merging any
//!   partition of the same (timestamp, sample) multiset, in any order,
//!   produces the bit-identical windowed store. This is the property the
//!   sharded fleet sink and the checkpoint/restore path both pin.
//!
//! # Examples
//!
//! ```
//! use mop_measure::{MeasurementKind, NetKind, WindowedAggregateStore};
//!
//! // One-second epochs, four of them live at a time.
//! let mut w = WindowedAggregateStore::new(1_000_000_000, 4);
//! for i in 0..10u64 {
//!     w.observe_parts(
//!         i * 1_000_000_000, // one sample per epoch
//!         MeasurementKind::Tcp,
//!         NetKind::Wifi,
//!         "com.whatsapp",
//!         "",
//!         "HomeWiFi",
//!         7,
//!         "",
//!         40.0 + i as f64,
//!     );
//! }
//! assert_eq!(w.live_epochs(), vec![6, 7, 8, 9]); // epochs 0..=5 folded
//! assert_eq!(w.sample_count(), 10);              // nothing lost
//! ```

use crate::aggregate::AggregateStore;
use crate::record::{MeasurementKind, NetKind};
use crate::sketch::Fnv;

/// A compact description of one live epoch: its index, sample and cell
/// counts, and the digest of its [`AggregateStore`]. Produced by
/// [`WindowedAggregateStore::epoch_summaries`] for streaming subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSummary {
    /// The epoch index (sample timestamp divided by the epoch width).
    pub epoch: u64,
    /// Samples stamped into the epoch so far.
    pub samples: u64,
    /// Aggregation cells the epoch's store holds.
    pub cells: usize,
    /// The epoch store's [`AggregateStore::digest`].
    pub digest: u64,
}

/// Ring-buffered per-epoch [`AggregateStore`]s with a merged tail. See the
/// [module docs](self) for the guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedAggregateStore {
    /// Epoch width in nanoseconds (≥ 1).
    width_ns: u64,
    /// Ring capacity: how many epochs stay live before folding (≥ 1).
    window: usize,
    /// Live epochs, slot `epoch % window`. A slot is `Some` only if a sample
    /// was stamped into that epoch while it was inside the window.
    ring: Vec<Option<(u64, AggregateStore)>>,
    /// Merge of every epoch that has fallen off the back of the ring, plus
    /// late samples older than the window.
    folded: AggregateStore,
    /// Highest epoch containing any observed sample (`None` while empty).
    max_epoch: Option<u64>,
}

impl WindowedAggregateStore {
    /// Creates an empty windowed store with the given epoch width
    /// (nanoseconds, clamped to ≥ 1) and live-window length (epochs,
    /// clamped to ≥ 1).
    pub fn new(width_ns: u64, window: usize) -> Self {
        let window = window.max(1);
        Self {
            width_ns: width_ns.max(1),
            window,
            ring: vec![None; window],
            folded: AggregateStore::new(),
            max_epoch: None,
        }
    }

    /// The epoch index containing a timestamp.
    pub fn epoch_of(&self, at_ns: u64) -> u64 {
        at_ns / self.width_ns
    }

    /// Epoch width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Live-window length in epochs.
    pub fn window_len(&self) -> usize {
        self.window
    }

    /// The lowest epoch still live given the current maximum; everything
    /// below it belongs to the folded tail.
    fn keep_from(&self) -> Option<u64> {
        self.max_epoch.map(|max| max.saturating_sub(self.window as u64 - 1))
    }

    /// Advances the window to cover `epoch`, folding live epochs that fall
    /// off the back into the tail. The fold is commutative, so eviction
    /// order does not matter.
    fn advance_to(&mut self, epoch: u64) {
        match self.max_epoch {
            None => self.max_epoch = Some(epoch),
            Some(max) if epoch > max => {
                let keep_from = epoch.saturating_sub(self.window as u64 - 1);
                for slot in &mut self.ring {
                    if let Some((e, store)) = slot {
                        if *e < keep_from {
                            self.folded.merge_from(store);
                            *slot = None;
                        }
                    }
                }
                self.max_epoch = Some(epoch);
            }
            _ => {}
        }
    }

    /// Stamps one measurement into the epoch containing `at_ns`. Samples
    /// older than the live window fold straight into the tail, so nothing is
    /// ever dropped. Field semantics match
    /// [`AggregateStore::observe_parts`].
    #[allow(clippy::too_many_arguments)]
    pub fn observe_parts(
        &mut self,
        at_ns: u64,
        kind: MeasurementKind,
        network: NetKind,
        app: &str,
        domain: &str,
        isp: &str,
        device: u32,
        country: &str,
        rtt_ms: f64,
    ) {
        let epoch = self.epoch_of(at_ns);
        self.advance_to(epoch);
        let keep_from = self.keep_from().unwrap_or(0);
        if epoch < keep_from {
            self.folded.observe_parts(kind, network, app, domain, isp, device, country, rtt_ms);
            return;
        }
        let slot = (epoch % self.window as u64) as usize;
        if let Some((e, store)) = &mut self.ring[slot] {
            debug_assert_eq!(*e, epoch, "ring slot must hold the in-window epoch");
            store.observe_parts(kind, network, app, domain, isp, device, country, rtt_ms);
        } else {
            let mut store = AggregateStore::new();
            store.observe_parts(kind, network, app, domain, isp, device, country, rtt_ms);
            self.ring[slot] = Some((epoch, store));
        }
    }

    /// Absorbs another windowed store built over the same epoch geometry.
    /// The result is the store that would have observed the union of both
    /// sample multisets directly — bit-identical whatever the merge order or
    /// partition, which is what makes the sharded sink and resumed runs
    /// digest-stable.
    ///
    /// # Panics
    ///
    /// If the two stores disagree on epoch width or window length.
    pub fn merge_from(&mut self, other: &WindowedAggregateStore) {
        assert_eq!(self.width_ns, other.width_ns, "epoch widths must match");
        assert_eq!(self.window, other.window, "window lengths must match");
        if let Some(other_max) = other.max_epoch {
            self.advance_to(other_max);
        }
        self.folded.merge_from(&other.folded);
        let Some(keep_from) = self.keep_from() else { return };
        for slot in &other.ring {
            let Some((epoch, store)) = slot else { continue };
            if *epoch < keep_from {
                self.folded.merge_from(store);
                continue;
            }
            let idx = (*epoch % self.window as u64) as usize;
            if let Some((e, mine)) = &mut self.ring[idx] {
                debug_assert_eq!(e, epoch, "ring slot must hold the in-window epoch");
                mine.merge_from(store);
            } else {
                self.ring[idx] = Some((*epoch, store.clone()));
            }
        }
    }

    /// Live epoch indices, ascending.
    pub fn live_epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> =
            self.ring.iter().filter_map(|slot| slot.as_ref().map(|(e, _)| *e)).collect();
        epochs.sort_unstable();
        epochs
    }

    /// The live store for one epoch, if that epoch is inside the window and
    /// saw samples.
    pub fn epoch_store(&self, epoch: u64) -> Option<&AggregateStore> {
        let slot = (epoch % self.window as u64) as usize;
        match &self.ring[slot] {
            Some((e, store)) if *e == epoch => Some(store),
            _ => None,
        }
    }

    /// The folded tail: every sample whose epoch has left the live window.
    pub fn folded(&self) -> &AggregateStore {
        &self.folded
    }

    /// Highest epoch containing any observed sample.
    pub fn max_epoch(&self) -> Option<u64> {
        self.max_epoch
    }

    /// Total samples across the tail and every live epoch — nothing is ever
    /// dropped by eviction.
    pub fn sample_count(&self) -> u64 {
        self.folded.sample_count()
            + self
                .ring
                .iter()
                .filter_map(|slot| slot.as_ref().map(|(_, s)| s.sample_count()))
                .sum::<u64>()
    }

    /// Total aggregation cells across the tail and live epochs — the
    /// O(window × cells) memory bound, independent of run length.
    pub fn cell_count(&self) -> usize {
        self.folded.cell_count()
            + self
                .ring
                .iter()
                .filter_map(|slot| slot.as_ref().map(|(_, s)| s.cell_count()))
                .sum::<usize>()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.max_epoch.is_none()
    }

    /// Compact per-epoch summaries of every live epoch, ascending — the
    /// payload a streaming subscriber needs to track closing epochs without
    /// shipping the stores themselves. Each digest is the epoch store's own
    /// [`AggregateStore::digest`], so two subscribers comparing summaries
    /// compare the underlying sketches bit for bit.
    pub fn epoch_summaries(&self) -> Vec<EpochSummary> {
        self.live_epochs()
            .into_iter()
            .map(|epoch| {
                let store = self.epoch_store(epoch).expect("live epoch has a store");
                EpochSummary {
                    epoch,
                    samples: store.sample_count(),
                    cells: store.cell_count(),
                    digest: store.digest(),
                }
            })
            .collect()
    }

    /// Merge-on-read over the most recent `epochs_back` live epochs (all
    /// live epochs if larger): the sliding-window view analytics read
    /// without mutating the store.
    pub fn sliding_window(&self, epochs_back: usize) -> AggregateStore {
        let mut merged = AggregateStore::new();
        let epochs = self.live_epochs();
        for epoch in epochs.iter().rev().take(epochs_back.max(1)) {
            if let Some(store) = self.epoch_store(*epoch) {
                merged.merge_from(store);
            }
        }
        merged
    }

    /// Merge-on-read over everything: tail plus every live epoch, i.e. the
    /// plain [`AggregateStore`] a non-windowed sink would have produced.
    pub fn merged(&self) -> AggregateStore {
        let mut merged = self.folded.clone();
        for epoch in self.live_epochs() {
            if let Some(store) = self.epoch_store(epoch) {
                merged.merge_from(store);
            }
        }
        merged
    }

    /// A stable FNV-1a digest over the canonical windowed state (geometry,
    /// maximum epoch, folded tail, every live epoch in ascending order).
    /// Two stores are bit-identical iff their digests match.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.width_ns);
        h.write_u64(self.window as u64);
        h.write_u64(self.max_epoch.map_or(u64::MAX, |e| e));
        h.write_u64(self.folded.digest());
        let epochs = self.live_epochs();
        h.write_u64(epochs.len() as u64);
        for epoch in epochs {
            h.write_u64(epoch);
            h.write_u64(self.epoch_store(epoch).map_or(0, AggregateStore::digest));
        }
        h.finish()
    }

    /// Serialises the full windowed state to JSON;
    /// [`WindowedAggregateStore::from_json`] restores the bit-identical
    /// store. Part of the fleet checkpoint format.
    pub fn to_json(&self) -> mop_json::Value {
        let epochs: Vec<mop_json::Value> = self
            .live_epochs()
            .into_iter()
            .map(|epoch| {
                let store = self.epoch_store(epoch).expect("live epoch has a store");
                mop_json::json!({ "epoch": epoch as i64, "store": store.to_json() })
            })
            .collect();
        mop_json::json!({
            "width_ns": self.width_ns as i64,
            "window": self.window as i64,
            "max_epoch": self.max_epoch.map_or(mop_json::Value::Null, |e| (e as i64).into()),
            "folded": self.folded.to_json(),
            "epochs": epochs,
        })
    }

    /// Restores a store serialised by [`WindowedAggregateStore::to_json`].
    /// `None` if any field is missing or malformed.
    pub fn from_json(value: &mop_json::Value) -> Option<Self> {
        let width_ns = value["width_ns"].as_u64()?;
        let window = usize::try_from(value["window"].as_u64()?).ok()?;
        let mut store = Self::new(width_ns, window);
        store.max_epoch = match &value["max_epoch"] {
            mop_json::Value::Null => None,
            v => Some(v.as_u64()?),
        };
        store.folded = AggregateStore::from_json(&value["folded"])?;
        for entry in value["epochs"].as_array()? {
            let epoch = entry["epoch"].as_u64()?;
            let slot = (epoch % store.window as u64) as usize;
            store.ring[slot] = Some((epoch, AggregateStore::from_json(&entry["store"])?));
        }
        Some(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(w: &mut WindowedAggregateStore, at_ns: u64, app: &str, rtt: f64) {
        w.observe_parts(
            at_ns,
            MeasurementKind::Tcp,
            NetKind::Wifi,
            app,
            "",
            "HomeWiFi",
            1,
            "",
            rtt,
        );
    }

    #[test]
    fn samples_land_in_their_epoch() {
        let mut w = WindowedAggregateStore::new(1_000, 8);
        stamp(&mut w, 0, "a", 10.0);
        stamp(&mut w, 999, "a", 11.0);
        stamp(&mut w, 1_000, "a", 12.0);
        assert_eq!(w.live_epochs(), vec![0, 1]);
        assert_eq!(w.epoch_store(0).unwrap().sample_count(), 2);
        assert_eq!(w.epoch_store(1).unwrap().sample_count(), 1);
        assert_eq!(w.sample_count(), 3);
    }

    #[test]
    fn eviction_folds_into_the_tail_without_losing_samples() {
        let mut w = WindowedAggregateStore::new(1_000, 3);
        for epoch in 0..10u64 {
            stamp(&mut w, epoch * 1_000, "a", 10.0 + epoch as f64);
        }
        assert_eq!(w.live_epochs(), vec![7, 8, 9]);
        assert_eq!(w.folded().sample_count(), 7);
        assert_eq!(w.sample_count(), 10);
        // The merged view equals a store that observed everything directly.
        let mut flat = AggregateStore::new();
        for epoch in 0..10u64 {
            flat.observe_parts(
                MeasurementKind::Tcp,
                NetKind::Wifi,
                "a",
                "",
                "HomeWiFi",
                1,
                "",
                10.0 + epoch as f64,
            );
        }
        assert_eq!(w.merged().digest(), flat.digest());
    }

    #[test]
    fn late_samples_older_than_the_window_fold_directly() {
        let mut w = WindowedAggregateStore::new(1_000, 2);
        stamp(&mut w, 9_000, "a", 10.0);
        stamp(&mut w, 0, "a", 99.0); // epoch 0, far behind the window
        assert_eq!(w.live_epochs(), vec![9]);
        assert_eq!(w.folded().sample_count(), 1);
        assert_eq!(w.sample_count(), 2);
    }

    #[test]
    fn merge_matches_direct_observation_and_any_order() {
        let samples: Vec<(u64, f64)> =
            (0..500u64).map(|i| ((i * 37) % 20 * 1_000, 10.0 + (i % 13) as f64)).collect();
        let mut whole = WindowedAggregateStore::new(1_000, 4);
        for (at, rtt) in &samples {
            stamp(&mut whole, *at, "a", *rtt);
        }
        let mut shards: Vec<WindowedAggregateStore> =
            (0..3).map(|_| WindowedAggregateStore::new(1_000, 4)).collect();
        for (i, (at, rtt)) in samples.iter().enumerate() {
            stamp(&mut shards[i % 3], *at, "a", *rtt);
        }
        let mut forward = WindowedAggregateStore::new(1_000, 4);
        for s in &shards {
            forward.merge_from(s);
        }
        let mut backward = WindowedAggregateStore::new(1_000, 4);
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        assert_eq!(forward.digest(), backward.digest());
        assert_eq!(forward.digest(), whole.digest());
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let mut w = WindowedAggregateStore::new(500, 3);
        for i in 0..40u64 {
            stamp(&mut w, i * 333, "a", 5.0 + i as f64);
        }
        let text = mop_json::to_string(&w.to_json());
        let back =
            WindowedAggregateStore::from_json(&mop_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.digest(), w.digest());
    }

    #[test]
    fn epoch_summaries_mirror_the_live_ring() {
        let mut w = WindowedAggregateStore::new(1_000, 4);
        for epoch in 0..6u64 {
            for i in 0..=epoch {
                stamp(&mut w, epoch * 1_000 + i, "a", 10.0 + i as f64);
            }
        }
        let summaries = w.epoch_summaries();
        assert_eq!(
            summaries.iter().map(|s| s.epoch).collect::<Vec<_>>(),
            w.live_epochs()
        );
        for s in &summaries {
            let store = w.epoch_store(s.epoch).unwrap();
            assert_eq!(s.samples, store.sample_count());
            assert_eq!(s.cells, store.cell_count());
            assert_eq!(s.digest, store.digest());
        }
        assert!(WindowedAggregateStore::new(1_000, 4).epoch_summaries().is_empty());
    }

    #[test]
    fn empty_store_reports_nothing() {
        let w = WindowedAggregateStore::new(1_000, 4);
        assert!(w.is_empty());
        assert_eq!(w.live_epochs(), Vec::<u64>::new());
        assert_eq!(w.sample_count(), 0);
        assert_eq!(w.max_epoch(), None);
        let back =
            WindowedAggregateStore::from_json(&mop_json::from_str(
                &mop_json::to_string(&w.to_json()),
            ).unwrap())
            .unwrap();
        assert_eq!(back.digest(), w.digest());
    }
}
