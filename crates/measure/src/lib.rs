//! Measurement records, stores, sketches and statistics for the MopEye
//! reproduction.
//!
//! Everything the crowdsourcing analysis in §4.2 of the paper does reduces to
//! operations over a large collection of RTT measurements: filter by network
//! type, ISP, app or domain; compute medians and CDFs; bucket contribution
//! counts. This crate provides those pieces in two flavours — a batch store
//! that retains every record, and a streaming aggregate that folds records
//! into constant-memory sketches as they arrive:
//!
//! * [`record`] — [`record::RttRecord`], one measurement with its full
//!   context (device, app, domain, ISP, network type, country),
//! * [`store`] — [`store::MeasurementStore`], an in-memory collection with
//!   filtering, grouping and JSON export (memory grows with samples),
//! * [`sketch`] — [`sketch::RttSketch`], a deterministic mergeable
//!   log-bucket quantile sketch (constant memory, ≤ 1 % quantile error,
//!   bit-identical under any merge order),
//! * [`aggregate`] — [`aggregate::AggregateStore`], sketches keyed by
//!   (app, measurement kind, network, ISP) plus a per-device plane — the
//!   shard-sink aggregation the fleet pipeline reports from,
//! * [`window`] — [`window::WindowedAggregateStore`], ring-buffered
//!   per-epoch aggregate windows with a merged tail — the time axis for
//!   longitudinal runs (bounded memory, merge-order invariant),
//! * [`stats`] — medians, percentiles, CDFs and histogram buckets.
//!
//! # Examples
//!
//! The streaming path: fold records into aggregates at two independent
//! sinks, merge, and read a per-ISP median without ever holding the sample
//! vectors:
//!
//! ```
//! use mop_measure::{AggregateStore, NetKind, RttRecord};
//!
//! let (mut sink_a, mut sink_b) = (AggregateStore::new(), AggregateStore::new());
//! for i in 0..500u32 {
//!     let record = RttRecord::tcp(180.0 + f64::from(i % 60), i % 7, "com.whatsapp", NetKind::Lte)
//!         .with_isp(if i % 2 == 0 { "Jio 4G" } else { "Verizon" });
//!     if i % 2 == 0 { sink_a.observe(&record) } else { sink_b.observe(&record) }
//! }
//! sink_a.merge_from(&sink_b);
//! let jio = sink_a.median_where(|key| key.isp == "Jio 4G").unwrap();
//! assert!(jio > 150.0);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod record;
pub mod sketch;
pub mod stats;
pub mod store;
pub mod window;

pub use aggregate::{AggregateKey, AggregateStore, DeviceActivity};
pub use record::{MeasurementKind, NetKind, RttRecord};
pub use sketch::RttSketch;
pub use stats::{percentile, Cdf, ConfidenceInterval, Histogram, Summary};
pub use store::MeasurementStore;
pub use window::{EpochSummary, WindowedAggregateStore};
