//! Measurement records, stores and statistics for the MopEye reproduction.
//!
//! Everything the crowdsourcing analysis in §4.2 of the paper does reduces to
//! operations over a large collection of RTT records: filter by network type,
//! ISP, app or domain; compute medians and CDFs; bucket contribution counts.
//! This crate provides those pieces:
//!
//! * [`record`] — [`record::RttRecord`], one measurement with its full
//!   context (device, app, domain, ISP, network type, country),
//! * [`store`] — [`store::MeasurementStore`], an in-memory collection with
//!   filtering, grouping and JSON export,
//! * [`stats`] — medians, percentiles, CDFs and histogram buckets.

pub mod record;
pub mod stats;
pub mod store;

pub use record::{MeasurementKind, NetKind, RttRecord};
pub use stats::{percentile, Cdf, ConfidenceInterval, Histogram, Summary};
pub use store::MeasurementStore;
