//! The measurement store: an in-memory collection of records with the
//! filtering and grouping operations the §4.2 analyses are built from.

use std::collections::BTreeMap;

use crate::record::{MeasurementKind, RttRecord};
use crate::stats::{Cdf, Summary};

/// An in-memory collection of [`RttRecord`]s.
#[derive(Debug, Default, Clone)]
pub struct MeasurementStore {
    records: Vec<RttRecord>,
}

impl MeasurementStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store from existing records.
    pub fn from_records(records: Vec<RttRecord>) -> Self {
        Self { records }
    }

    /// Adds one record.
    pub fn push(&mut self, record: RttRecord) {
        self.records.push(record);
    }

    /// Adds many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = RttRecord>) {
        self.records.extend(records);
    }

    /// Absorbs another store's records (cross-shard aggregation: each shard
    /// of a fleet run collects its own store, and the measurement sink folds
    /// them together with this).
    ///
    /// # Ordering contract
    ///
    /// `merge_from` **appends** `other`'s records after this store's, in
    /// `other`'s existing order — it does not interleave or sort. The
    /// resulting order therefore depends on the merge order, and two stores
    /// holding the same records merged from differently-partitioned shards
    /// are *not* equal until [`MeasurementStore::canonicalise`] has run on
    /// both. Callers that compare stores (or digest them, as the
    /// `fleet_determinism` suite does for the engine's report-level state)
    /// must canonicalise after the last merge.
    pub fn merge_from(&mut self, other: MeasurementStore) {
        self.records.extend(other.records);
    }

    /// Sorts the records into the canonical total order, so stores merged
    /// from differently-partitioned shards compare equal.
    ///
    /// # Ordering contract
    ///
    /// The canonical order is the lexicographic tuple
    /// `(timestamp_s, device, app, domain, rtt_ms.to_bits())`, ascending.
    /// Two guarantees follow:
    ///
    /// * **Partition invariance.** For any partition of a record set across
    ///   shards, merging the parts with [`MeasurementStore::merge_from`] (in
    ///   any order) and canonicalising yields the same record sequence as
    ///   canonicalising the unpartitioned set — the property the fleet
    ///   determinism tests rely on.
    /// * **Stability of duplicates.** Records identical in all five key
    ///   fields are mutually interchangeable under this order, so their
    ///   relative placement cannot affect any comparison or digest. RTT ties
    ///   are broken on the *bit pattern* of the `f64` (total order, no NaN
    ///   ambiguity), not on an epsilon comparison.
    ///
    /// Fields outside the tuple (`dst_ip`, `dst_port`, `isp`, `country`,
    /// `kind`) do not participate in the order; records differing only in
    /// those fields keep their merge-dependent relative order. Every
    /// producer in this workspace derives them deterministically from the
    /// keyed fields, which is why the weaker tuple is sufficient — but a new
    /// producer that violates that assumption must extend the sort key.
    pub fn canonicalise(&mut self) {
        self.records.sort_by(|a, b| {
            (a.timestamp_s, a.device, &a.app, &a.domain, a.rtt_ms.to_bits()).cmp(&(
                b.timestamp_s,
                b.device,
                &b.app,
                &b.domain,
                b.rtt_ms.to_bits(),
            ))
        });
    }

    /// All records.
    pub fn records(&self) -> &[RttRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one measurement kind.
    pub fn of_kind(&self, kind: MeasurementKind) -> Vec<&RttRecord> {
        self.records.iter().filter(|r| r.kind == kind).collect()
    }

    /// A filtered copy containing only records matching `predicate`.
    pub fn filter(&self, predicate: impl Fn(&RttRecord) -> bool) -> MeasurementStore {
        MeasurementStore {
            records: self.records.iter().filter(|r| predicate(r)).cloned().collect(),
        }
    }

    /// RTT values (ms) of records matching `predicate`.
    pub fn rtts_where(&self, predicate: impl Fn(&RttRecord) -> bool) -> Vec<f64> {
        self.records.iter().filter(|r| predicate(r)).map(|r| r.rtt_ms).collect()
    }

    /// RTT values of all TCP records.
    pub fn tcp_rtts(&self) -> Vec<f64> {
        self.rtts_where(|r| r.kind == MeasurementKind::Tcp)
    }

    /// RTT values of all DNS records.
    pub fn dns_rtts(&self) -> Vec<f64> {
        self.rtts_where(|r| r.kind == MeasurementKind::Dns)
    }

    /// The median RTT of records matching `predicate`, if any match.
    pub fn median_where(&self, predicate: impl Fn(&RttRecord) -> bool) -> Option<f64> {
        let rtts = self.rtts_where(predicate);
        Cdf::from_values(&rtts).median()
    }

    /// A CDF of the RTTs of records matching `predicate`.
    pub fn cdf_where(&self, predicate: impl Fn(&RttRecord) -> bool) -> Cdf {
        Cdf::from_values(&self.rtts_where(predicate))
    }

    /// Groups record RTTs by a key function; keys are returned sorted.
    pub fn group_rtts_by<K: Ord + Clone>(
        &self,
        key: impl Fn(&RttRecord) -> K,
        predicate: impl Fn(&RttRecord) -> bool,
    ) -> BTreeMap<K, Vec<f64>> {
        let mut groups: BTreeMap<K, Vec<f64>> = BTreeMap::new();
        for r in self.records.iter().filter(|r| predicate(r)) {
            groups.entry(key(r)).or_default().push(r.rtt_ms);
        }
        groups
    }

    /// Measurement counts per app (TCP records only).
    pub fn counts_per_app(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for r in self.records.iter().filter(|r| r.kind == MeasurementKind::Tcp) {
            *counts.entry(r.app.clone()).or_default() += 1;
        }
        counts
    }

    /// Measurement counts per device (all records).
    pub fn counts_per_device(&self) -> BTreeMap<u32, u64> {
        let mut counts = BTreeMap::new();
        for r in &self.records {
            *counts.entry(r.device).or_default() += 1;
        }
        counts
    }

    /// Device counts per country.
    pub fn devices_per_country(&self) -> BTreeMap<String, u64> {
        let mut devices: BTreeMap<String, std::collections::BTreeSet<u32>> = BTreeMap::new();
        for r in &self.records {
            devices.entry(r.country.clone()).or_default().insert(r.device);
        }
        devices.into_iter().map(|(c, set)| (c, set.len() as u64)).collect()
    }

    /// A per-group summary of RTTs, keyed by a string key.
    pub fn summaries_by(
        &self,
        key: impl Fn(&RttRecord) -> String,
        predicate: impl Fn(&RttRecord) -> bool,
    ) -> BTreeMap<String, Summary> {
        self.group_rtts_by(key, predicate)
            .into_iter()
            .filter_map(|(k, v)| Summary::of(&v).map(|s| (k, s)))
            .collect()
    }

    /// Distinct values of a string field, sorted.
    pub fn distinct(&self, field: impl Fn(&RttRecord) -> &str) -> Vec<String> {
        let mut set: Vec<String> =
            self.records.iter().map(|r| field(r).to_string()).filter(|s| !s.is_empty()).collect();
        set.sort();
        set.dedup();
        set
    }

    /// Serialises all records to JSON lines.
    pub fn to_json_lines(&self) -> String {
        self.records
            .iter()
            .map(|r| mop_json::to_string(&r.to_json()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses records from JSON lines, skipping malformed lines.
    pub fn from_json_lines(text: &str) -> Self {
        let records = text
            .lines()
            .filter_map(|line| mop_json::from_str(line).ok())
            .filter_map(|value| RttRecord::from_json(&value))
            .collect();
        Self { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NetKind;

    fn store() -> MeasurementStore {
        let mut s = MeasurementStore::new();
        // Two devices, three apps, two countries, a mix of WiFi/LTE and DNS.
        for i in 0..50u32 {
            s.push(
                RttRecord::tcp(50.0 + f64::from(i), 1, "com.facebook.katana", NetKind::Wifi)
                    .with_domain("graph.facebook.com")
                    .with_isp("HomeWiFi")
                    .with_country("USA"),
            );
        }
        for i in 0..30u32 {
            s.push(
                RttRecord::tcp(250.0 + f64::from(i), 2, "com.whatsapp", NetKind::Lte)
                    .with_domain("e3.whatsapp.net")
                    .with_isp("Jio 4G")
                    .with_country("India"),
            );
        }
        for i in 0..20u32 {
            s.push(
                RttRecord::dns(40.0 + f64::from(i), 2, NetKind::Lte)
                    .with_isp("Jio 4G")
                    .with_country("India"),
            );
        }
        s
    }

    #[test]
    fn counts_and_kinds() {
        let s = store();
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.of_kind(MeasurementKind::Tcp).len(), 80);
        assert_eq!(s.of_kind(MeasurementKind::Dns).len(), 20);
        assert_eq!(s.tcp_rtts().len(), 80);
        assert_eq!(s.dns_rtts().len(), 20);
    }

    #[test]
    fn medians_and_filters() {
        let s = store();
        let wifi_median = s.median_where(|r| r.network == NetKind::Wifi).unwrap();
        assert!((wifi_median - 74.5).abs() < 1.0);
        let whatsapp = s.filter(|r| r.app == "com.whatsapp");
        assert_eq!(whatsapp.len(), 30);
        assert!(whatsapp.median_where(|_| true).unwrap() > 200.0);
        assert!(s.median_where(|r| r.app == "com.nonexistent").is_none());
    }

    #[test]
    fn grouping_by_isp_and_app() {
        let s = store();
        let by_isp = s.group_rtts_by(|r| r.isp.clone(), |r| r.kind == MeasurementKind::Dns);
        assert_eq!(by_isp.len(), 1);
        assert_eq!(by_isp["Jio 4G"].len(), 20);
        let per_app = s.counts_per_app();
        assert_eq!(per_app["com.facebook.katana"], 50);
        assert_eq!(per_app["com.whatsapp"], 30);
        let per_device = s.counts_per_device();
        assert_eq!(per_device[&1], 50);
        assert_eq!(per_device[&2], 50);
        let by_country = s.devices_per_country();
        assert_eq!(by_country["USA"], 1);
        assert_eq!(by_country["India"], 1);
    }

    #[test]
    fn summaries_and_distinct() {
        let s = store();
        let summaries = s.summaries_by(|r| r.app.clone(), |r| r.kind == MeasurementKind::Tcp);
        assert_eq!(summaries.len(), 2);
        assert!(summaries["com.whatsapp"].median > summaries["com.facebook.katana"].median);
        assert_eq!(s.distinct(|r| &r.country), vec!["India", "USA"]);
        assert_eq!(s.distinct(|r| &r.isp).len(), 2);
    }

    #[test]
    fn cdf_where_reflects_filter() {
        let s = store();
        let cdf = s.cdf_where(|r| r.network == NetKind::Lte && r.kind == MeasurementKind::Tcp);
        assert_eq!(cdf.len(), 30);
        assert_eq!(cdf.fraction_at_or_below(100.0), 0.0);
    }

    #[test]
    fn json_lines_roundtrip() {
        let s = store();
        let text = s.to_json_lines();
        let back = MeasurementStore::from_json_lines(&text);
        assert_eq!(back.len(), s.len());
        assert_eq!(back.records()[0], s.records()[0]);
        // Malformed lines are skipped.
        let partial = MeasurementStore::from_json_lines("not json\n{}\n");
        assert_eq!(partial.len(), 0);
    }

    #[test]
    fn merge_from_and_canonicalise_are_partition_invariant() {
        let full = store();
        // Split the records across three "shards" by index, merge back in a
        // different order, and canonicalise both sides.
        let mut shards = vec![MeasurementStore::new(), MeasurementStore::new(), MeasurementStore::new()];
        for (i, r) in full.records().iter().enumerate() {
            shards[i % 3].push(r.clone());
        }
        let mut merged = MeasurementStore::new();
        for shard in shards.into_iter().rev() {
            merged.merge_from(shard);
        }
        merged.canonicalise();
        let mut reference = full.clone();
        reference.canonicalise();
        assert_eq!(merged.records(), reference.records());
    }

    #[test]
    fn from_records_constructor() {
        let records = vec![RttRecord::tcp(10.0, 1, "a", NetKind::Wifi)];
        let s = MeasurementStore::from_records(records);
        assert_eq!(s.len(), 1);
    }
}
