//! A deterministic, mergeable quantile sketch for RTT samples.
//!
//! The crowdsourcing analyses (§4.2 of the paper) are all order statistics —
//! medians, CDF fractions, percentiles — over very large sample sets. Keeping
//! every sample costs memory and merge time proportional to the deployment,
//! which is exactly what a "millions of users" pipeline cannot afford. An
//! [`RttSketch`] replaces the sample vector with a fixed-boundary log-bucket
//! histogram:
//!
//! * **Constant memory.** At most [`RttSketch::MAX_BUCKETS`] buckets exist,
//!   whatever the sample count; a typical per-app cell occupies a few dozen.
//! * **Bounded quantile error.** Every reported quantile is the
//!   representative value of the bucket containing the exact order statistic,
//!   at most [`RttSketch::RELATIVE_ERROR`] (1 %) away from it in relative
//!   terms — for observations inside the sketch's resolution range of
//!   ~31 µs to ~17.5 min, which covers every RTT the relay can produce.
//!   Values outside it land in the under/overflow buckets, where quantiles
//!   are clamped to the exact `[min, max]` but carry no relative-error
//!   bound. `count`, `sum` (at 1 ns resolution), `min` and `max` are always
//!   exact.
//! * **Deterministic, order-free merging.** Bucket boundaries are fixed
//!   functions of the value (no per-sketch calibration), and all accumulator
//!   state is integral, so merging any partition of a sample set in any
//!   order produces the *bit-identical* sketch. That is the property the
//!   sharded fleet engine's cross-shard merge relies on.
//!
//! Bucket boundaries are log-linear, HDR-histogram style: each power of two
//! of milliseconds is split into 64 equal-width linear
//! subbuckets. Bucket indices are computed from the raw bits of the `f64`
//! (exponent plus the top mantissa bits), so no transcendental functions are
//! involved and the mapping is exact on every platform.
//!
//! # Examples
//!
//! ```
//! use mop_measure::RttSketch;
//!
//! // Two shards observe disjoint halves of the same samples...
//! let (mut a, mut b) = (RttSketch::new(), RttSketch::new());
//! for ms in 1..=1000 {
//!     if ms % 2 == 0 { a.observe(ms as f64) } else { b.observe(ms as f64) }
//! }
//! // ...and the merge, in either order, is the same sketch.
//! let mut ab = a.clone();
//! ab.merge_from(&b);
//! let mut ba = b.clone();
//! ba.merge_from(&a);
//! assert_eq!(ab, ba);
//! assert_eq!(ab.count(), 1000);
//! let median = ab.median().unwrap();
//! assert!((median - 500.0).abs() / 500.0 < 0.01, "median {median}");
//! ```

use std::collections::BTreeMap;

/// Number of linear subbuckets per power of two. 64 subbuckets bound the
/// relative width of one bucket by 1/64 ≈ 1.6 %, so the bucket midpoint is
/// within 0.79 % of any value in the bucket — comfortably inside the 1 %
/// error budget.
const SUBBUCKETS: u64 = 64;
/// log2(SUBBUCKETS), the mantissa bits that select the subbucket.
const SUBBUCKET_BITS: u32 = 6;
/// Values below this (in ms) land in the underflow bucket. 2^-5 ms = ~31 µs,
/// far below any RTT the relay can measure.
const MIN_MS: f64 = 0.03125;
/// Values above this (in ms) land in the overflow bucket. 2^20 ms ≈ 17.5
/// minutes, far above any RTT the relay reports.
const MAX_MS: f64 = 1_048_576.0;
/// Exponent (biased) of `MIN_MS`, the origin of the bucket index space.
const MIN_EXPONENT: i32 = -5;
/// Number of powers of two between `MIN_MS` and `MAX_MS`.
const OCTAVES: u64 = 25;
/// Nanoseconds-per-millisecond fixed-point scale of the exact sum.
const SUM_SCALE: f64 = 1_000_000.0;

/// A mergeable fixed-boundary log-bucket histogram of RTT values in
/// milliseconds. See the [module docs](self) for the guarantees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RttSketch {
    /// Sparse bucket counts, keyed by bucket index. Index 0 is the underflow
    /// bucket; the last index is the overflow bucket.
    buckets: BTreeMap<u16, u64>,
    /// Total observations.
    count: u64,
    /// Exact sum of all observed values, in nanoseconds (integral so that
    /// merges are associative and commutative bit-for-bit).
    sum_ns: u128,
    /// Raw bits of the smallest observed value (positive finite `f64`s order
    /// the same as their bit patterns). `u64::MAX` while empty.
    min_bits: u64,
    /// Raw bits of the largest observed value. `0` while empty.
    max_bits: u64,
}

/// Index of the first regular (non-underflow) bucket.
const FIRST_REGULAR: u16 = 1;

/// Index of the overflow bucket.
const OVERFLOW: u16 = FIRST_REGULAR + (OCTAVES * SUBBUCKETS) as u16;

impl RttSketch {
    /// The guaranteed bound on the relative error of any reported quantile,
    /// for observations inside the sketch's resolution range (~31 µs to
    /// ~17.5 min; see the [module docs](self) for what happens outside it).
    pub const RELATIVE_ERROR: f64 = 0.01;

    /// The largest number of buckets a sketch can ever hold (underflow +
    /// `OCTAVES × SUBBUCKETS` regular buckets + overflow): the constant that
    /// makes its memory independent of the sample count.
    pub const MAX_BUCKETS: usize = OVERFLOW as usize + 1;

    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self { buckets: BTreeMap::new(), count: 0, sum_ns: 0, min_bits: u64::MAX, max_bits: 0 }
    }

    /// The bucket index of a value already clamped to `[MIN_MS, MAX_MS)`:
    /// the octave (exponent above `MIN_EXPONENT`) times `SUBBUCKETS`, plus
    /// the subbucket selected by the top mantissa bits. Pure bit
    /// manipulation — exact and identical on every platform.
    fn index_of(ms: f64) -> u16 {
        if ms < MIN_MS {
            return 0;
        }
        if ms >= MAX_MS {
            return OVERFLOW;
        }
        let bits = ms.to_bits();
        let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let subbucket = (bits >> (52 - SUBBUCKET_BITS)) & (SUBBUCKETS - 1);
        let octave = (exponent - MIN_EXPONENT) as u64;
        FIRST_REGULAR + (octave * SUBBUCKETS + subbucket) as u16
    }

    /// The representative value reported for a bucket: the arithmetic
    /// midpoint of its edges, which is within `RELATIVE_ERROR` of every
    /// value the bucket can contain.
    fn representative(index: u16) -> f64 {
        if index == 0 {
            return MIN_MS;
        }
        if index >= OVERFLOW {
            return MAX_MS;
        }
        let linear = u64::from(index - FIRST_REGULAR);
        let octave = linear / SUBBUCKETS;
        let subbucket = linear % SUBBUCKETS;
        let base = MIN_MS * (1u64 << octave) as f64;
        let width = base / SUBBUCKETS as f64;
        base + width * (subbucket as f64 + 0.5)
    }

    /// The exclusive upper edge of a bucket (used by the invariant tests).
    #[cfg(test)]
    fn upper_edge(index: u16) -> f64 {
        if index == 0 {
            return MIN_MS;
        }
        if index >= OVERFLOW {
            return f64::INFINITY;
        }
        let linear = u64::from(index - FIRST_REGULAR);
        let octave = linear / SUBBUCKETS;
        let subbucket = linear % SUBBUCKETS;
        let base = MIN_MS * (1u64 << octave) as f64;
        base + base / SUBBUCKETS as f64 * (subbucket as f64 + 1.0)
    }

    /// Folds one RTT value (milliseconds) into the sketch. Non-finite and
    /// negative values are ignored — they carry no measurement.
    pub fn observe(&mut self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        *self.buckets.entry(Self::index_of(ms)).or_insert(0) += 1;
        self.count += 1;
        self.sum_ns += (ms * SUM_SCALE).round() as u128;
        let bits = ms.to_bits();
        self.min_bits = self.min_bits.min(bits);
        self.max_bits = self.max_bits.max(bits);
    }

    /// Merges another sketch into this one. Integral element-wise addition,
    /// so any merge order over any partition of the same observations yields
    /// the bit-identical result.
    pub fn merge_from(&mut self, other: &RttSketch) {
        for (&index, &count) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += count;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_bits = self.min_bits.min(other.min_bits);
        self.max_bits = self.max_bits.max(other.max_bits);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of the observations, in milliseconds (accumulated at 1 ns
    /// resolution).
    pub fn sum_ms(&self) -> f64 {
        self.sum_ns as f64 / SUM_SCALE
    }

    /// Exact arithmetic mean, if any values were observed.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ms() / self.count as f64)
    }

    /// Exact minimum observed value.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then(|| f64::from_bits(self.min_bits))
    }

    /// Exact maximum observed value.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then(|| f64::from_bits(self.max_bits))
    }

    /// The `q`-quantile (`0.0..=1.0`) of the observations: the representative
    /// value of the bucket containing the nearest-rank order statistic,
    /// clamped to the exact `[min, max]` range. Within
    /// [`RttSketch::RELATIVE_ERROR`] of that order statistic when it lies in
    /// the sketch's resolution range (order statistics in the under/overflow
    /// buckets are only clamped to the exact extremes); `q = 0` and `q = 1`
    /// are exact. `None` if the sketch is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank (0-based) target, matching the order statistic that
        // `mop_measure::percentile` interpolates around.
        let rank = (q * (self.count - 1) as f64).round() as u64;
        if rank == 0 {
            return self.min();
        }
        if rank == self.count - 1 {
            return self.max();
        }
        let mut cumulative = 0u64;
        for (&index, &count) in &self.buckets {
            cumulative += count;
            if cumulative > rank {
                let rep = Self::representative(index);
                return Some(rep.clamp(self.min().unwrap_or(rep), self.max().unwrap_or(rep)));
            }
        }
        self.max()
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The fraction of observations at or below `x`. The reported fraction
    /// equals the exact fraction evaluated at some `x'` within one bucket
    /// width (≤ 2 × [`RttSketch::RELATIVE_ERROR`]) of `x` — the horizontal
    /// error bound a fixed-bucket CDF provides.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if let Some(min) = self.min() {
            if x < min {
                return 0.0;
            }
        }
        if let Some(max) = self.max() {
            if x >= max {
                return 1.0;
            }
        }
        let limit = Self::index_of(x.max(0.0));
        let below: u64 = self
            .buckets
            .iter()
            .take_while(|(&index, _)| index <= limit)
            .map(|(_, &count)| count)
            .sum();
        below as f64 / self.count as f64
    }

    /// Evaluates the sketch's CDF at evenly spaced points over `[0, x_max]`,
    /// producing `(x, F(x))` pairs — the series a figure plots, mirroring
    /// [`crate::Cdf::series`].
    pub fn series(&self, x_max: f64, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = x_max * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// Number of occupied buckets — the sketch's actual footprint, bounded
    /// by [`RttSketch::MAX_BUCKETS`] regardless of the observation count.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Serialises the full sketch state to JSON. The exact accumulators
    /// (`sum_ns`, `min_bits`, `max_bits`) are hex-encoded strings because
    /// `mop_json` integers are `i64` — bit patterns above `i64::MAX` would
    /// silently lose precision as floats otherwise. [`RttSketch::from_json`]
    /// restores the bit-identical sketch.
    pub fn to_json(&self) -> mop_json::Value {
        let buckets: Vec<mop_json::Value> = self
            .buckets
            .iter()
            .map(|(&index, &count)| mop_json::json!([i64::from(index), count as i64]))
            .collect();
        mop_json::json!({
            "count": self.count as i64,
            "sum_ns": format!("{:032x}", self.sum_ns),
            "min_bits": format!("{:016x}", self.min_bits),
            "max_bits": format!("{:016x}", self.max_bits),
            "buckets": buckets,
        })
    }

    /// Restores a sketch serialised by [`RttSketch::to_json`]. `None` if any
    /// field is missing or malformed.
    pub fn from_json(value: &mop_json::Value) -> Option<Self> {
        let mut buckets = BTreeMap::new();
        for entry in value["buckets"].as_array()? {
            let pair = entry.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let index = u16::try_from(pair[0].as_i64()?).ok()?;
            buckets.insert(index, pair[1].as_u64()?);
        }
        Some(Self {
            buckets,
            count: value["count"].as_u64()?,
            sum_ns: u128::from_str_radix(value["sum_ns"].as_str()?, 16).ok()?,
            min_bits: u64::from_str_radix(value["min_bits"].as_str()?, 16).ok()?,
            max_bits: u64::from_str_radix(value["max_bits"].as_str()?, 16).ok()?,
        })
    }

    /// A stable FNV-1a digest of the full sketch state (buckets, count, sum,
    /// min/max bits). Two sketches are bit-identical iff their digests match
    /// — the one-line check the merge-determinism tests use.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.count);
        h.write_u64((self.sum_ns >> 64) as u64);
        h.write_u64(self.sum_ns as u64);
        h.write_u64(self.min_bits);
        h.write_u64(self.max_bits);
        for (&index, &count) in &self.buckets {
            h.write_u64(u64::from(index));
            h.write_u64(count);
        }
        h.finish()
    }
}

impl Extend<f64> for RttSketch {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.observe(v);
        }
    }
}

impl FromIterator<f64> for RttSketch {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut sketch = Self::new();
        sketch.extend(iter);
        sketch
    }
}

/// A minimal FNV-1a accumulator (kept local so `mop_measure` stays free of
/// simulator and packet dependencies).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0u16;
        let mut v = MIN_MS / 2.0;
        while v < MAX_MS * 2.0 {
            let idx = RttSketch::index_of(v);
            assert!(idx >= last, "index must not decrease: {v} -> {idx} after {last}");
            assert!((idx as usize) < RttSketch::MAX_BUCKETS);
            last = idx;
            v *= 1.003;
        }
        assert_eq!(RttSketch::index_of(0.0), 0);
        assert_eq!(RttSketch::index_of(MAX_MS * 10.0), OVERFLOW);
    }

    #[test]
    fn representative_lies_inside_the_bucket() {
        let mut v = MIN_MS;
        while v < MAX_MS {
            let idx = RttSketch::index_of(v);
            let rep = RttSketch::representative(idx);
            let upper = RttSketch::upper_edge(idx);
            assert!(rep <= upper, "rep {rep} above upper edge {upper} for {v}");
            let err = (rep - v).abs() / v;
            assert!(err <= RttSketch::RELATIVE_ERROR, "value {v} rep {rep} err {err}");
            v *= 1.007;
        }
    }

    #[test]
    fn count_sum_min_max_are_exact() {
        let values = [0.5, 3.25, 100.0, 99.75, 760.5];
        let sketch: RttSketch = values.iter().copied().collect();
        assert_eq!(sketch.count(), 5);
        assert_eq!(sketch.min(), Some(0.5));
        assert_eq!(sketch.max(), Some(760.5));
        let exact_sum: f64 = values.iter().sum();
        assert!((sketch.sum_ms() - exact_sum).abs() < 1e-3);
        assert!((sketch.mean().unwrap() - exact_sum / 5.0).abs() < 1e-3);
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64 / 7.0).collect();
        let sketch: RttSketch = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = sorted[(q * (sorted.len() - 1) as f64).round() as usize];
            let approx = sketch.quantile(q).unwrap();
            let err = (approx - exact).abs() / exact;
            assert!(err <= RttSketch::RELATIVE_ERROR, "q {q}: exact {exact} approx {approx}");
        }
        assert_eq!(sketch.quantile(0.0), sketch.min());
        assert_eq!(sketch.quantile(1.0), sketch.max());
    }

    #[test]
    fn fraction_and_series_are_monotone() {
        let sketch: RttSketch = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(sketch.fraction_at_or_below(0.1), 0.0);
        assert_eq!(sketch.fraction_at_or_below(5000.0), 1.0);
        let half = sketch.fraction_at_or_below(500.0);
        assert!((half - 0.5).abs() < 0.02, "fraction at 500: {half}");
        let series = sketch.series(1000.0, 21);
        assert_eq!(series.len(), 21);
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn merging_any_partition_is_bit_identical() {
        let values: Vec<f64> = (0..5000).map(|i| 1.0 + (i % 997) as f64 * 0.73).collect();
        let whole: RttSketch = values.iter().copied().collect();
        // Three shards, merged in both orders.
        let mut shards = vec![RttSketch::new(), RttSketch::new(), RttSketch::new()];
        for (i, v) in values.iter().enumerate() {
            shards[i % 3].observe(*v);
        }
        let mut forward = RttSketch::new();
        for s in &shards {
            forward.merge_from(s);
        }
        let mut backward = RttSketch::new();
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward, whole);
        assert_eq!(forward.digest(), whole.digest());
    }

    #[test]
    fn empty_sketch_reports_nothing() {
        let sketch = RttSketch::new();
        assert!(sketch.is_empty());
        assert_eq!(sketch.median(), None);
        assert_eq!(sketch.min(), None);
        assert_eq!(sketch.max(), None);
        assert_eq!(sketch.mean(), None);
        assert_eq!(sketch.fraction_at_or_below(100.0), 0.0);
        assert_eq!(sketch.occupied_buckets(), 0);
    }

    #[test]
    fn out_of_range_and_invalid_values() {
        let mut sketch = RttSketch::new();
        sketch.observe(f64::NAN);
        sketch.observe(f64::INFINITY);
        sketch.observe(-5.0);
        assert!(sketch.is_empty(), "invalid values must be ignored");
        sketch.observe(0.000001); // underflow bucket, min still exact
        sketch.observe(10_000_000.0); // overflow bucket, max still exact
        assert_eq!(sketch.count(), 2);
        assert_eq!(sketch.min(), Some(0.000001));
        assert_eq!(sketch.max(), Some(10_000_000.0));
        // Quantiles stay inside the exact range even for clamped buckets.
        let q = sketch.quantile(0.5).unwrap();
        assert!((0.000001..=10_000_000.0).contains(&q));
    }

    #[test]
    fn memory_is_bounded_by_the_bucket_space() {
        let mut sketch = RttSketch::new();
        for i in 0..200_000u64 {
            sketch.observe(0.01 + (i % 40_000) as f64 * 0.05);
        }
        assert!(sketch.occupied_buckets() <= RttSketch::MAX_BUCKETS);
        assert_eq!(sketch.count(), 200_000);
    }
}
