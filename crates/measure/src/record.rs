//! The measurement record type.


/// Whether a measurement timed a TCP handshake or a DNS exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MeasurementKind {
    /// SYN ↔ SYN/ACK of an app's TCP connection.
    Tcp,
    /// DNS query ↔ response.
    Dns,
}

/// The access-network technology a measurement was taken on.
///
/// This mirrors `mop_simnet::NetworkType` but is defined independently so the
/// measurement schema has no dependency on the simulator (records could come
/// from a real deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetKind {
    /// 802.11 WiFi.
    Wifi,
    /// 4G LTE.
    Lte,
    /// 3G UMTS/HSPA.
    Umts3g,
    /// 2G GPRS/EDGE.
    Gprs2g,
}

impl MeasurementKind {
    pub(crate) fn as_json_str(self) -> &'static str {
        match self {
            MeasurementKind::Tcp => "Tcp",
            MeasurementKind::Dns => "Dns",
        }
    }

    pub(crate) fn from_json_str(s: &str) -> Option<Self> {
        match s {
            "Tcp" => Some(MeasurementKind::Tcp),
            "Dns" => Some(MeasurementKind::Dns),
            _ => None,
        }
    }
}

impl NetKind {
    /// All variants in figure order.
    pub const ALL: [NetKind; 4] = [NetKind::Wifi, NetKind::Lte, NetKind::Umts3g, NetKind::Gprs2g];

    /// True for any cellular technology.
    pub fn is_cellular(self) -> bool {
        !matches!(self, NetKind::Wifi)
    }

    pub(crate) fn as_json_str(self) -> &'static str {
        match self {
            NetKind::Wifi => "Wifi",
            NetKind::Lte => "Lte",
            NetKind::Umts3g => "Umts3g",
            NetKind::Gprs2g => "Gprs2g",
        }
    }

    pub(crate) fn from_json_str(s: &str) -> Option<Self> {
        match s {
            "Wifi" => Some(NetKind::Wifi),
            "Lte" => Some(NetKind::Lte),
            "Umts3g" => Some(NetKind::Umts3g),
            "Gprs2g" => Some(NetKind::Gprs2g),
            _ => None,
        }
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            NetKind::Wifi => "WiFi",
            NetKind::Lte => "4G LTE",
            NetKind::Umts3g => "3G UMTS/HSPA(P)",
            NetKind::Gprs2g => "2G GPRS/EDGE",
        }
    }
}

/// One RTT measurement and its context, the unit of the crowdsourced dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct RttRecord {
    /// Measurement kind (TCP or DNS).
    pub kind: MeasurementKind,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Anonymous device identifier.
    pub device: u32,
    /// Package name of the app that generated the traffic (empty for DNS,
    /// which is system-wide, §2.2).
    pub app: String,
    /// Destination domain, when known.
    pub domain: String,
    /// Destination IP as text (empty if unknown).
    pub dst_ip: String,
    /// Destination port.
    pub dst_port: u16,
    /// Access-network type at measurement time.
    pub network: NetKind,
    /// Operator name (for cellular) or SSID-derived WiFi network name.
    pub isp: String,
    /// Country the device was in.
    pub country: String,
    /// Seconds since the start of the deployment.
    pub timestamp_s: u64,
}

impl RttRecord {
    /// Creates a TCP record with the required fields; optional context can be
    /// filled in afterwards.
    pub fn tcp(rtt_ms: f64, device: u32, app: &str, network: NetKind) -> Self {
        Self {
            kind: MeasurementKind::Tcp,
            rtt_ms,
            device,
            app: app.to_string(),
            domain: String::new(),
            dst_ip: String::new(),
            dst_port: 443,
            network,
            isp: String::new(),
            country: String::new(),
            timestamp_s: 0,
        }
    }

    /// Creates a DNS record.
    pub fn dns(rtt_ms: f64, device: u32, network: NetKind) -> Self {
        Self {
            kind: MeasurementKind::Dns,
            rtt_ms,
            device,
            app: String::new(),
            domain: String::new(),
            dst_ip: String::new(),
            dst_port: 53,
            network,
            isp: String::new(),
            country: String::new(),
            timestamp_s: 0,
        }
    }

    /// Sets the destination domain.
    pub fn with_domain(mut self, domain: &str) -> Self {
        self.domain = domain.to_ascii_lowercase();
        self
    }

    /// Sets the ISP name.
    pub fn with_isp(mut self, isp: &str) -> Self {
        self.isp = isp.to_string();
        self
    }

    /// Sets the country.
    pub fn with_country(mut self, country: &str) -> Self {
        self.country = country.to_string();
        self
    }

    /// Sets the destination IP and port.
    pub fn with_dst(mut self, ip: &str, port: u16) -> Self {
        self.dst_ip = ip.to_string();
        self.dst_port = port;
        self
    }

    /// Sets the timestamp (seconds since deployment start).
    pub fn with_timestamp(mut self, timestamp_s: u64) -> Self {
        self.timestamp_s = timestamp_s;
        self
    }

    /// Serialises the record to a single-line JSON object.
    pub fn to_json(&self) -> mop_json::Value {
        mop_json::json!({
            "kind": self.kind.as_json_str(),
            "rtt_ms": self.rtt_ms,
            "device": self.device,
            "app": &self.app,
            "domain": &self.domain,
            "dst_ip": &self.dst_ip,
            "dst_port": self.dst_port,
            "network": self.network.as_json_str(),
            "isp": &self.isp,
            "country": &self.country,
            "timestamp_s": self.timestamp_s,
        })
    }

    /// Parses a record from the object produced by [`RttRecord::to_json`].
    pub fn from_json(value: &mop_json::Value) -> Option<Self> {
        Some(Self {
            kind: MeasurementKind::from_json_str(value["kind"].as_str()?)?,
            rtt_ms: value["rtt_ms"].as_f64()?,
            device: u32::try_from(value["device"].as_u64()?).ok()?,
            app: value["app"].as_str()?.to_string(),
            domain: value["domain"].as_str()?.to_string(),
            dst_ip: value["dst_ip"].as_str()?.to_string(),
            dst_port: u16::try_from(value["dst_port"].as_u64()?).ok()?,
            network: NetKind::from_json_str(value["network"].as_str()?)?,
            isp: value["isp"].as_str()?.to_string(),
            country: value["country"].as_str()?.to_string(),
            timestamp_s: value["timestamp_s"].as_u64()?,
        })
    }

    /// The registrable parent domain ("e3.whatsapp.net" → "whatsapp.net"),
    /// used by the per-provider analyses.
    pub fn parent_domain(&self) -> &str {
        let parts: Vec<&str> = self.domain.rsplitn(3, '.').collect();
        if parts.len() >= 2 {
            // parts[0] is the TLD, parts[1] the registrable label; everything
            // up to the second dot from the right.
            let tail_len = parts[0].len() + parts[1].len() + 1;
            &self.domain[self.domain.len() - tail_len..]
        } else {
            &self.domain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_context() {
        let r = RttRecord::tcp(133.0, 42, "com.whatsapp", NetKind::Lte)
            .with_domain("E3.WhatsApp.NET")
            .with_isp("Jio 4G")
            .with_country("India")
            .with_dst("158.85.5.197", 443)
            .with_timestamp(86_400);
        assert_eq!(r.kind, MeasurementKind::Tcp);
        assert_eq!(r.domain, "e3.whatsapp.net");
        assert_eq!(r.parent_domain(), "whatsapp.net");
        assert_eq!(r.isp, "Jio 4G");
        assert_eq!(r.timestamp_s, 86_400);
        assert_eq!(r.dst_port, 443);
    }

    #[test]
    fn dns_records_have_no_app() {
        let r = RttRecord::dns(42.0, 7, NetKind::Wifi);
        assert_eq!(r.kind, MeasurementKind::Dns);
        assert!(r.app.is_empty());
        assert_eq!(r.dst_port, 53);
    }

    #[test]
    fn parent_domain_handles_short_names() {
        assert_eq!(RttRecord::tcp(1.0, 1, "a", NetKind::Wifi).with_domain("whatsapp.net").parent_domain(), "whatsapp.net");
        assert_eq!(RttRecord::tcp(1.0, 1, "a", NetKind::Wifi).with_domain("localhost").parent_domain(), "localhost");
        assert_eq!(
            RttRecord::tcp(1.0, 1, "a", NetKind::Wifi).with_domain("mme.whatsapp.net").parent_domain(),
            "whatsapp.net"
        );
        assert_eq!(
            RttRecord::tcp(1.0, 1, "a", NetKind::Wifi).with_domain("a.b.graph.facebook.com").parent_domain(),
            "facebook.com"
        );
    }

    #[test]
    fn net_kind_helpers() {
        assert!(NetKind::Lte.is_cellular());
        assert!(!NetKind::Wifi.is_cellular());
        assert_eq!(NetKind::Gprs2g.label(), "2G GPRS/EDGE");
        assert_eq!(NetKind::ALL.len(), 4);
    }

    #[test]
    fn json_roundtrip() {
        let r = RttRecord::tcp(61.0, 1, "com.facebook.katana", NetKind::Wifi).with_domain("graph.facebook.com");
        let json = mop_json::to_string(&r.to_json());
        let back = RttRecord::from_json(&mop_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, r);
        assert!(RttRecord::from_json(&mop_json::Value::Null).is_none());
        assert!(RttRecord::from_json(&mop_json::json!({"kind": "Tcp"})).is_none());
    }
}
