//! Streaming aggregation: per-(app, kind, network, ISP) RTT sketches.
//!
//! [`AggregateStore`] is the constant-memory counterpart of
//! [`crate::MeasurementStore`]: instead of retaining every
//! [`crate::RttRecord`], it folds each record into the [`crate::RttSketch`]
//! of its *cell* — the (measurement kind, network type, app, domain, ISP)
//! combination — as the record arrives at a measurement sink. Memory is
//! proportional to the number of distinct cells (apps × networks × ISPs),
//! not to the number of samples, and two stores built from any partition of
//! the same records merge to the bit-identical result in any order: both
//! properties the sharded fleet pipeline needs.
//!
//! A small second plane tracks per-device activity (measurement count and
//! country), which the contribution and geography analyses (Figures 6–7)
//! need and sketches cannot provide; it is proportional to the number of
//! devices.
//!
//! # Examples
//!
//! ```
//! use mop_measure::{AggregateStore, NetKind, RttRecord};
//!
//! let mut store = AggregateStore::new();
//! for i in 0..100u32 {
//!     store.observe(
//!         &RttRecord::tcp(40.0 + f64::from(i % 10), 1, "com.whatsapp", NetKind::Lte)
//!             .with_isp("Jio 4G"),
//!     );
//! }
//! let whatsapp = store.sketch_where(|key| key.app == "com.whatsapp");
//! assert_eq!(whatsapp.count(), 100);
//! assert!(whatsapp.median().unwrap() > 40.0);
//! ```

use std::collections::BTreeMap;

use crate::record::{MeasurementKind, NetKind, RttRecord};
use crate::sketch::{Fnv, RttSketch};

/// The identity of one aggregation cell: everything the §4.2 analyses group
/// records by, minus the per-sample fields (RTT, timestamp) and the
/// per-device fields tracked by the device plane.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AggregateKey {
    /// Measurement kind (TCP handshake or DNS exchange).
    pub kind: MeasurementKind,
    /// Access-network technology at measurement time.
    pub network: NetKind,
    /// Package name of the measured app (empty for DNS).
    pub app: String,
    /// Destination domain, when known.
    pub domain: String,
    /// Operator name (cellular) or Wi-Fi network label.
    pub isp: String,
}

impl AggregateKey {
    fn empty() -> Self {
        Self {
            kind: MeasurementKind::Tcp,
            network: NetKind::Wifi,
            app: String::new(),
            domain: String::new(),
            isp: String::new(),
        }
    }
}

/// Per-device activity: the device plane of an [`AggregateStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceActivity {
    /// Measurements contributed by the device (all kinds).
    pub count: u64,
    /// The device's country (first one observed; devices do not move between
    /// countries in the dataset model).
    pub country: String,
}

/// A keyed collection of [`RttSketch`] cells plus a per-device activity
/// plane. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct AggregateStore {
    cells: BTreeMap<AggregateKey, RttSketch>,
    devices: BTreeMap<u32, DeviceActivity>,
    /// Scratch key reused across observations so the steady-state fold does
    /// not allocate (the `String` fields keep their capacity).
    scratch: Option<AggregateKey>,
}

/// Equality compares the semantic content (cells and devices); the reusable
/// scratch key is working storage, not state.
impl PartialEq for AggregateStore {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells && self.devices == other.devices
    }
}

impl Eq for AggregateStore {}

impl AggregateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into its cell and the device plane.
    pub fn observe(&mut self, record: &RttRecord) {
        self.observe_parts(
            record.kind,
            record.network,
            &record.app,
            &record.domain,
            &record.isp,
            record.device,
            &record.country,
            record.rtt_ms,
        );
    }

    /// Folds one measurement given as loose fields, avoiding the need to
    /// build an [`RttRecord`] (the relay sink uses this: its samples carry
    /// borrowed context). Allocates only when a new cell or device appears;
    /// re-observing an existing cell is allocation-free in steady state.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_parts(
        &mut self,
        kind: MeasurementKind,
        network: NetKind,
        app: &str,
        domain: &str,
        isp: &str,
        device: u32,
        country: &str,
        rtt_ms: f64,
    ) {
        let mut key = self.scratch.take().unwrap_or_else(AggregateKey::empty);
        key.kind = kind;
        key.network = network;
        key.app.clear();
        key.app.push_str(app);
        key.domain.clear();
        key.domain.push_str(domain);
        key.isp.clear();
        key.isp.push_str(isp);
        if let Some(sketch) = self.cells.get_mut(&key) {
            sketch.observe(rtt_ms);
        } else {
            let mut sketch = RttSketch::new();
            sketch.observe(rtt_ms);
            self.cells.insert(key.clone(), sketch);
        }
        self.scratch = Some(key);
        let entry = self.devices.entry(device).or_default();
        entry.count += 1;
        if entry.country.is_empty() {
            entry.country.push_str(country);
        }
    }

    /// Absorbs another store: cell-wise and device-wise integral merges, so
    /// any merge order over any partition of the same records produces the
    /// bit-identical store. This is the cross-shard aggregation path of the
    /// fleet engine's measurement sink.
    pub fn merge_from(&mut self, other: &AggregateStore) {
        for (key, sketch) in &other.cells {
            if let Some(cell) = self.cells.get_mut(key) {
                cell.merge_from(sketch);
            } else {
                self.cells.insert(key.clone(), sketch.clone());
            }
        }
        for (device, activity) in &other.devices {
            let entry = self.devices.entry(*device).or_default();
            entry.count += activity.count;
            if entry.country.is_empty() {
                entry.country.push_str(&activity.country);
            }
        }
    }

    /// Number of aggregation cells (not samples).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total samples folded in, across all cells.
    pub fn sample_count(&self) -> u64 {
        self.cells.values().map(RttSketch::count).sum()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the cells in canonical (key) order.
    pub fn cells(&self) -> impl Iterator<Item = (&AggregateKey, &RttSketch)> {
        self.cells.iter()
    }

    /// The merged sketch of every cell matching `predicate` — the streaming
    /// counterpart of [`crate::MeasurementStore::rtts_where`].
    pub fn sketch_where(&self, predicate: impl Fn(&AggregateKey) -> bool) -> RttSketch {
        let mut merged = RttSketch::new();
        for (key, sketch) in &self.cells {
            if predicate(key) {
                merged.merge_from(sketch);
            }
        }
        merged
    }

    /// The median RTT over the cells matching `predicate`, if any samples
    /// match — the streaming counterpart of
    /// [`crate::MeasurementStore::median_where`].
    pub fn median_where(&self, predicate: impl Fn(&AggregateKey) -> bool) -> Option<f64> {
        self.sketch_where(predicate).median()
    }

    /// Groups matching cells by a key function, merging each group into one
    /// sketch — the streaming counterpart of
    /// [`crate::MeasurementStore::group_rtts_by`]. Group keys come back in
    /// sorted order.
    pub fn group_by<K: Ord>(
        &self,
        key: impl Fn(&AggregateKey) -> K,
        predicate: impl Fn(&AggregateKey) -> bool,
    ) -> BTreeMap<K, RttSketch> {
        let mut groups: BTreeMap<K, RttSketch> = BTreeMap::new();
        for (cell_key, sketch) in &self.cells {
            if predicate(cell_key) {
                groups.entry(key(cell_key)).or_default().merge_from(sketch);
            }
        }
        groups
    }

    /// Measurement counts per app (TCP cells only), matching
    /// [`crate::MeasurementStore::counts_per_app`].
    pub fn counts_per_app(&self) -> BTreeMap<String, u64> {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for (key, sketch) in &self.cells {
            if key.kind == MeasurementKind::Tcp {
                *counts.entry(key.app.clone()).or_default() += sketch.count();
            }
        }
        counts
    }

    /// Measurement counts per device (all kinds), matching
    /// [`crate::MeasurementStore::counts_per_device`].
    pub fn counts_per_device(&self) -> BTreeMap<u32, u64> {
        self.devices.iter().map(|(device, a)| (*device, a.count)).collect()
    }

    /// Device counts per country, matching
    /// [`crate::MeasurementStore::devices_per_country`].
    pub fn devices_per_country(&self) -> BTreeMap<String, u64> {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for activity in self.devices.values() {
            if !activity.country.is_empty() {
                *counts.entry(activity.country.clone()).or_default() += 1;
            }
        }
        counts
    }

    /// Distinct non-empty domains among cells matching `predicate`, sorted.
    pub fn distinct_domains(&self, predicate: impl Fn(&AggregateKey) -> bool) -> Vec<String> {
        let mut domains: Vec<String> = self
            .cells
            .keys()
            .filter(|key| !key.domain.is_empty() && predicate(key))
            .map(|key| key.domain.clone())
            .collect();
        domains.sort();
        domains.dedup();
        domains
    }

    /// Serialises the full canonical state (cells and device plane) to JSON;
    /// [`AggregateStore::from_json`] restores the bit-identical store. Used
    /// by the fleet checkpoint format.
    pub fn to_json(&self) -> mop_json::Value {
        let cells: Vec<mop_json::Value> = self
            .cells
            .iter()
            .map(|(key, sketch)| {
                mop_json::json!({
                    "kind": key.kind.as_json_str(),
                    "network": key.network.as_json_str(),
                    "app": key.app.as_str(),
                    "domain": key.domain.as_str(),
                    "isp": key.isp.as_str(),
                    "sketch": sketch.to_json(),
                })
            })
            .collect();
        let devices: Vec<mop_json::Value> = self
            .devices
            .iter()
            .map(|(&device, activity)| {
                mop_json::json!({
                    "device": i64::from(device),
                    "count": activity.count as i64,
                    "country": activity.country.as_str(),
                })
            })
            .collect();
        mop_json::json!({ "cells": cells, "devices": devices })
    }

    /// Restores a store serialised by [`AggregateStore::to_json`]. `None` if
    /// any field is missing or malformed.
    pub fn from_json(value: &mop_json::Value) -> Option<Self> {
        let mut store = Self::new();
        for cell in value["cells"].as_array()? {
            let key = AggregateKey {
                kind: MeasurementKind::from_json_str(cell["kind"].as_str()?)?,
                network: NetKind::from_json_str(cell["network"].as_str()?)?,
                app: cell["app"].as_str()?.to_string(),
                domain: cell["domain"].as_str()?.to_string(),
                isp: cell["isp"].as_str()?.to_string(),
            };
            store.cells.insert(key, RttSketch::from_json(&cell["sketch"])?);
        }
        for entry in value["devices"].as_array()? {
            let device = u32::try_from(entry["device"].as_i64()?).ok()?;
            let activity = DeviceActivity {
                count: entry["count"].as_u64()?,
                country: entry["country"].as_str()?.to_string(),
            };
            store.devices.insert(device, activity);
        }
        Some(store)
    }

    /// A stable FNV-1a digest over the full canonical state (every cell key,
    /// every cell sketch, every device). Two stores are bit-identical iff
    /// their digests match, which makes cross-shard merge determinism a
    /// one-line assertion.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.cells.len() as u64);
        for (key, sketch) in &self.cells {
            h.write_u64(match key.kind {
                MeasurementKind::Tcp => 0,
                MeasurementKind::Dns => 1,
            });
            h.write_u64(key.network as u64);
            h.write_str(&key.app);
            h.write_str(&key.domain);
            h.write_str(&key.isp);
            h.write_u64(sketch.digest());
        }
        h.write_u64(self.devices.len() as u64);
        for (device, activity) in &self.devices {
            h.write_u64(u64::from(*device));
            h.write_u64(activity.count);
            h.write_str(&activity.country);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<RttRecord> {
        let mut out = Vec::new();
        for i in 0..60u32 {
            out.push(
                RttRecord::tcp(50.0 + f64::from(i % 20), 1, "com.facebook.katana", NetKind::Wifi)
                    .with_domain("graph.facebook.com")
                    .with_isp("HomeWiFi")
                    .with_country("USA"),
            );
            out.push(
                RttRecord::tcp(250.0 + f64::from(i % 10), 2, "com.whatsapp", NetKind::Lte)
                    .with_domain("e3.whatsapp.net")
                    .with_isp("Jio 4G")
                    .with_country("India"),
            );
            out.push(
                RttRecord::dns(40.0 + f64::from(i % 5), 2, NetKind::Lte)
                    .with_isp("Jio 4G")
                    .with_country("India"),
            );
        }
        out
    }

    #[test]
    fn observe_builds_cells_and_device_plane() {
        let mut store = AggregateStore::new();
        for r in records() {
            store.observe(&r);
        }
        assert_eq!(store.cell_count(), 3);
        assert_eq!(store.sample_count(), 180);
        let per_app = store.counts_per_app();
        assert_eq!(per_app["com.facebook.katana"], 60);
        assert_eq!(per_app["com.whatsapp"], 60);
        let per_device = store.counts_per_device();
        assert_eq!(per_device[&1], 60);
        assert_eq!(per_device[&2], 120);
        let by_country = store.devices_per_country();
        assert_eq!(by_country["USA"], 1);
        assert_eq!(by_country["India"], 1);
    }

    #[test]
    fn queries_match_their_vector_counterparts() {
        let mut store = AggregateStore::new();
        let records = records();
        for r in &records {
            store.observe(r);
        }
        // Median of the WiFi cell vs the exact nearest-rank vector median.
        let mut exact: Vec<f64> = records
            .iter()
            .filter(|r| r.network == NetKind::Wifi)
            .map(|r| r.rtt_ms)
            .collect();
        exact.sort_by(f64::total_cmp);
        let exact_median = exact[(0.5 * (exact.len() - 1) as f64).round() as usize];
        let sketch_median = store.median_where(|k| k.network == NetKind::Wifi).unwrap();
        assert!((sketch_median - exact_median).abs() / exact_median <= 0.01);
        // Grouping by ISP over DNS cells.
        let by_isp = store.group_by(|k| k.isp.clone(), |k| k.kind == MeasurementKind::Dns);
        assert_eq!(by_isp.len(), 1);
        assert_eq!(by_isp["Jio 4G"].count(), 60);
        assert_eq!(store.distinct_domains(|_| true), vec!["e3.whatsapp.net", "graph.facebook.com"]);
        assert!(store.median_where(|k| k.app == "com.none").is_none());
    }

    #[test]
    fn merge_is_partition_invariant() {
        let records = records();
        let mut whole = AggregateStore::new();
        for r in &records {
            whole.observe(r);
        }
        let mut shards = vec![AggregateStore::new(), AggregateStore::new(), AggregateStore::new()];
        for (i, r) in records.iter().enumerate() {
            shards[i % 3].observe(r);
        }
        let mut forward = AggregateStore::new();
        for s in &shards {
            forward.merge_from(s);
        }
        let mut backward = AggregateStore::new();
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        assert_eq!(forward.digest(), backward.digest());
        assert_eq!(forward.digest(), whole.digest());
        assert_eq!(forward.sample_count(), whole.sample_count());
    }

    #[test]
    fn empty_store_reports_nothing() {
        let store = AggregateStore::new();
        assert!(store.is_empty());
        assert_eq!(store.cell_count(), 0);
        assert_eq!(store.sample_count(), 0);
        assert!(store.sketch_where(|_| true).is_empty());
        assert!(store.counts_per_app().is_empty());
        assert!(store.devices_per_country().is_empty());
    }
}
