//! Statistics helpers: percentiles, summaries, CDFs and histograms.
//!
//! The paper reports medians almost everywhere ("We choose the median over
//! the mean value because the median is less affected by RTT outliers",
//! §4.2.2) and presents distributions as CDFs; Table 1 uses fixed histogram
//! bins. These are the corresponding primitives.


/// Computes the `p`-th percentile (0–100) of `values` by linear
/// interpolation. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A five-number-plus-mean summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarises `values`. Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        Some(Self {
            count: finite.len(),
            min: percentile(&finite, 0.0)?,
            p25: percentile(&finite, 25.0)?,
            median: percentile(&finite, 50.0)?,
            p75: percentile(&finite, 75.0)?,
            p95: percentile(&finite, 95.0)?,
            max: percentile(&finite, 100.0)?,
            mean,
        })
    }
}

/// A 95 % confidence interval for the mean (normal approximation), as used
/// for the delay-overhead numbers in §4.1.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Computes a 95 % CI for the mean of `values`. Returns `None` for fewer
    /// than two samples.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.len() < 2 {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let half = 1.96 * (var / n).sqrt();
        Some(Self { mean, lo: mean - half, hi: mean + half })
    }

    /// True if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// An empirical CDF, stored as sorted values.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The value below which `q` (0–1) of the samples fall.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        percentile(&self.sorted, q * 100.0)
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Evaluates the CDF at evenly spaced points over `[0, x_max]`, producing
    /// `(x, F(x))` pairs — the series a figure plots.
    pub fn series(&self, x_max: f64, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = x_max * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// A histogram over explicit bin edges, like Table 1's 0–1 / 1–2 / 2–5 /
/// 5–10 / >10 ms delay bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper edges of each bin except the last (which is unbounded).
    pub edges: Vec<f64>,
    /// Counts per bin (`edges.len() + 1` entries).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given upper bin edges (must be ascending).
    pub fn with_edges(edges: Vec<f64>) -> Self {
        let bins = edges.len() + 1;
        Self { edges, counts: vec![0; bins] }
    }

    /// The Table 1 bin layout: 0–1, 1–2, 2–5, 5–10 and >10 ms.
    pub fn table1_bins() -> Self {
        Self::with_edges(vec![1.0, 2.0, 5.0, 10.0])
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let idx = self.edges.partition_point(|e| value >= *e);
        self.counts[idx] += 1;
    }

    /// Adds many samples.
    pub fn add_all(&mut self, values: &[f64]) {
        for v in values {
            self.add(*v);
        }
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The fraction of samples at or above `edge` (which must be one of the
    /// configured edges); used for "large overhead" rates in Table 1.
    pub fn fraction_at_or_above(&self, edge: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let idx = self.edges.partition_point(|e| *e <= edge);
        let above: u64 = self.counts[idx..].iter().sum();
        above as f64 / total as f64
    }

    /// Human-readable bin labels ("0~1ms", "1~2ms", ..., ">10ms").
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        let mut lower = 0.0;
        for edge in &self.edges {
            labels.push(format!("{}~{}ms", trim(lower), trim(*edge)));
            lower = *edge;
        }
        labels.push(format!(">{}ms", trim(lower)));
        labels
    }
}

fn trim(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    fn summary_matches_hand_computed_values() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p95);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn confidence_interval_covers_the_mean() {
        let v: Vec<f64> = (0..200).map(|i| 3.5 + 0.5 * ((i % 7) as f64 - 3.0)).collect();
        let ci = ConfidenceInterval::of(&v).unwrap();
        assert!(ci.contains(ci.mean));
        assert!(ci.lo < ci.mean && ci.mean < ci.hi);
        assert!(ConfidenceInterval::of(&[1.0]).is_none());
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let v: Vec<f64> = (1..=1000).map(f64::from).collect();
        let cdf = Cdf::from_values(&v);
        assert_eq!(cdf.len(), 1000);
        assert!((cdf.fraction_at_or_below(500.0) - 0.5).abs() < 0.01);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2000.0), 1.0);
        assert!((cdf.median().unwrap() - 500.5).abs() < 1.0);
        let series = cdf.series(1000.0, 11);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[10].1, 1.0);
        // Monotone non-decreasing.
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(Cdf::from_values(&[]).is_empty());
        assert_eq!(Cdf::from_values(&[]).fraction_at_or_below(1.0), 0.0);
    }

    #[test]
    fn histogram_bins_match_table1_layout() {
        let mut h = Histogram::table1_bins();
        h.add_all(&[0.2, 0.9, 1.5, 2.5, 4.0, 7.0, 25.0]);
        assert_eq!(h.counts, vec![2, 1, 2, 1, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.labels(), vec!["0~1ms", "1~2ms", "2~5ms", "5~10ms", ">10ms"]);
        let frac = h.fraction_at_or_above(1.0);
        assert!((frac - 5.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.fraction_at_or_above(10.0), 1.0 / 7.0);
    }

    #[test]
    fn histogram_boundary_values_go_to_upper_bin() {
        let mut h = Histogram::table1_bins();
        h.add(1.0);
        assert_eq!(h.counts, vec![0, 1, 0, 0, 0]);
        h.add(10.0);
        assert_eq!(h.counts[4], 1);
        assert_eq!(Histogram::with_edges(vec![]).total(), 0);
        assert_eq!(Histogram::table1_bins().fraction_at_or_above(1.0), 0.0);
    }
}
