//! The kernel's view of live connections, as exposed through `/proc/net`.

use std::collections::HashMap;
use std::net::IpAddr;

use mop_packet::{Endpoint, FourTuple};

/// Which pseudo file a connection appears in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// `/proc/net/tcp`.
    Tcp,
    /// `/proc/net/tcp6`.
    Tcp6,
    /// `/proc/net/udp`.
    Udp,
    /// `/proc/net/udp6`.
    Udp6,
}

impl Protocol {
    /// The pseudo-file name for this protocol.
    pub fn file_name(self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Tcp6 => "tcp6",
            Protocol::Udp => "udp",
            Protocol::Udp6 => "udp6",
        }
    }

    /// Classifies a flow into the right pseudo file.
    pub fn for_flow(flow: &FourTuple, tcp: bool) -> Self {
        match (tcp, flow.src.is_ipv4()) {
            (true, true) => Protocol::Tcp,
            (true, false) => Protocol::Tcp6,
            (false, true) => Protocol::Udp,
            (false, false) => Protocol::Udp6,
        }
    }
}

/// Kernel socket states as encoded in the `st` column of `/proc/net/tcp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocketStateCode {
    /// 01: ESTABLISHED.
    Established,
    /// 02: SYN_SENT.
    SynSent,
    /// 06: TIME_WAIT.
    TimeWait,
    /// 07: CLOSE.
    Close,
    /// 0A: LISTEN.
    Listen,
}

impl SocketStateCode {
    /// The two-digit hexadecimal code used in the pseudo file.
    pub fn code(self) -> &'static str {
        match self {
            SocketStateCode::Established => "01",
            SocketStateCode::SynSent => "02",
            SocketStateCode::TimeWait => "06",
            SocketStateCode::Close => "07",
            SocketStateCode::Listen => "0A",
        }
    }

    /// Parses a two-digit code, defaulting to `Close` for unknown codes.
    pub fn from_code(code: &str) -> Self {
        match code {
            "01" => SocketStateCode::Established,
            "02" => SocketStateCode::SynSent,
            "06" => SocketStateCode::TimeWait,
            "0A" => SocketStateCode::Listen,
            _ => SocketStateCode::Close,
        }
    }
}

/// One row of a `/proc/net/*` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionEntry {
    /// Which pseudo file the row lives in.
    pub protocol: Protocol,
    /// Local (app-side) endpoint.
    pub local: Endpoint,
    /// Remote endpoint.
    pub remote: Endpoint,
    /// Kernel socket state.
    pub state: SocketStateCode,
    /// UID of the app that owns the socket.
    pub uid: u32,
    /// Kernel inode of the socket (unique per socket).
    pub inode: u64,
}

/// The live connection table, maintained by the simulated kernel as apps open
/// and close sockets.
///
/// Alongside the entry list (what `/proc/net` renders), the table maintains
/// an incremental `FourTuple → uid` index: every mutation updates the index
/// in O(1), so mapper lookups never rebuild anything. A generation counter
/// advances on every mutation that can change the flow → uid relation, which
/// lets snapshot holders (the lazy mapper) skip re-copying an index they
/// already have.
#[derive(Debug, Default)]
pub struct ConnectionTable {
    entries: Vec<ConnectionEntry>,
    next_inode: u64,
    /// Incrementally maintained flow → uid index (first registration wins,
    /// matching the entry-scan semantics of `uid_of`).
    uid_index: HashMap<FourTuple, u32>,
    generation: u64,
}

impl ConnectionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self { entries: Vec::new(), next_inode: 10_000, uid_index: HashMap::new(), generation: 0 }
    }

    /// Resets the table to its just-constructed state, keeping the entry and
    /// index allocations: inode numbering restarts so a reused table assigns
    /// the same inodes a fresh one would.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.next_inode = 10_000;
        self.uid_index.clear();
        self.generation = 0;
    }

    /// Registers a connection owned by `uid`. Returns the assigned inode.
    pub fn register(
        &mut self,
        flow: FourTuple,
        tcp: bool,
        uid: u32,
        state: SocketStateCode,
    ) -> u64 {
        let inode = self.next_inode;
        self.next_inode += 1;
        self.entries.push(ConnectionEntry {
            protocol: Protocol::for_flow(&flow, tcp),
            local: flow.src,
            remote: flow.dst,
            state,
            uid,
            inode,
        });
        self.uid_index.entry(flow).or_insert(uid);
        self.generation += 1;
        inode
    }

    /// Updates the state of the connection matching `flow`.
    ///
    /// The uid index is untouched: a state change never alters ownership.
    pub fn set_state(&mut self, flow: FourTuple, state: SocketStateCode) -> bool {
        for e in &mut self.entries {
            if e.local == flow.src && e.remote == flow.dst {
                e.state = state;
                return true;
            }
        }
        false
    }

    /// Removes the connection matching `flow`. Returns true if found.
    pub fn remove(&mut self, flow: FourTuple) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| !(e.local == flow.src && e.remote == flow.dst));
        let removed = self.entries.len() != before;
        if removed {
            self.uid_index.remove(&flow);
            self.generation += 1;
        }
        removed
    }

    /// Looks up the UID owning `flow` — O(1) via the incremental index.
    pub fn uid_of(&self, flow: FourTuple) -> Option<u32> {
        self.uid_index.get(&flow).copied()
    }

    /// The incrementally maintained flow → uid index.
    ///
    /// This is what the packet-to-app mappers consult instead of re-rendering
    /// and re-parsing the `/proc/net` text on every lookup; the parse *cost*
    /// is still charged through the cost model, but the wall-clock work is
    /// amortised O(1).
    pub fn uid_index(&self) -> &HashMap<FourTuple, u32> {
        &self.uid_index
    }

    /// Generation counter: advances whenever the flow → uid relation mutates.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up a UID by local port only — the fallback Android tools use
    /// when the local address is rewritten by the VPN.
    pub fn uid_of_local_port(&self, port: u16) -> Option<u32> {
        self.entries.iter().find(|e| e.local.port == port).map(|e| e.uid)
    }

    /// Entries belonging to one pseudo file.
    pub fn entries_for(&self, protocol: Protocol) -> Vec<&ConnectionEntry> {
        self.entries.iter().filter(|e| e.protocol == protocol).collect()
    }

    /// All entries.
    pub fn entries(&self) -> &[ConnectionEntry] {
        &self.entries
    }

    /// Number of live entries (across all four files).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keeps only the newest `max` entries (a crude stand-in for kernel
    /// socket reclamation, keeps long simulations bounded).
    ///
    /// Reclamation is rare and batched, so the index is rebuilt wholesale
    /// here rather than diffed entry by entry.
    pub fn truncate_oldest(&mut self, max: usize) {
        if self.entries.len() > max {
            let excess = self.entries.len() - max;
            self.entries.drain(0..excess);
            self.uid_index.clear();
            for e in &self.entries {
                self.uid_index.entry(FourTuple::new(e.local, e.remote)).or_insert(e.uid);
            }
            self.generation += 1;
        }
    }

    /// Returns true if an IP address belongs to any registered local endpoint.
    pub fn has_local_addr(&self, addr: IpAddr) -> bool {
        self.entries.iter().any(|e| e.local.addr == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(port: u16, uid: u32) -> (FourTuple, u32) {
        (
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, port), Endpoint::v4(31, 13, 79, 251, 443)),
            uid,
        )
    }

    #[test]
    fn register_lookup_remove_roundtrip() {
        let mut table = ConnectionTable::new();
        let (f1, uid1) = flow(40000, 10123);
        let (f2, uid2) = flow(40001, 10456);
        let inode1 = table.register(f1, true, uid1, SocketStateCode::SynSent);
        let inode2 = table.register(f2, true, uid2, SocketStateCode::Established);
        assert_ne!(inode1, inode2);
        assert_eq!(table.len(), 2);
        assert_eq!(table.uid_of(f1), Some(uid1));
        assert_eq!(table.uid_of_local_port(40001), Some(uid2));
        assert!(table.set_state(f1, SocketStateCode::Established));
        assert!(table.remove(f1));
        assert!(!table.remove(f1));
        assert_eq!(table.uid_of(f1), None);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn protocol_classification() {
        let v4 = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 1), Endpoint::v4(8, 8, 8, 8, 53));
        assert_eq!(Protocol::for_flow(&v4, true), Protocol::Tcp);
        assert_eq!(Protocol::for_flow(&v4, false), Protocol::Udp);
        let v6 = FourTuple::new(
            Endpoint::new("fe80::2".parse::<std::net::Ipv6Addr>().unwrap(), 1),
            Endpoint::new("2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap(), 53),
        );
        assert_eq!(Protocol::for_flow(&v6, true), Protocol::Tcp6);
        assert_eq!(Protocol::for_flow(&v6, false), Protocol::Udp6);
        assert_eq!(Protocol::Tcp6.file_name(), "tcp6");
    }

    #[test]
    fn entries_for_filters_by_protocol() {
        let mut table = ConnectionTable::new();
        let (f1, uid1) = flow(40000, 1);
        table.register(f1, true, uid1, SocketStateCode::Established);
        let udp_flow = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 5353), Endpoint::v4(8, 8, 8, 8, 53));
        table.register(udp_flow, false, 2, SocketStateCode::Close);
        assert_eq!(table.entries_for(Protocol::Tcp).len(), 1);
        assert_eq!(table.entries_for(Protocol::Udp).len(), 1);
        assert_eq!(table.entries_for(Protocol::Tcp6).len(), 0);
        assert!(table.has_local_addr("10.0.0.2".parse().unwrap()));
        assert!(!table.has_local_addr("10.0.0.99".parse().unwrap()));
    }

    #[test]
    fn state_codes_roundtrip() {
        for s in [
            SocketStateCode::Established,
            SocketStateCode::SynSent,
            SocketStateCode::TimeWait,
            SocketStateCode::Close,
            SocketStateCode::Listen,
        ] {
            assert_eq!(SocketStateCode::from_code(s.code()), s);
        }
        assert_eq!(SocketStateCode::from_code("FF"), SocketStateCode::Close);
    }

    #[test]
    fn truncate_drops_oldest_entries() {
        let mut table = ConnectionTable::new();
        for port in 0..20u16 {
            let (f, uid) = flow(40000 + port, 10_000 + u32::from(port));
            table.register(f, true, uid, SocketStateCode::Established);
        }
        table.truncate_oldest(5);
        assert_eq!(table.len(), 5);
        // The newest entries (highest ports) survive.
        assert!(table.uid_of_local_port(40019).is_some());
        assert!(table.uid_of_local_port(40000).is_none());
    }
}
