//! Simulated `/proc/net` connection tables, the package manager, and the
//! packet-to-app mapping strategies.
//!
//! Android offers no API for asking "which app owns this socket?", so MopEye
//! answers it the way the paper describes (§2.2): four pseudo files —
//! `/proc/net/tcp6`, `tcp`, `udp` and `udp6` — list every connection's
//! endpoints together with the UID of the owning app, and `PackageManager`
//! turns a UID into a package name. Parsing those files is expensive
//! (Figure 5(a)), which motivates the *lazy* mapping mechanism of §3.3.
//!
//! * [`table`] — the kernel-side connection table the pseudo files render,
//! * [`procfs`] — rendering and parsing of the `/proc/net/*` text format,
//! * [`package_manager`] — UID → package-name resolution,
//! * [`mapping`] — the three mapping strategies evaluated in the paper and
//!   its related work: eager (parse on every SYN), cache-based (Haystack)
//!   and lazy (MopEye).

pub mod mapping;
pub mod package_manager;
pub mod procfs;
pub mod table;

pub use mapping::{
    CachedMapper, EagerMapper, LazyMapper, MappingOutcome, MappingStats, MappingStrategy,
};
pub use package_manager::PackageManager;
pub use procfs::{parse_proc_net, render_proc_net, ProcFile};
pub use table::{ConnectionEntry, ConnectionTable, Protocol, SocketStateCode};
