//! Rendering and parsing of the `/proc/net/tcp|tcp6|udp|udp6` text format.
//!
//! The format is the real kernel one (hex-encoded little-endian addresses,
//! hex ports, hex state code, UID in decimal), so the parser here would work
//! unchanged against a real Android `/proc/net/tcp`. The simulation renders
//! the pseudo files from the [`ConnectionTable`] and the mappers parse them
//! back — paying the parse cost that Figure 5(a) measures.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use mop_packet::Endpoint;

use crate::table::{ConnectionEntry, ConnectionTable, Protocol, SocketStateCode};

/// A rendered pseudo file: its protocol and its text content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcFile {
    /// Which file this is.
    pub protocol: Protocol,
    /// The full text, including the header line.
    pub content: String,
}

/// Renders one pseudo file from the table.
pub fn render_proc_net(table: &ConnectionTable, protocol: Protocol) -> ProcFile {
    let mut content = String::with_capacity(4096);
    content.push_str(
        "  sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode\n",
    );
    for (sl, entry) in table.entries_for(protocol).iter().enumerate() {
        content.push_str(&format!(
            "{:4}: {} {} {} 00000000:00000000 00:00000000 00000000 {:5}        0 {}\n",
            sl,
            encode_endpoint(&entry.local),
            encode_endpoint(&entry.remote),
            entry.state.code(),
            entry.uid,
            entry.inode,
        ));
    }
    ProcFile { protocol, content }
}

/// Parses a pseudo file back into entries. Lines that do not parse are
/// skipped, matching the tolerant behaviour required on real devices where
/// vendors occasionally extend the format.
pub fn parse_proc_net(file: &ProcFile) -> Vec<ConnectionEntry> {
    let mut entries = Vec::new();
    for line in file.content.lines().skip(1) {
        if let Some(entry) = parse_line(line, file.protocol) {
            entries.push(entry);
        }
    }
    entries
}

fn parse_line(line: &str, protocol: Protocol) -> Option<ConnectionEntry> {
    let mut fields = line.split_whitespace();
    let _sl = fields.next()?;
    let local = decode_endpoint(fields.next()?)?;
    let remote = decode_endpoint(fields.next()?)?;
    let state = SocketStateCode::from_code(fields.next()?);
    // tx_queue:rx_queue, tr:tm->when, retrnsmt.
    let _ = fields.next()?;
    let _ = fields.next()?;
    let _ = fields.next()?;
    let uid: u32 = fields.next()?.parse().ok()?;
    let _timeout = fields.next()?;
    let inode: u64 = fields.next()?.parse().ok()?;
    Some(ConnectionEntry { protocol, local, remote, state, uid, inode })
}

/// Encodes an endpoint the way the kernel does: IPv4 as 8 hex digits in
/// little-endian byte order, IPv6 as 32 hex digits in four little-endian
/// 32-bit groups, followed by `:PORT` in hex.
fn encode_endpoint(endpoint: &Endpoint) -> String {
    let addr = match endpoint.addr {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            format!("{:02X}{:02X}{:02X}{:02X}", o[3], o[2], o[1], o[0])
        }
        IpAddr::V6(v6) => {
            let o = v6.octets();
            let mut s = String::with_capacity(32);
            for group in o.chunks(4) {
                s.push_str(&format!("{:02X}{:02X}{:02X}{:02X}", group[3], group[2], group[1], group[0]));
            }
            s
        }
    };
    format!("{}:{:04X}", addr, endpoint.port)
}

fn decode_endpoint(text: &str) -> Option<Endpoint> {
    let (addr_hex, port_hex) = text.rsplit_once(':')?;
    let port = u16::from_str_radix(port_hex, 16).ok()?;
    let addr: IpAddr = match addr_hex.len() {
        8 => {
            let raw = u32::from_str_radix(addr_hex, 16).ok()?;
            let bytes = raw.to_be_bytes();
            Ipv4Addr::new(bytes[3], bytes[2], bytes[1], bytes[0]).into()
        }
        32 => {
            let mut octets = [0u8; 16];
            for (i, chunk) in addr_hex.as_bytes().chunks(8).enumerate() {
                let chunk = std::str::from_utf8(chunk).ok()?;
                let raw = u32::from_str_radix(chunk, 16).ok()?;
                let bytes = raw.to_be_bytes();
                octets[i * 4] = bytes[3];
                octets[i * 4 + 1] = bytes[2];
                octets[i * 4 + 2] = bytes[1];
                octets[i * 4 + 3] = bytes[0];
            }
            Ipv6Addr::from(octets).into()
        }
        _ => return None,
    };
    Some(Endpoint::new(addr, port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::FourTuple;

    fn table_with_entries() -> ConnectionTable {
        let mut table = ConnectionTable::new();
        table.register(
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443)),
            true,
            10123,
            SocketStateCode::Established,
        );
        table.register(
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40001), Endpoint::v4(216, 58, 221, 132, 443)),
            true,
            10456,
            SocketStateCode::SynSent,
        );
        table.register(
            FourTuple::new(
                Endpoint::new("fe80::2".parse::<Ipv6Addr>().unwrap(), 40002),
                Endpoint::new("2a03:2880:f117::25".parse::<Ipv6Addr>().unwrap(), 443),
            ),
            true,
            10789,
            SocketStateCode::Established,
        );
        table.register(
            FourTuple::new(Endpoint::v4(10, 0, 0, 2, 41000), Endpoint::v4(192, 168, 1, 1, 53)),
            false,
            10123,
            SocketStateCode::Close,
        );
        table
    }

    #[test]
    fn ipv4_endpoint_encoding_matches_kernel_format() {
        // 10.0.0.2:40000 -> little-endian hex 0200000A, port 9C40.
        let encoded = encode_endpoint(&Endpoint::v4(10, 0, 0, 2, 40000));
        assert_eq!(encoded, "0200000A:9C40");
        assert_eq!(decode_endpoint(&encoded).unwrap(), Endpoint::v4(10, 0, 0, 2, 40000));
    }

    #[test]
    fn render_and_parse_tcp_roundtrips() {
        let table = table_with_entries();
        let file = render_proc_net(&table, Protocol::Tcp);
        assert!(file.content.starts_with("  sl"));
        let parsed = parse_proc_net(&file);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].uid, 10123);
        assert_eq!(parsed[0].local, Endpoint::v4(10, 0, 0, 2, 40000));
        assert_eq!(parsed[0].remote, Endpoint::v4(31, 13, 79, 251, 443));
        assert_eq!(parsed[0].state, SocketStateCode::Established);
        assert_eq!(parsed[1].uid, 10456);
        assert_eq!(parsed[1].state, SocketStateCode::SynSent);
    }

    #[test]
    fn render_and_parse_tcp6_roundtrips() {
        let table = table_with_entries();
        let file = render_proc_net(&table, Protocol::Tcp6);
        let parsed = parse_proc_net(&file);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].uid, 10789);
        assert_eq!(parsed[0].local.port, 40002);
        assert_eq!(parsed[0].local.addr, "fe80::2".parse::<IpAddr>().unwrap());
        assert_eq!(parsed[0].remote.addr, "2a03:2880:f117::25".parse::<IpAddr>().unwrap());
    }

    #[test]
    fn udp_file_contains_only_udp_entries() {
        let table = table_with_entries();
        let file = render_proc_net(&table, Protocol::Udp);
        let parsed = parse_proc_net(&file);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].remote.port, 53);
        assert!(parse_proc_net(&render_proc_net(&table, Protocol::Udp6)).is_empty());
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let file = ProcFile {
            protocol: Protocol::Tcp,
            content: "header\n garbage line\n  0: ZZZ:1 0200000A:0050 01 0:0 0:0 0 100 0 5\n".into(),
        };
        assert!(parse_proc_net(&file).is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let table = ConnectionTable::new();
        let file = render_proc_net(&table, Protocol::Tcp);
        assert_eq!(file.content.lines().count(), 1);
        assert!(parse_proc_net(&file).is_empty());
    }
}
